"""Shared exception hierarchy for the SHILL reproduction.

Three layers of the system report failures in distinct ways and the
distinction is load-bearing for the paper's semantics:

* the simulated kernel fails with :class:`SysError` carrying an errno,
  exactly like a failed system call (a sandboxed process that trips a MAC
  check receives ``EACCES`` and *keeps running*, per section 3.2.2);
* the contract system fails with :class:`ContractViolation` carrying blame,
  which *aborts* script execution (section 2.2);
* the language frontend fails with :class:`ShillSyntaxError` /
  :class:`ShillRuntimeError` for parse and evaluation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SysError(ReproError):
    """A failed system call in the simulated kernel.

    Attributes
    ----------
    errno:
        Numeric errno constant from :mod:`repro.kernel.errno_`.
    name:
        Symbolic errno name (``"EACCES"``), resolved lazily for messages.
    """

    def __init__(self, errno: int, msg: str = ""):
        from repro.kernel import errno_

        self.errno = errno
        self.name = errno_.errorcode.get(errno, str(errno))
        super().__init__(f"[{self.name}] {msg}" if msg else f"[{self.name}]")


class ContractViolation(ReproError):
    """A contract was violated; execution of the script aborts.

    ``blame`` names the guilty party (provider or consumer of the
    contracted value) so that, as the paper puts it, the runtime
    "indicates which part of the script failed to meet its obligations."
    """

    def __init__(self, blame: str, contract: str, detail: str):
        self.blame = blame
        self.contract = contract
        self.detail = detail
        super().__init__(f"contract violation: blaming {blame}: {detail} (contract: {contract})")


class ShillSyntaxError(ReproError):
    """A parse error in a SHILL script, with source location."""

    def __init__(self, msg: str, line: int = 0, col: int = 0, filename: str = "<script>"):
        self.line = line
        self.col = col
        self.filename = filename
        super().__init__(f"{filename}:{line}:{col}: {msg}")


class ShillRuntimeError(ReproError):
    """A runtime error in a SHILL script (unbound variable, bad arity, ...)."""


class CapabilitySafetyError(ReproError):
    """An operation that would break capability safety was attempted.

    Raised, e.g., when a capability-safe script tries to import an ambient
    script, mint a capability from a path, or serialize a capability.
    """


class SandboxError(ReproError):
    """Misuse of the sandbox/session API (grant after enter, etc.)."""
