"""Hierarchical sandbox sessions and their lifecycle.

Section 3.2.1: "Each process executing in a SHILL sandbox is associated
with a session.  Processes in the same session share the same set of
capabilities and can communicate via signals. ... sessions are
hierarchical: a sandboxed process inside session S1 can spawn a process
inside a new session S2, which has fewer capabilities than S1."

Lifecycle: ``shill_init`` creates the session and associates it with the
calling process; capability grants are allowed **only until**
``shill_enter``; after entering, "the session allows only operations
permitted by capabilities it was granted explicitly."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import SandboxError
from repro.sandbox.audit import AuditLog
from repro.sandbox.privileges import PrivSet, SocketPerms
from repro.sandbox.privmap import (
    POLICY_SLOT,
    MergeConflict,
    ensure_privmap,
    privmap_of,
)

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel
    from repro.kernel.proc import Process


class Session:
    """One sandbox session."""

    #: Optional per-session policy engine (see :mod:`repro.policy`):
    #: overrides the kernel-wide ``Kernel.policy_engine`` for checks
    #: attributed to this session.  Class default so sessions restored
    #: from older pickles behave like engine-less ones.
    engine = None

    def __init__(
        self,
        sid: int,
        parent: Optional["Session"],
        manager: "SessionManager",
        debug: bool = False,
    ) -> None:
        self.sid = sid
        self.parent = parent
        self.manager = manager
        self.children: list[Session] = []
        self.entered = False
        self.dead = False
        self.procs: set[int] = set()
        self.pipe_factory = False
        self.socket_perms: SocketPerms | None = None
        self.debug = debug
        self.log = AuditLog()
        # Objects this session holds grants on, for end-of-life cleanup.
        self.granted_objects: list[object] = []
        self.merge_conflicts: list[MergeConflict] = []

    def attach(self, proc: "Process") -> None:
        """Add a process to this session (fork inherits the session)."""
        self.manager.attach(self, proc)

    def detach(self, proc: "Process") -> None:
        """Remove an exiting process; may trigger session teardown."""
        self.manager.detach(self, proc)

    def is_descendant_of(self, other: "Session") -> bool:
        node: Session | None = self
        while node is not None:
            if node is other:
                return True
            node = node.parent
        return False

    def __repr__(self) -> str:
        state = "entered" if self.entered else "setup"
        return f"<Session {self.sid} {state} procs={sorted(self.procs)}>"


@dataclass(frozen=True)
class AuditRecord:
    """A session's id plus its audit log — all that outlives teardown."""

    sid: int
    log: AuditLog


class SessionManager:
    """Creates, tracks, and tears down sessions for the SHILL policy."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self._sessions: dict[int, Session] = {}
        # §3.2.2 wants audit logs viewable after the fact, so each
        # session's log is retained past teardown — but only the log
        # (entries of plain strings), never the Session object graph,
        # which would pin grants and parent/child cycles forever.
        self._audit: dict[int, AuditRecord] = {}
        #: highest sid handed out so far — both the sid allocator and the
        #: watermark for "which sessions were created since" queries.
        self.last_sid = 0

    # ------------------------------------------------------------------
    # lifecycle syscalls
    # ------------------------------------------------------------------

    def shill_init(self, proc: "Process", debug: bool = False,
                   engine=None) -> Session:
        """Create a new session and associate the calling process with it.

        If the process is already sandboxed, the new session becomes a
        *child* of its current session — the paper's mechanism for
        SHILL-aware executables to "further attenuate their privileges".

        ``engine`` binds a per-session policy engine (see
        :mod:`repro.policy`); child sessions inherit the parent's engine
        unless given their own, so one engine governs a whole sandbox
        tree.
        """
        parent = proc.session
        self.last_sid += 1
        session = Session(self.last_sid, parent, self, debug=debug)
        if engine is not None:
            session.engine = engine
        elif parent is not None and parent.engine is not None:
            session.engine = parent.engine
        self._sessions[session.sid] = session
        self._audit[session.sid] = AuditRecord(session.sid, session.log)
        if parent is not None:
            parent.children.append(session)
            parent.procs.discard(proc.pid)
        proc.session = session
        session.procs.add(proc.pid)
        self.kernel.stats.sandboxes_created += 1
        return session

    def shill_enter(self, proc: "Process") -> None:
        session = proc.session
        if session is None:
            raise SandboxError("shill_enter: process has no session")
        if session.entered:
            raise SandboxError("shill_enter: session already entered")
        session.entered = True

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def audit_records(self) -> list[AuditRecord]:
        """One record per session ever created (including dead ones), in
        creation order — the audit surface "privileged users" view."""
        return list(self._audit.values())

    def restore(self, records: list[AuditRecord], last_sid: int) -> None:
        """Seed a forked kernel's manager with the template's history.

        Audit logs are snapshot-copied (§3.2.2 wants them viewable after
        the fact, and a fork should see everything its template saw);
        live sessions are per-run state and never carried across.  The
        sid watermark is preserved so sids allocated in any fork remain
        unambiguous relative to the template's records.
        """
        self._audit = {r.sid: AuditRecord(r.sid, r.log.clone()) for r in records}
        self.last_sid = last_sid

    def __getstate__(self) -> dict:
        """Snapshot state (:mod:`repro.kernel.serialize`): the audit
        history and sid watermark cross the snapshot, exactly as they
        cross :meth:`repro.sandbox.policy.ShillPolicy.fork_for`; live
        sessions are per-run state (their Session graphs pin grants and
        parent/child cycles) and are dropped."""
        return {
            "kernel": self.kernel,
            "audit": list(self._audit.values()),
            "last_sid": self.last_sid,
        }

    def __setstate__(self, state: dict) -> None:
        self.kernel = state["kernel"]
        self._sessions = {}
        self._audit = {r.sid: r for r in state["audit"]}
        self.last_sid = state["last_sid"]

    def audit_records_since(self, sid: int) -> list[AuditRecord]:
        """Records for sessions created after ``sid``, in creation order.
        _audit is insertion-ordered by sid, so scan from the tail."""
        newer: list[AuditRecord] = []
        for record in reversed(self._audit.values()):
            if record.sid <= sid:
                break
            newer.append(record)
        newer.reverse()
        return newer

    # ------------------------------------------------------------------
    # grants (setup phase only)
    # ------------------------------------------------------------------

    def grant(self, session: Session, obj: object, privs: PrivSet) -> None:
        """Grant ``privs`` on kernel object ``obj`` to ``session``.

        Only legal before ``shill_enter``.  When the granting context is a
        *parent session* (nested sandboxes), the grant must not exceed the
        parent's own privileges on the object — "which has fewer
        capabilities than S1".  Top-level grants (from the SHILL runtime,
        which holds the user's ambient authority) are unrestricted.
        """
        if session.entered:
            raise SandboxError("cannot grant capabilities after shill_enter")
        if session.dead:
            raise SandboxError("cannot grant to a dead session")
        parent = session.parent
        if parent is not None:
            pm = privmap_of(obj)
            parent_privs = pm.privs_for(parent.sid) if pm is not None else PrivSet.empty()
            if not privs.subset_of(parent_privs):
                raise SandboxError(
                    f"grant exceeds parent session's privileges: {privs!r} not within {parent_privs!r}"
                )
        pm = ensure_privmap(obj)
        conflicts = pm.merge(session.sid, privs)
        self.kernel.label_mutation(session.sid)
        session.merge_conflicts.extend(conflicts)
        session.granted_objects.append(obj)
        session.log.grant(session.sid, _describe(self.kernel, obj), privs)

    def grant_pipe_factory(self, session: Session) -> None:
        if session.entered:
            raise SandboxError("cannot grant capabilities after shill_enter")
        if session.parent is not None and not session.parent.pipe_factory:
            raise SandboxError("parent session holds no pipe factory")
        session.pipe_factory = True

    def grant_socket_factory(self, session: Session, perms: SocketPerms) -> None:
        if session.entered:
            raise SandboxError("cannot grant capabilities after shill_enter")
        parent = session.parent
        if parent is not None:
            if parent.socket_perms is None or not perms.subset_of(parent.socket_perms):
                raise SandboxError("socket factory grant exceeds parent session's")
        session.socket_perms = perms

    # ------------------------------------------------------------------
    # membership and teardown
    # ------------------------------------------------------------------

    def get(self, sid: int) -> Session | None:
        return self._sessions.get(sid)

    def attach(self, session: Session, proc: "Process") -> None:
        session.procs.add(proc.pid)

    def detach(self, session: Session, proc: "Process") -> None:
        session.procs.discard(proc.pid)
        self._maybe_cleanup(session)

    def _maybe_cleanup(self, session: Session) -> None:
        """Tear a session down once it has no processes and no live
        children (the kernel's asynchronous session cleanup, run eagerly
        here for determinism)."""
        if session.procs or session.dead:
            return
        if any(not child.dead for child in session.children):
            return
        session.dead = True
        if session.granted_objects:
            # Attribute the teardown's label-epoch bump to the dying
            # session: revocation is *its* effect, and audit consumers
            # (mac.last_label_sid, the revoke entries below) must name
            # it rather than losing the originating sid.
            self.kernel.label_mutation(session.sid)
        for obj in session.granted_objects:
            pm = privmap_of(obj)
            if pm is not None:
                dropped = pm.privs_for(session.sid)
                pm.drop_session(session.sid)
                if len(dropped):
                    session.log.revoke(session.sid, _describe(self.kernel, obj),
                                       f"dropped {dropped!r}")
                if not pm.sessions():
                    # An empty privilege map is behaviourally identical
                    # to an absent one; dropping the slot restores the
                    # unlabelled state (and keeps post-run snapshot
                    # deltas proportional to *surviving* grants).
                    obj.label.clear(POLICY_SLOT)
        self._sessions.pop(session.sid, None)
        if session.parent is not None:
            self._maybe_cleanup(session.parent)

    def live_sessions(self) -> list[Session]:
        return [s for s in self._sessions.values() if not s.dead]


def _describe(kernel: "Kernel", obj: object) -> str:
    """Best-effort human-readable name for an object, for audit logs."""
    from repro.sandbox.audit import describe_object

    return describe_object(kernel, obj)
