"""Privilege maps: the sandbox's per-object security state.

Section 3.2.2: "SHILL labels these kernel objects with a privilege map: a
map from sessions to sets of privileges.  A privilege map records the
privileges that each session has for the given kernel object."

Privilege maps live in the MAC label slot ``"shill"`` of vnodes, pipes,
and sockets.  The merge rule implements the paper's conservative
no-amplification policy: "SHILL requires that a session is never granted
conflicting privileges to the same object ... we would not merge these
privileges."
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.sandbox.privileges import DERIVING_PRIVS, Priv, PrivSet

if TYPE_CHECKING:
    from repro.kernel.vfs import Label

POLICY_SLOT = "shill"


class MergeConflict:
    """Record of a refused merge (conflicting modifiers), for audit logs."""

    __slots__ = ("sid", "priv", "existing", "incoming")

    def __init__(self, sid: int, priv: Priv, existing: frozenset, incoming: frozenset) -> None:
        self.sid = sid
        self.priv = priv
        self.existing = existing
        self.incoming = incoming

    def __repr__(self) -> str:
        return (
            f"MergeConflict(sid={self.sid}, priv=+{self.priv.value}, "
            f"kept={sorted(p.value for p in self.existing)}, "
            f"refused={sorted(p.value for p in self.incoming)})"
        )


class PrivMap:
    """Map from session id to :class:`PrivSet` for one kernel object."""

    __slots__ = ("_grants",)

    def __init__(self) -> None:
        self._grants: dict[int, PrivSet] = {}

    def privs_for(self, sid: int) -> PrivSet:
        return self._grants.get(sid, PrivSet.empty())

    def sessions(self) -> list[int]:
        return sorted(self._grants)

    def set_initial(self, sid: int, privs: PrivSet) -> None:
        """Explicit grant at sandbox-setup time (before ``shill_enter``).

        Multiple capabilities to the same object union their plain
        privileges but conflicting deriving-modifiers follow the
        no-amplification rule, same as propagation.
        """
        self.merge(sid, privs)

    def merge(self, sid: int, incoming: PrivSet) -> list[MergeConflict]:
        """Merge ``incoming`` privileges for ``sid``; returns refused merges.

        * new privilege → added with its modifier;
        * present with an identical modifier → no-op;
        * present with a *different* modifier (deriving privs only) →
          **kept as-is**: merging could amplify privilege, so the sandbox
          refuses and records the conflict.
        """
        existing = self._grants.get(sid)
        if existing is None:
            self._grants[sid] = incoming
            return []
        conflicts: list[MergeConflict] = []
        items = {p: existing.modifier(p) for p in existing}
        for priv in incoming:
            new_mod = incoming.modifier(priv)
            if priv not in items:
                items[priv] = new_mod
                continue
            if priv in DERIVING_PRIVS:
                old_eff = existing.effective_modifier(priv)
                new_eff = incoming.effective_modifier(priv)
                if old_eff != new_eff:
                    conflicts.append(MergeConflict(sid, priv, old_eff, new_eff))
                    continue  # keep the existing entry; no merge
            # plain privilege already present (or identical modifier): no-op
        self._grants[sid] = PrivSet(items)
        return conflicts

    def drop_session(self, sid: int) -> None:
        self._grants.pop(sid, None)

    def clone(self) -> "PrivMap":
        """An independent map for a forked object's label.  PrivSets are
        immutable and shared; the sid index is copied so grants in one
        world never leak into another (sids stay globally comparable
        because forks preserve the sid watermark)."""
        new = PrivMap()
        new._grants = dict(self._grants)
        return new

    def __repr__(self) -> str:
        return f"PrivMap({self._grants!r})"


def privmap_of(obj) -> PrivMap | None:
    """Return the object's privilege map, or None if it has never been
    labelled by the SHILL policy."""
    label: "Label" = obj.label
    pm = label.get(POLICY_SLOT)
    return pm  # type: ignore[return-value]


def ensure_privmap(obj) -> PrivMap:
    label: "Label" = obj.label
    pm = label.get(POLICY_SLOT)
    if pm is None:
        pm = PrivMap()
        label.set(POLICY_SLOT, pm)
    assert isinstance(pm, PrivMap)
    return pm


def drop_session_everywhere(sid: int, objects: Iterable) -> None:
    """Asynchronous-cleanup stand-in: remove a dead session's grants from
    the objects it was granted (the kernel's "asynchronous cleanup of
    expired SHILL sandbox sessions" that the Find benchmark contends with).
    """
    for obj in objects:
        pm = privmap_of(obj)
        if pm is not None:
            pm.drop_session(sid)
            if not pm.sessions():
                obj.label.clear(POLICY_SLOT)
