"""Audit logging for sandbox sessions.

Section 3.2.2 (Debugging): "for all SHILL sandboxes, logging can be
enabled and viewed by privileged users.  The log records all of the
capabilities and privileges granted during a session in addition to all
operations that were denied because of insufficient privileges."

Debug mode ("a session can be created in debugging mode, which
automatically grants the necessary privileges if an operation would
fail") is implemented in the policy; it records the auto-grants here so
"running programs in a debugging sandbox and then viewing the logs" is "a
useful starting point for identifying necessary capabilities."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel
    from repro.sandbox.privileges import Priv, PrivSet


def describe_object(kernel: "Kernel", obj: Any) -> str:
    """Best-effort, *stable* name for a kernel object in audit output.

    Paths when the name cache can resolve one; for detached vnodes
    (session ttys) the device name — names are deterministic where vids
    are allocation-ordered, and audit lines feed result fingerprints.
    """
    from repro.kernel.vfs import Vnode

    if isinstance(obj, Vnode):
        try:
            return kernel.vfs.path_of(obj)
        except Exception:
            if obj.nc_name is not None:
                return f"<{obj.nc_name}>"
            return f"<vnode {obj.vid}>"
    return f"<{type(obj).__name__.lower()}>"


@dataclass(frozen=True)
class AuditEntry:
    sid: int
    kind: str  # "grant" | "deny" | "auto-grant" | "engine-allow" | "revoke"
    operation: str
    target: str
    detail: str

    def format(self) -> str:
        return f"[session {self.sid}] {self.kind:10s} {self.operation:24s} {self.target} {self.detail}"


class AuditLog:
    """An append-only per-session log."""

    def __init__(self) -> None:
        self.entries: list[AuditEntry] = []

    def clone(self) -> "AuditLog":
        """A snapshot copy (entries are frozen records and are shared);
        used when forking a world so histories diverge independently."""
        new = AuditLog()
        new.entries = list(self.entries)
        return new

    def grant(self, sid: int, target: str, privs: "PrivSet") -> None:
        self.entries.append(AuditEntry(sid, "grant", "grant", target, repr(privs)))

    def deny(self, sid: int, operation: str, target: str, priv: "Priv | str") -> None:
        name = priv if isinstance(priv, str) else f"+{priv.value}"
        self.entries.append(AuditEntry(sid, "deny", operation, target, f"missing {name}"))

    def auto_grant(self, sid: int, operation: str, target: str, priv: "Priv | str") -> None:
        name = priv if isinstance(priv, str) else f"+{priv.value}"
        self.entries.append(AuditEntry(sid, "auto-grant", operation, target, f"granted {name}"))

    def engine_allow(self, sid: int, operation: str, target: str, detail: str) -> None:
        """A policy engine allowed an operation capability semantics
        would have denied.  A distinct kind — not "auto-grant" — because
        no privilege was granted (the override is per-request), and so
        the denials/auto_grants fingerprint surfaces stay unchanged for
        engine-free runs."""
        self.entries.append(AuditEntry(sid, "engine-allow", operation, target, detail))

    def revoke(self, sid: int, target: str, detail: str) -> None:
        """Session teardown dropped this session's grants on ``target``
        (attributed to the dying session, not lost — the label-epoch
        bump this causes names the same sid)."""
        self.entries.append(AuditEntry(sid, "revoke", "teardown", target, detail))

    def denials(self) -> list[AuditEntry]:
        return [e for e in self.entries if e.kind == "deny"]

    def auto_grants(self) -> list[AuditEntry]:
        return [e for e in self.entries if e.kind == "auto-grant"]

    def engine_allows(self) -> list[AuditEntry]:
        return [e for e in self.entries if e.kind == "engine-allow"]

    def revocations(self) -> list[AuditEntry]:
        return [e for e in self.entries if e.kind == "revoke"]

    def format(self) -> str:
        return "\n".join(entry.format() for entry in self.entries)
