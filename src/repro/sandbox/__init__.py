"""SHILL's capability-based sandbox: the MAC policy module and sessions."""

from repro.sandbox.audit import AuditEntry, AuditLog
from repro.sandbox.policy import ShillPolicy
from repro.sandbox.privileges import (
    ALL_PRIVS,
    ALL_SOCK_PRIVS,
    DERIVING_PRIVS,
    ConnType,
    Priv,
    PrivSet,
    SocketPerms,
    SockPriv,
    priv_from_name,
    sock_priv_from_name,
)
from repro.sandbox.privmap import MergeConflict, PrivMap, ensure_privmap, privmap_of
from repro.sandbox.session import Session, SessionManager
from repro.sandbox.shilld import RunResult, parse_policy, parse_privspec, run_with_policy

__all__ = [
    "AuditEntry",
    "AuditLog",
    "ShillPolicy",
    "Priv",
    "PrivSet",
    "SockPriv",
    "SocketPerms",
    "ConnType",
    "ALL_PRIVS",
    "ALL_SOCK_PRIVS",
    "DERIVING_PRIVS",
    "priv_from_name",
    "sock_priv_from_name",
    "MergeConflict",
    "PrivMap",
    "privmap_of",
    "ensure_privmap",
    "Session",
    "SessionManager",
    "RunResult",
    "parse_policy",
    "parse_privspec",
    "run_with_policy",
]
