"""Privileges: the atoms of SHILL authority.

The paper (section 3.1.1): "In total, SHILL has twenty-four different
privileges for filesystem capabilities and seven different privileges for
sockets.  Socket privileges are further refined by connection type."
Privileges "align closely with the operations that our capability-based
sandbox can interpose on, so that we can ensure that giving a capability
to a sandbox conveys the same authority as giving that capability to a
SHILL script."

A :class:`PrivSet` is an immutable set of filesystem privileges where the
*deriving* privileges (``+lookup`` and the three ``+create-*``) may carry
a **modifier**: either ``None`` ("derived capabilities have the same
privileges as the parent") or an explicit privilege set (``+lookup with
{+stat, +path}``).
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, Mapping, Optional


class Priv(enum.Enum):
    """The 24 filesystem privileges."""

    # data access
    READ = "read"
    WRITE = "write"
    APPEND = "append"
    TRUNCATE = "truncate"
    IOCTL = "ioctl"
    # metadata
    STAT = "stat"
    PATH = "path"
    CHMOD = "chmod"
    CHOWN = "chown"
    CHFLAGS = "chflags"
    UTIMES = "utimes"
    # execution and traversal
    EXEC = "exec"
    CHDIR = "chdir"
    LOOKUP = "lookup"
    CONTENTS = "contents"
    READ_SYMLINK = "read-symlink"
    # namespace modification
    CREATE_FILE = "create-file"
    CREATE_DIR = "create-dir"
    CREATE_PIPE = "create-pipe"
    CREATE_SYMLINK = "create-symlink"
    UNLINK_FILE = "unlink-file"
    UNLINK_DIR = "unlink-dir"
    RENAME = "rename"
    LINK = "link"

    def __repr__(self) -> str:
        return f"+{self.value}"


#: Privileges whose exercise mints capabilities for *other* objects; only
#: these may carry ``with {...}`` modifiers.
DERIVING_PRIVS = frozenset(
    {Priv.LOOKUP, Priv.CREATE_FILE, Priv.CREATE_DIR, Priv.CREATE_PIPE}
)

ALL_PRIVS = frozenset(Priv)

_BY_NAME = {p.value: p for p in Priv}


def priv_from_name(name: str) -> Priv:
    """Parse ``"read"`` or ``"+read"`` into a :class:`Priv`."""
    key = name.lstrip("+")
    try:
        return _BY_NAME[key]
    except KeyError:
        raise ValueError(f"unknown privilege {name!r}") from None


Modifier = Optional[frozenset[Priv]]


class PrivSet(Mapping[Priv, Modifier]):
    """An immutable privilege set with per-privilege derive modifiers.

    Mapping semantics: keys are held privileges; the value is the modifier
    (``None`` = derived objects inherit this whole set; a frozenset =
    derived objects get exactly those privileges).  Modifiers on
    non-deriving privileges are rejected.
    """

    __slots__ = ("_privs",)

    def __init__(self, privs: Mapping[Priv, Modifier] | Iterable[tuple[Priv, Modifier]] = ()):
        items = dict(privs)
        for priv, modifier in items.items():
            if not isinstance(priv, Priv):
                raise TypeError(f"not a privilege: {priv!r}")
            if modifier is not None:
                if priv not in DERIVING_PRIVS:
                    raise ValueError(f"modifier on non-deriving privilege {priv!r}")
                items[priv] = frozenset(modifier)
        self._privs: dict[Priv, Modifier] = items

    # -- constructors ---------------------------------------------------------

    @classmethod
    def of(cls, *privs: Priv) -> "PrivSet":
        """A set of privileges, all with the inherit modifier."""
        return cls({p: None for p in privs})

    @classmethod
    def full(cls) -> "PrivSet":
        """All 24 privileges; deriving privileges inherit the full set."""
        return cls({p: None for p in Priv})

    @classmethod
    def empty(cls) -> "PrivSet":
        return cls({})

    def with_modifier(self, priv: Priv, mods: Iterable[Priv]) -> "PrivSet":
        """Return a copy where ``priv`` carries ``with {mods}``."""
        items = dict(self._privs)
        items[priv] = frozenset(mods)
        return PrivSet(items)

    def adding(self, *privs: Priv) -> "PrivSet":
        items = dict(self._privs)
        for p in privs:
            items.setdefault(p, None)
        return PrivSet(items)

    def removing(self, *privs: Priv) -> "PrivSet":
        items = {p: m for p, m in self._privs.items() if p not in privs}
        return PrivSet(items)

    # -- queries ---------------------------------------------------------------

    def has(self, priv: Priv) -> bool:
        return priv in self._privs

    def modifier(self, priv: Priv) -> Modifier:
        return self._privs[priv]

    def privs(self) -> frozenset[Priv]:
        return frozenset(self._privs)

    def effective_modifier(self, priv: Priv) -> frozenset[Priv]:
        """The modifier with ``None`` (inherit) resolved to this set's own
        privileges — the set a capability derived via ``priv`` would hold.
        """
        modifier = self._privs[priv]
        return self.privs() if modifier is None else modifier

    def derived_set(self, priv: Priv) -> "PrivSet":
        """The :class:`PrivSet` for a capability derived via ``priv``.

        Inherit modifier: the derived capability "has the same privileges
        as its parent capability" — the whole set including modifiers.
        Explicit modifier: exactly those privileges (inheriting onward).
        """
        modifier = self._privs[priv]
        if modifier is None:
            return self
        return PrivSet.of(*modifier)

    def subset_of(self, other: "PrivSet") -> bool:
        """Is every privilege (and every derivable consequence) of ``self``
        also available via ``other``?  Used for contract checks and for
        the parent-session bound when granting to child sessions.
        """
        for priv in self._privs:
            if priv not in other._privs:
                return False
            if priv in DERIVING_PRIVS:
                if not self.effective_modifier(priv) <= other.effective_modifier(priv):
                    return False
        return True

    def restricted_to(self, allowed: "PrivSet") -> "PrivSet":
        """Intersection used when a capability passes through a contract:
        keep only privileges present in ``allowed``, taking the *narrower*
        modifier on deriving privileges.
        """
        items: dict[Priv, Modifier] = {}
        for priv, modifier in self._privs.items():
            if priv not in allowed._privs:
                continue
            if priv in DERIVING_PRIVS:
                mine = self.effective_modifier(priv)
                theirs = allowed.effective_modifier(priv)
                narrowed = mine & theirs
                items[priv] = frozenset(narrowed)
            else:
                items[priv] = None
        return PrivSet(items)

    # -- Mapping protocol ---------------------------------------------------------

    def __getitem__(self, priv: Priv) -> Modifier:
        return self._privs[priv]

    def __iter__(self) -> Iterator[Priv]:
        return iter(self._privs)

    def __len__(self) -> int:
        return len(self._privs)

    def _canonical(self) -> frozenset:
        """Equality compares *effective* modifiers: an inherit modifier and
        an explicit modifier naming the same privileges are the same
        authority (their derivation chains coincide)."""
        return frozenset(
            (p, self.effective_modifier(p) if p in DERIVING_PRIVS else None)
            for p in self._privs
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PrivSet):
            return NotImplemented
        return self._canonical() == other._canonical()

    def __hash__(self) -> int:
        return hash(self._canonical())

    def __repr__(self) -> str:
        parts = []
        for priv in sorted(self._privs, key=lambda p: p.value):
            modifier = self._privs[priv]
            if modifier is None:
                parts.append(f"+{priv.value}")
            else:
                inner = ",".join(sorted(f"+{m.value}" for m in modifier))
                parts.append(f"+{priv.value} with {{{inner}}}")
        return "{" + ", ".join(parts) + "}"


class SockPriv(enum.Enum):
    """The 7 socket privileges."""

    CREATE = "create"
    BIND = "bind"
    CONNECT = "connect"
    LISTEN = "listen"
    ACCEPT = "accept"
    SEND = "send"
    RECEIVE = "receive"

    def __repr__(self) -> str:
        return f"+{self.value}"


ALL_SOCK_PRIVS = frozenset(SockPriv)

_SOCK_BY_NAME = {p.value: p for p in SockPriv}


def sock_priv_from_name(name: str) -> SockPriv:
    key = name.lstrip("+")
    try:
        return _SOCK_BY_NAME[key]
    except KeyError:
        raise ValueError(f"unknown socket privilege {name!r}") from None


class ConnType:
    """A connection-type refinement: (address family, socket type).

    "Socket privileges are further refined by connection type" — a socket
    factory may, e.g., allow only ``inet/stream``.  ``None`` components
    are wildcards.
    """

    __slots__ = ("domain", "stype")

    def __init__(self, domain: int | None = None, stype: int | None = None) -> None:
        self.domain = domain
        self.stype = stype

    def allows(self, domain: int, stype: int) -> bool:
        return (self.domain is None or self.domain == domain) and (
            self.stype is None or self.stype == stype
        )

    def __repr__(self) -> str:
        return f"ConnType(domain={self.domain}, stype={self.stype})"


class SocketPerms:
    """Socket privileges plus their connection-type refinement.

    Attached to a session when it is granted a *socket factory*
    capability; without one, a sandbox "must possess a socket factory
    capability to be allowed to create and use sockets" (section 3.1.1).
    """

    __slots__ = ("privs", "conn_types")

    def __init__(self, privs: Iterable[SockPriv], conn_types: Iterable[ConnType] = ()) -> None:
        self.privs = frozenset(privs)
        self.conn_types = tuple(conn_types) or (ConnType(),)

    @classmethod
    def full(cls) -> "SocketPerms":
        return cls(ALL_SOCK_PRIVS)

    def has(self, priv: SockPriv) -> bool:
        return priv in self.privs

    def allows_conn(self, domain: int, stype: int) -> bool:
        return any(ct.allows(domain, stype) for ct in self.conn_types)

    def subset_of(self, other: "SocketPerms") -> bool:
        if not self.privs <= other.privs:
            return False
        # Every connection type we allow must be allowed by `other`; with
        # wildcard components this is conservative: require each of our
        # conn types to be matched by an equal-or-wider one of theirs.
        for mine in self.conn_types:
            if not any(_conn_wider(theirs, mine) for theirs in other.conn_types):
                return False
        return True

    def __repr__(self) -> str:
        names = ",".join(sorted(f"+{p.value}" for p in self.privs))
        return f"SocketPerms({{{names}}}, {list(self.conn_types)!r})"


def _conn_wider(wider: ConnType, narrower: ConnType) -> bool:
    dom_ok = wider.domain is None or wider.domain == narrower.domain
    typ_ok = wider.stype is None or wider.stype == narrower.stype
    return dom_ok and typ_ok
