"""`shill-run`: the command-line debugging tool from section 3.2.2.

"There is a command-line tool for running a single shell command with
capabilities specified in a policy file" and "a session can be created in
debugging mode, which automatically grants the necessary privileges if an
operation would fail."

Policy file grammar (one declaration per line; ``#`` comments)::

    /usr/src : +lookup, +read, +contents, +stat, +path
    /tmp     : +lookup, +create-file with {+read, +write, +append, +unlink-file}
    pipe-factory
    socket-factory : inet stream
    ulimit open_files 64

Paths are resolved with the *invoking user's* ambient authority; the
named privileges are granted on the resolved object to a fresh session,
and the command runs inside it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SysError
from repro.kernel import errno_
from repro.kernel.kernel import Kernel
from repro.kernel.proc import Process
from repro.kernel.sockets import AddressFamily, SocketType
from repro.sandbox.audit import AuditLog
from repro.sandbox.privileges import (
    ConnType,
    Priv,
    PrivSet,
    SocketPerms,
    priv_from_name,
)

_DOMAINS = {"inet": AddressFamily.AF_INET, "unix": AddressFamily.AF_UNIX}
_STYPES = {"stream": SocketType.SOCK_STREAM, "dgram": SocketType.SOCK_DGRAM}


@dataclass
class ParsedPolicy:
    grants: list[tuple[str, PrivSet]] = field(default_factory=list)
    pipe_factory: bool = False
    socket_perms: SocketPerms | None = None
    ulimits: dict[str, int] = field(default_factory=dict)


def parse_policy(text: str) -> ParsedPolicy:
    """Parse the policy-file grammar documented in the module docstring."""
    policy = ParsedPolicy()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line == "pipe-factory":
            policy.pipe_factory = True
            continue
        if line.startswith("socket-factory"):
            policy.socket_perms = _parse_socket_factory(line, lineno)
            continue
        if line.startswith("ulimit"):
            parts = line.split()
            if len(parts) != 3:
                raise ValueError(f"policy line {lineno}: expected 'ulimit <name> <value>'")
            policy.ulimits[parts[1]] = int(parts[2])
            continue
        if ":" not in line:
            raise ValueError(f"policy line {lineno}: expected 'path : privileges'")
        path, _, privspec = line.partition(":")
        policy.grants.append((path.strip(), parse_privspec(privspec.strip(), lineno)))
    return policy


def _parse_socket_factory(line: str, lineno: int) -> SocketPerms:
    _, _, spec = line.partition(":")
    spec = spec.strip()
    if not spec:
        return SocketPerms.full()
    words = spec.split()
    domain = stype = None
    for word in words:
        if word in _DOMAINS:
            domain = int(_DOMAINS[word])
        elif word in _STYPES:
            stype = int(_STYPES[word])
        else:
            raise ValueError(f"policy line {lineno}: unknown socket spec {word!r}")
    from repro.sandbox.privileges import ALL_SOCK_PRIVS

    return SocketPerms(ALL_SOCK_PRIVS, (ConnType(domain, stype),))


def parse_privspec(spec: str, lineno: int = 0) -> PrivSet:
    """Parse ``+a, +b with {+c, +d}, +e`` into a :class:`PrivSet`."""
    items: dict[Priv, frozenset[Priv] | None] = {}
    for chunk in _split_top_level(spec):
        chunk = chunk.strip()
        if not chunk:
            continue
        if " with " in chunk:
            head, _, modspec = chunk.partition(" with ")
            priv = priv_from_name(head.strip())
            modspec = modspec.strip()
            if not (modspec.startswith("{") and modspec.endswith("}")):
                raise ValueError(f"policy line {lineno}: bad modifier {modspec!r}")
            mods = frozenset(
                priv_from_name(m.strip()) for m in modspec[1:-1].split(",") if m.strip()
            )
            items[priv] = mods
        elif chunk == "full":
            for priv in Priv:
                items.setdefault(priv, None)
        else:
            items[priv_from_name(chunk)] = None
    return PrivSet(items)


def _split_top_level(spec: str) -> list[str]:
    """Split on commas not inside ``{...}``."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in spec:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


@dataclass
class RunResult:
    status: int
    log: AuditLog
    auto_granted: list[str]


def run_with_policy(
    kernel: Kernel,
    user: str,
    policy_text: str,
    argv: list[str],
    *,
    debug: bool = False,
    stdin=None,
    stdout=None,
    stderr=None,
    cwd: str = "/",
    engine=None,
) -> RunResult:
    """Run ``argv`` in a sandbox configured from ``policy_text``.

    ``stdin``/``stdout``/``stderr`` are optional kernel objects (vnodes or
    pipe ends) wired to descriptors 0/1/2.  Returns the exit status, the
    session's audit log, and — in debug mode — the privileges that had to
    be auto-granted (the starting point for writing a tighter policy).

    ``engine`` binds a per-session :class:`repro.policy.PolicyEngine` to
    the sandbox session (overriding any kernel-wide engine for its
    checks).
    """
    if not argv:
        raise ValueError("argv must name a program")
    policy = parse_policy(policy_text)
    shill = kernel.install_shill_module()

    launcher = kernel.spawn_process(user, cwd)
    sys = kernel.syscalls(launcher)

    # Resolve every policy path with ambient authority.
    resolved: list[tuple[object, PrivSet]] = []
    for path, privs in policy.grants:
        _, _, vp = sys._resolve(path)
        if vp is None:
            raise SysError(errno_.ENOENT, path)
        resolved.append((vp, privs))

    # Resolve the executable through $PATH-free absolute/relative lookup.
    _, _, execvp = sys._resolve(argv[0])
    if execvp is None:
        raise SysError(errno_.ENOENT, argv[0])

    child = kernel.procs.fork(launcher)
    _wire_stdio(kernel, child, stdin, stdout, stderr)
    session = shill.sessions.shill_init(child, debug=debug, engine=engine)
    for obj, privs in resolved:
        shill.sessions.grant(session, obj, privs)
    # The tool always authorizes the command image itself (exec + the
    # traversal chain to reach it) and the provided stdio objects — the
    # policy file describes the command's *resource* authority.
    shill.sessions.grant(
        session, execvp, PrivSet.of(Priv.EXEC, Priv.READ, Priv.STAT, Priv.PATH)
    )
    traverse = PrivSet.of(Priv.LOOKUP).with_modifier(Priv.LOOKUP, ())
    node = execvp.nc_parent
    while node is not None:
        shill.sessions.grant(session, node, traverse)
        node = node.nc_parent
    rw = PrivSet.of(Priv.READ, Priv.WRITE, Priv.APPEND, Priv.STAT, Priv.PATH)
    for std_obj in (stdin, stdout, stderr):
        if std_obj is not None:
            target = std_obj.pipe if hasattr(std_obj, "pipe") else std_obj
            shill.sessions.grant(session, target, rw)
    if policy.pipe_factory:
        shill.sessions.grant_pipe_factory(session)
    if policy.socket_perms is not None:
        shill.sessions.grant_socket_factory(session, policy.socket_perms)
    child.ulimits = child.ulimits.merged_with(policy.ulimits or None)
    kernel.syscalls(child).shill_enter()

    status = kernel.exec_file(child, execvp, argv)
    auto = [entry.format() for entry in session.log.auto_grants()]
    result = RunResult(status=status, log=session.log, auto_granted=auto)
    kernel.procs.reap(launcher)
    return result


def _wire_stdio(kernel: Kernel, proc: Process, stdin, stdout, stderr) -> None:
    from repro.kernel.fdesc import OpenFile
    from repro.kernel.syscalls import O_RDONLY, O_WRONLY

    if stdin is not None:
        proc.fdtable.install(0, OpenFile(stdin, O_RDONLY))
    if stdout is not None:
        proc.fdtable.install(1, OpenFile(stdout, O_WRONLY))
    if stderr is not None:
        proc.fdtable.install(2, OpenFile(stderr, O_WRONLY))
