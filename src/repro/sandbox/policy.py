"""The SHILL capability-based MAC policy module.

This is the reproduction of the paper's FreeBSD kernel module: "The SHILL
sandbox is implemented as a policy module for the TrustedBSD MAC
Framework" (section 3.2).  Every hook follows the same scheme:

* find the subject's nearest **entered** session — processes outside any
  entered session are not sandboxed and every check passes;
* consult the object's **privilege map** for that session;
* allow iff the session holds the privilege the operation maps to, else
  return ``EACCES`` ("the system call aborts with an error but the
  process is otherwise allowed to continue");
* in **debug mode**, auto-grant the missing privilege and log it.

Design points taken directly from the paper:

* ``vnode_post_lookup``/``vnode_post_create`` propagate privileges to
  derived objects, honouring ``with {...}`` modifiers;
* ``..`` lookups are *permitted* (so existing programs keep working) but
  never propagate privileges; neither does ``.`` ("this can lead to
  privilege amplification");
* writing requires **both** ``+write`` and ``+append`` because the MAC
  framework "exposes a single entry point for operations that write";
* a session "must possess a socket factory capability to be allowed to
  create and use sockets"; non-IP/Unix socket families are denied
  outright (Figure 7);
* sysctl is read-only; kenv, kld, and IPC are denied;
* "processes in a session can only interact with processes in the same
  session or a descendent session."
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.kernel import errno_
from repro.kernel.mac import MacPolicy
from repro.kernel.sockets import AddressFamily
from repro.kernel.vfs import VType, Vnode
from repro.policy.engine import Decision, PolicyRequest, engine_for
from repro.sandbox.privileges import Priv, PrivSet, SockPriv
from repro.sandbox.privmap import ensure_privmap, privmap_of
from repro.sandbox.session import Session, SessionManager

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel
    from repro.kernel.pipes import Pipe
    from repro.kernel.proc import Process
    from repro.kernel.sockets import Socket

_CREATE_PRIV_FOR_VTYPE = {
    VType.VREG: Priv.CREATE_FILE,
    VType.VDIR: Priv.CREATE_DIR,
    VType.VLNK: Priv.CREATE_SYMLINK,
    VType.VFIFO: Priv.CREATE_PIPE,
}

_UNLINK_PRIV_FOR_VTYPE = {
    VType.VDIR: Priv.UNLINK_DIR,
}

_ALLOWED_SOCKET_DOMAINS = {int(AddressFamily.AF_UNIX), int(AddressFamily.AF_INET)}


class ShillPolicy(MacPolicy):
    """The SHILL MAC policy: capability-based sandboxing."""

    name = "shill"

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.sessions = SessionManager(kernel)

    def fork_for(self, kernel: "Kernel") -> "ShillPolicy":
        """A fresh policy for a forked kernel: its own session manager,
        seeded with this one's audit history and sid watermark (live
        sessions are per-run state and never cross a fork)."""
        new = ShillPolicy(kernel)
        new.sessions.restore(self.sessions.audit_records(), self.sessions.last_sid)
        return new

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    @staticmethod
    def _effective_session(proc: "Process") -> Session | None:
        """The nearest *entered* session confining this process.

        A process between ``shill_init`` and ``shill_enter`` is still
        being configured by its (trusted or already-confined) parent
        context, so enforcement applies from the closest entered
        ancestor, if any.
        """
        session = proc.session
        while session is not None and not session.entered:
            session = session.parent
        return session

    def _describe(self, obj: Any) -> str:
        from repro.sandbox.audit import describe_object

        return describe_object(self.kernel, obj)

    def _require(self, proc: "Process", obj: Any, priv: Priv, operation: str) -> int:
        """Core check: does the subject's session hold ``priv`` on ``obj``?

        A non-passive policy engine (per-session, else kernel-wide) is
        consulted first: ALLOW overrides a would-be denial (audited as
        ``engine-allow``), DENY revokes the operation (audited as a
        normal denial with engine attribution), DEFER falls through to
        the privilege map — the unmodified capability semantics.
        """
        session = self._effective_session(proc)
        if session is None:
            return 0
        pm = privmap_of(obj)
        privs = pm.privs_for(session.sid) if pm is not None else PrivSet.empty()
        engine = engine_for(session, self.kernel)
        request = None
        if engine is not None and not engine.passive:
            request = PolicyRequest(
                domain="vnode" if isinstance(obj, Vnode) else "pipe",
                operation=operation,
                target=self._describe(obj),
                priv=f"+{priv.value}",
                sid=session.sid,
                user=proc.cred.username,
                held=frozenset(f"+{p.value}" for p in privs),
            )
            decision = engine.pre_check(request)
            if decision is Decision.ALLOW:
                if not privs.has(priv):
                    session.log.engine_allow(
                        session.sid, operation, request.target,
                        f"+{priv.value} allowed by {engine.name}")
                return 0
            if decision is Decision.DENY:
                session.log.deny(session.sid, operation, request.target,
                                 f"+{priv.value} (denied by {engine.name})")
                return errno_.EACCES
        if privs.has(priv):
            if request is not None:
                engine.post_check(request, True)
            return 0
        if session.debug:
            ensure_privmap(obj).merge(session.sid, PrivSet.of(priv))
            self.kernel.label_mutation(session.sid)
            session.log.auto_grant(session.sid, operation, self._describe(obj), priv)
            if request is not None:
                engine.post_check(request, True)
            return 0
        session.log.deny(session.sid, operation, self._describe(obj), priv)
        if request is not None:
            engine.post_check(request, False)
        return errno_.EACCES

    def _require_all(self, proc: "Process", obj: Any, privs: tuple[Priv, ...], operation: str) -> int:
        for priv in privs:
            error = self._require(proc, obj, priv, operation)
            if error:
                return error
        return 0

    def _deny_sandboxed(self, proc: "Process", operation: str, target: str) -> int:
        session = self._effective_session(proc)
        if session is None:
            return 0
        # These operations are not capability-gated: they are denied in
        # every sandbox (Figure 7), so debug mode does not auto-grant.
        # Only an explicit engine ALLOW can override the blanket denial.
        engine = engine_for(session, self.kernel)
        if engine is not None and not engine.passive:
            request = PolicyRequest(domain="system", operation=operation,
                                    target=target, sid=session.sid,
                                    user=proc.cred.username)
            decision = engine.pre_check(request)
            if decision is Decision.ALLOW:
                session.log.engine_allow(
                    session.sid, operation, target,
                    f"allowed by {engine.name} (denied in sandboxes by default)")
                return 0
            # DENY and DEFER converge here: the sandbox denies anyway.
            engine.post_check(request, False)
        session.log.deny(session.sid, operation, target, "(denied in sandboxes)")
        return errno_.EACCES

    # ------------------------------------------------------------------
    # vnode checks
    # ------------------------------------------------------------------

    def vnode_check_lookup(self, proc: "Process", dvp: Vnode, name: str) -> int:
        # "the sandbox allows any lookup operation on a directory if the
        # session has the +lookup privilege" — including "." and "..".
        return self._require(proc, dvp, Priv.LOOKUP, f"lookup {name!r}")

    def vnode_post_lookup(self, proc: "Process", dvp: Vnode, vp: Vnode, name: str) -> None:
        session = self._effective_session(proc)
        if session is None:
            return
        # No propagation through ".." (fine-grained confinement) nor "."
        # (privilege amplification), section 3.2.2.
        if name in (".", ".."):
            return
        pm = privmap_of(dvp)
        if pm is None:
            return
        privs = pm.privs_for(session.sid)
        if not privs.has(Priv.LOOKUP):
            return
        derived = privs.derived_set(Priv.LOOKUP)
        if len(derived) == 0:
            return
        conflicts = ensure_privmap(vp).merge(session.sid, derived)
        self.kernel.label_mutation(session.sid)
        session.merge_conflicts.extend(conflicts)
        session.granted_objects.append(vp)

    def vnode_check_open(self, proc: "Process", vp: Vnode, accmode: int) -> int:
        from repro.kernel.cred import R_OK, W_OK, X_OK

        needed: list[Priv] = []
        if accmode & R_OK:
            needed.append(Priv.READ)
        if accmode & W_OK:
            # Single MAC write entry point: require both (section 3.2.3).
            needed.extend((Priv.WRITE, Priv.APPEND))
        if accmode & X_OK:
            needed.append(Priv.EXEC)
        return self._require_all(proc, vp, tuple(needed), "open")

    def vnode_check_read(self, proc: "Process", vp: Vnode) -> int:
        return self._require(proc, vp, Priv.READ, "read")

    def vnode_check_write(self, proc: "Process", vp: Vnode) -> int:
        return self._require_all(proc, vp, (Priv.WRITE, Priv.APPEND), "write")

    def vnode_check_create(self, proc: "Process", dvp: Vnode, name: str, vtype: VType) -> int:
        priv = _CREATE_PRIV_FOR_VTYPE.get(vtype)
        if priv is None:
            return errno_.EACCES
        return self._require(proc, dvp, priv, f"create {name!r}")

    def vnode_post_create(self, proc: "Process", dvp: Vnode, vp: Vnode, name: str, vtype: VType) -> None:
        session = self._effective_session(proc)
        if session is None:
            return
        priv = _CREATE_PRIV_FOR_VTYPE.get(vtype)
        if priv is None:
            return
        pm = privmap_of(dvp)
        if pm is None:
            return
        privs = pm.privs_for(session.sid)
        if not privs.has(priv):
            return
        derived = privs.derived_set(priv)
        if len(derived) == 0:
            return
        conflicts = ensure_privmap(vp).merge(session.sid, derived)
        self.kernel.label_mutation(session.sid)
        session.merge_conflicts.extend(conflicts)
        session.granted_objects.append(vp)

    def vnode_check_unlink(self, proc: "Process", dvp: Vnode, vp: Vnode, name: str) -> int:
        # Deletion requires the unlink privilege on the *target*: this is
        # how "delete only files that were created with the capability"
        # (section 5) falls out — created files get privileges via the
        # create modifier; pre-existing files don't.
        priv = _UNLINK_PRIV_FOR_VTYPE.get(vp.vtype, Priv.UNLINK_FILE)
        return self._require(proc, vp, priv, f"unlink {name!r}")

    def vnode_check_rename_from(self, proc: "Process", dvp: Vnode, vp: Vnode) -> int:
        return self._require(proc, vp, Priv.RENAME, "rename-from")

    def vnode_check_rename_to(self, proc: "Process", dvp: Vnode, vp: Vnode) -> int:
        priv = _CREATE_PRIV_FOR_VTYPE.get(vp.vtype, Priv.CREATE_FILE)
        return self._require(proc, dvp, priv, "rename-to")

    def vnode_check_link(self, proc: "Process", dvp: Vnode, vp: Vnode) -> int:
        error = self._require(proc, vp, Priv.LINK, "link")
        if error:
            return error
        return self._require(proc, dvp, Priv.CREATE_FILE, "link-target")

    def vnode_check_stat(self, proc: "Process", vp: Vnode) -> int:
        return self._require(proc, vp, Priv.STAT, "stat")

    def vnode_check_readdir(self, proc: "Process", vp: Vnode) -> int:
        return self._require(proc, vp, Priv.CONTENTS, "readdir")

    def vnode_check_readlink(self, proc: "Process", vp: Vnode) -> int:
        return self._require(proc, vp, Priv.READ_SYMLINK, "readlink")

    def vnode_check_exec(self, proc: "Process", vp: Vnode) -> int:
        return self._require(proc, vp, Priv.EXEC, "exec")

    def vnode_check_setmode(self, proc: "Process", vp: Vnode, mode: int) -> int:
        return self._require(proc, vp, Priv.CHMOD, "chmod")

    def vnode_check_setowner(self, proc: "Process", vp: Vnode, uid: int, gid: int) -> int:
        return self._require(proc, vp, Priv.CHOWN, "chown")

    def vnode_check_setutimes(self, proc: "Process", vp: Vnode) -> int:
        return self._require(proc, vp, Priv.UTIMES, "utimes")

    def vnode_check_setflags(self, proc: "Process", vp: Vnode, flags: int) -> int:
        return self._require(proc, vp, Priv.CHFLAGS, "chflags")

    def vnode_check_truncate(self, proc: "Process", vp: Vnode) -> int:
        return self._require(proc, vp, Priv.TRUNCATE, "truncate")

    def vnode_check_chdir(self, proc: "Process", vp: Vnode) -> int:
        return self._require(proc, vp, Priv.CHDIR, "chdir")

    # ------------------------------------------------------------------
    # pipes
    # ------------------------------------------------------------------

    def pipe_check_create(self, proc: "Process") -> int:
        session = self._effective_session(proc)
        if session is None:
            return 0
        if session.pipe_factory:
            return 0
        if session.debug:
            session.pipe_factory = True
            session.log.auto_grant(session.sid, "pipe-create", "<pipe>", "pipe-factory")
            return 0
        session.log.deny(session.sid, "pipe-create", "<pipe>", "pipe-factory")
        return errno_.EACCES

    def pipe_post_create(self, proc: "Process", pipe: "Pipe") -> None:
        session = self._effective_session(proc)
        if session is None:
            return
        # A pipe the session minted itself is fully usable by it.
        full = PrivSet.of(Priv.READ, Priv.WRITE, Priv.APPEND, Priv.STAT, Priv.PATH)
        ensure_privmap(pipe).merge(session.sid, full)
        self.kernel.label_mutation(session.sid)
        session.granted_objects.append(pipe)

    def pipe_check_read(self, proc: "Process", pipe: "Pipe") -> int:
        return self._require(proc, pipe, Priv.READ, "pipe-read")

    def pipe_check_write(self, proc: "Process", pipe: "Pipe") -> int:
        return self._require_all(proc, pipe, (Priv.WRITE, Priv.APPEND), "pipe-write")

    def pipe_check_stat(self, proc: "Process", pipe: "Pipe") -> int:
        return self._require(proc, pipe, Priv.STAT, "pipe-stat")

    # ------------------------------------------------------------------
    # sockets
    # ------------------------------------------------------------------

    def _require_sock(self, proc: "Process", priv: SockPriv, operation: str) -> int:
        session = self._effective_session(proc)
        if session is None:
            return 0
        perms = session.socket_perms
        engine = engine_for(session, self.kernel)
        request = None
        if engine is not None and not engine.passive:
            request = PolicyRequest(domain="socket", operation=operation,
                                    target="<socket>", priv=f"+{priv.value}",
                                    sid=session.sid, user=proc.cred.username)
            decision = engine.pre_check(request)
            if decision is Decision.ALLOW:
                if perms is None or not perms.has(priv):
                    session.log.engine_allow(
                        session.sid, operation, "<socket>",
                        f"+{priv.value} allowed by {engine.name}")
                return 0
            if decision is Decision.DENY:
                session.log.deny(session.sid, operation, "<socket>",
                                 f"+{priv.value} (denied by {engine.name})")
                return errno_.EACCES
        if perms is not None and perms.has(priv):
            if request is not None:
                engine.post_check(request, True)
            return 0
        if request is not None:
            engine.post_check(request, session.debug)
        if session.debug:
            from repro.sandbox.privileges import SocketPerms

            session.socket_perms = SocketPerms.full()
            session.log.auto_grant(session.sid, operation, "<socket>", f"+{priv.value}")
            return 0
        session.log.deny(session.sid, operation, "<socket>", f"+{priv.value}")
        return errno_.EACCES

    def socket_check_create(self, proc: "Process", domain: int, stype: int) -> int:
        session = self._effective_session(proc)
        if session is None:
            return 0
        # Figure 7: socket families other than IP and Unix are denied
        # in sandboxes unconditionally.
        if domain not in _ALLOWED_SOCKET_DOMAINS:
            session.log.deny(session.sid, "socket-create", f"<af {domain}>", "(family denied)")
            return errno_.EACCES
        error = self._require_sock(proc, SockPriv.CREATE, "socket-create")
        if error:
            return error
        # perms is None only when an engine ALLOW overrode a session with
        # no socket factory — the override carries no conn-type refinement.
        perms = session.socket_perms
        if perms is not None and not perms.allows_conn(domain, stype):
            session.log.deny(session.sid, "socket-create", f"<af {domain}>", "(conn type)")
            return errno_.EACCES
        return 0

    def socket_check_bind(self, proc: "Process", sock: "Socket", addr: tuple) -> int:
        return self._require_sock(proc, SockPriv.BIND, "socket-bind")

    def socket_check_listen(self, proc: "Process", sock: "Socket") -> int:
        return self._require_sock(proc, SockPriv.LISTEN, "socket-listen")

    def socket_check_accept(self, proc: "Process", sock: "Socket") -> int:
        return self._require_sock(proc, SockPriv.ACCEPT, "socket-accept")

    def socket_check_connect(self, proc: "Process", sock: "Socket", addr: tuple) -> int:
        return self._require_sock(proc, SockPriv.CONNECT, "socket-connect")

    def socket_check_send(self, proc: "Process", sock: "Socket") -> int:
        return self._require_sock(proc, SockPriv.SEND, "socket-send")

    def socket_check_receive(self, proc: "Process", sock: "Socket") -> int:
        return self._require_sock(proc, SockPriv.RECEIVE, "socket-receive")

    # ------------------------------------------------------------------
    # processes: interact only with own session or descendants
    # ------------------------------------------------------------------

    def _check_proc_interaction(self, proc: "Process", target: "Process", operation: str) -> int:
        session = self._effective_session(proc)
        if session is None:
            return 0
        target_session = target.session
        ok = target_session is not None and target_session.is_descendant_of(session)
        engine = engine_for(session, self.kernel)
        if engine is not None and not engine.passive:
            request = PolicyRequest(domain="proc", operation=operation,
                                    target=f"<pid {target.pid}>",
                                    sid=session.sid, user=proc.cred.username)
            decision = engine.pre_check(request)
            if decision is Decision.ALLOW:
                if not ok:
                    session.log.engine_allow(session.sid, operation, request.target,
                                             f"allowed by {engine.name}")
                return 0
            if decision is Decision.DENY:
                session.log.deny(session.sid, operation, request.target,
                                 f"(denied by {engine.name})")
                return errno_.EACCES
            engine.post_check(request, ok)
        if ok:
            return 0
        session.log.deny(session.sid, operation, f"<pid {target.pid}>", "(outside session)")
        return errno_.EACCES

    def proc_check_signal(self, proc: "Process", target: "Process", signum: int) -> int:
        return self._check_proc_interaction(proc, target, "signal")

    def proc_check_wait(self, proc: "Process", target: "Process") -> int:
        return self._check_proc_interaction(proc, target, "wait")

    def proc_check_debug(self, proc: "Process", target: "Process") -> int:
        return self._check_proc_interaction(proc, target, "debug")

    # ------------------------------------------------------------------
    # system-wide resources (Figure 7)
    # ------------------------------------------------------------------

    def system_check_sysctl(self, proc: "Process", name: str, write: bool) -> int:
        if not write:
            return 0  # read-only in sandboxes
        return self._deny_sandboxed(proc, "sysctl-write", name)

    def kenv_check(self, proc: "Process", op: str, name: str) -> int:
        return self._deny_sandboxed(proc, f"kenv-{op}", name)

    def kld_check_load(self, proc: "Process", name: str) -> int:
        return self._deny_sandboxed(proc, "kldload", name)

    def kld_check_unload(self, proc: "Process", name: str) -> int:
        # "no sandboxed executable has a capability to unload kernel
        # modules, including the module that enforces the MAC policy."
        return self._deny_sandboxed(proc, "kldunload", name)

    def ipc_check(self, proc: "Process", kind: str, op: str, name: str) -> int:
        return self._deny_sandboxed(proc, f"{kind}-{op}", name)
