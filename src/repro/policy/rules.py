"""Declarative, data-driven policy rules.

A :class:`RuleEngine` is a policy as *data*: an ordered list of plain
dicts (loadable from JSON) matched first-hit-wins against each
:class:`~repro.policy.engine.PolicyRequest`.  Because the rules are
data, policies change with zero code changes — edit a JSON file, hand
it to :meth:`repro.api.World.with_policy_rules`, done — and because the
rule list has a stable :meth:`~RuleEngine.digest`, a world that
installs one stays boot-cacheable and its batch results stay
result-cacheable.

Rule schema (all fields optional except ``effect``; an absent field
matches everything)::

    {
      "name":       "block-secrets",          # for audit attribution
      "effect":     "allow" | "deny",         # required
      "domains":    ["vnode", "language"],    # see DOMAINS
      "operations": ["read", "open*"],        # fnmatch globs
      "privs":      ["+read", "+write"],      # SHILL privilege names
      "paths":      ["/etc/secrets"],         # prefix match on target
      "users":      ["alice"],                # subject user names
    }

and the engine-level ``default`` ("defer" | "allow" | "deny") answers
requests no rule matches.  ``default: "defer"`` (the default) keeps
unmatched requests on pure SHILL capability semantics — the engine is
then a pointwise *patch* over the capability policy rather than a
replacement for it.

Scope guard: unless a rule names domains explicitly, rules apply to the
session-scoped domains (vnode/pipe/socket/system/language) and **not**
to raw ``mac`` framework hooks — a framework-level denial bypasses the
session audit log, which would silently break the "every denial is
audited" invariant the fuzzer checks.  Name ``"mac"`` in ``domains``
to opt in deliberately.
"""

from __future__ import annotations

import hashlib
import json
from fnmatch import fnmatchcase
from typing import Any, Iterable, Optional

from repro.policy.engine import DOMAINS, Decision, PolicyEngine, PolicyRequest

#: Domains a rule applies to when it does not name any: everything with
#: session context (and therefore an audit trail for denials).
DEFAULT_DOMAINS = frozenset(d for d in DOMAINS if d != "mac")

_EFFECTS = {"allow": Decision.ALLOW, "deny": Decision.DENY}
_DEFAULTS = {"defer": Decision.DEFER, "allow": Decision.ALLOW, "deny": Decision.DENY}
_RULE_FIELDS = {"name", "effect", "domains", "operations", "privs", "paths", "users"}


class RuleError(ValueError):
    """A malformed rule or rule file."""


def _as_tuple(rule: dict, key: str) -> Optional[tuple[str, ...]]:
    value = rule.get(key)
    if value is None:
        return None
    if isinstance(value, str):
        raise RuleError(f"rule field {key!r} must be a list, got the string {value!r}")
    out = tuple(value)
    if not all(isinstance(v, str) for v in out):
        raise RuleError(f"rule field {key!r} must be a list of strings")
    return out


class Rule:
    """One compiled rule.  Matching is pure; instances are immutable."""

    __slots__ = ("name", "effect", "domains", "operations", "privs", "paths", "users")

    def __init__(self, spec: dict, index: int) -> None:
        if not isinstance(spec, dict):
            raise RuleError(f"rule #{index} is not an object: {spec!r}")
        unknown = set(spec) - _RULE_FIELDS
        if unknown:
            raise RuleError(f"rule #{index} has unknown fields: {sorted(unknown)}")
        try:
            self.effect = _EFFECTS[spec["effect"]]
        except KeyError:
            raise RuleError(
                f"rule #{index} needs \"effect\": \"allow\" or \"deny\" "
                f"(got {spec.get('effect')!r})"
            ) from None
        self.name = str(spec.get("name", f"rule-{index}"))
        domains = _as_tuple(spec, "domains")
        if domains is not None:
            bad = set(domains) - set(DOMAINS)
            if bad:
                raise RuleError(f"rule {self.name!r}: unknown domains {sorted(bad)}")
            self.domains: frozenset = frozenset(domains)
        else:
            self.domains = DEFAULT_DOMAINS
        self.operations = _as_tuple(spec, "operations")
        self.privs = _as_tuple(spec, "privs")
        self.paths = _as_tuple(spec, "paths")
        self.users = _as_tuple(spec, "users")

    def matches(self, request: PolicyRequest) -> bool:
        if request.domain not in self.domains:
            return False
        if self.operations is not None and not any(
            fnmatchcase(request.operation, pat) for pat in self.operations
        ):
            return False
        if self.privs is not None and request.priv not in self.privs:
            return False
        if self.users is not None and request.user not in self.users:
            return False
        if self.paths is not None:
            target = request.target
            if not any(
                target == p or (target.startswith(p.rstrip("/") + "/") if p != "/" else target.startswith("/"))
                for p in self.paths
            ):
                return False
        return True

    def spec(self) -> dict:
        out: dict[str, Any] = {"name": self.name, "effect": self.effect.value}
        if self.domains != DEFAULT_DOMAINS:
            out["domains"] = sorted(self.domains)
        for key in ("operations", "privs", "paths", "users"):
            value = getattr(self, key)
            if value is not None:
                out[key] = list(value)
        return out


class RuleEngine(PolicyEngine):
    """A policy engine driven entirely by declarative rules.

    First matching rule wins; the engine ``default`` answers requests no
    rule matches.  Instances are immutable (``mutations`` stays 0) and
    picklable, and two engines built from equal rule data have equal
    :meth:`digest` — which is what lets a world carrying one keep its
    boot cache and result cache.

    Example::

        from repro.policy import Decision, PolicyRequest, RuleEngine

        engine = RuleEngine([
            {"name": "no-secrets", "effect": "deny", "paths": ["/etc/secrets"]},
        ])
        denied = PolicyRequest(domain="vnode", operation="read",
                               target="/etc/secrets/key", priv="+read")
        other = PolicyRequest(domain="vnode", operation="read",
                              target="/etc/motd", priv="+read")
        assert engine.pre_check(denied) is Decision.DENY
        assert engine.pre_check(other) is Decision.DEFER
    """

    name = "rules"
    passive = False

    def __init__(self, rules: Iterable[dict] = (), default: str = "defer",
                 name: Optional[str] = None) -> None:
        super().__init__()
        if default not in _DEFAULTS:
            raise RuleError(f"default must be one of {sorted(_DEFAULTS)}, got {default!r}")
        self.rules = tuple(Rule(spec, i) for i, spec in enumerate(rules))
        self.default = default
        if name is not None:
            self.name = str(name)

    # -- decisions ---------------------------------------------------------

    def match(self, request: PolicyRequest) -> Optional[Rule]:
        for rule in self.rules:
            if rule.matches(request):
                return rule
        return None

    def pre_check(self, request: PolicyRequest) -> Decision:
        rule = self.match(request)
        if rule is not None:
            self.record(request, rule.effect, rule=rule.name)
            return rule.effect
        # The engine default is scoped like default-domain rules: raw
        # ``mac`` framework requests always defer unless a rule names
        # them, so a default of "deny" can never produce a framework-
        # level denial that bypasses the session audit trail (and a
        # default of "allow" can never switch off the capability policy
        # wholesale — it answers per-privilege checks, which log).
        if request.domain not in DEFAULT_DOMAINS:
            return Decision.DEFER
        decision = _DEFAULTS[self.default]
        if decision is not Decision.DEFER:
            self.record(request, decision, rule=f"default-{self.default}")
        return decision

    # -- data round-trips --------------------------------------------------

    def to_spec(self) -> dict:
        """The engine as plain data (inverse of :meth:`from_spec`)."""
        return {
            "name": self.name,
            "default": self.default,
            "rules": [rule.spec() for rule in self.rules],
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "RuleEngine":
        """Build from ``{"rules": [...], "default": ..., "name": ...}``
        (or a bare rule list)."""
        if isinstance(spec, list):
            spec = {"rules": spec}
        if not isinstance(spec, dict):
            raise RuleError(f"policy spec must be an object or list, got {type(spec).__name__}")
        unknown = set(spec) - {"name", "default", "rules"}
        if unknown:
            raise RuleError(f"policy spec has unknown fields: {sorted(unknown)}")
        return cls(
            spec.get("rules", ()),
            default=spec.get("default", "defer"),
            name=spec.get("name"),
        )

    @classmethod
    def from_json(cls, text: str) -> "RuleEngine":
        """Build from JSON text (a policy file's contents)."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RuleError(f"policy file is not valid JSON: {exc}") from exc
        return cls.from_spec(data)

    def to_json(self) -> str:
        return json.dumps(self.to_spec(), indent=2, sort_keys=True)

    def digest(self) -> str:
        canonical = json.dumps(self.to_spec(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def describe(self) -> dict:
        return {
            "engine": self.name,
            "passive": self.passive,
            "default": self.default,
            "rules": len(self.rules),
            "digest": self.digest()[:16],
        }

    def __repr__(self) -> str:
        return (
            f"<RuleEngine {self.name!r} rules={len(self.rules)} "
            f"default={self.default!r}>"
        )
