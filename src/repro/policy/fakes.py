"""A configurable fake engine for tests.

:class:`FakePolicyEngine` answers from an explicit override table
instead of real policy logic, so a test can pin exactly the decisions
it needs and then assert on what the system *asked* — every request
(including deferred ones) lands in ``engine.requests``.

The override key is ``(domain, operation, target, priv)`` with ``None``
as a wildcard in any position; the most specific matching override
(most non-wildcard fields) wins, ties broken by insertion order
(later wins — a test that refines an override gets the refinement).
"""

from __future__ import annotations

from typing import Optional

from repro.policy.engine import Decision, PolicyEngine, PolicyRequest

_KEY_FIELDS = ("domain", "operation", "target", "priv")


class FakePolicyEngine(PolicyEngine):
    """Test double: decisions come from an explicit override table.

    Example::

        from repro.policy import Decision, FakePolicyEngine, PolicyRequest

        engine = FakePolicyEngine()
        engine.set(domain="vnode", priv="+write", decision=Decision.DENY)
        req = PolicyRequest(domain="vnode", operation="write",
                            target="/tmp/x", priv="+write")
        assert engine.pre_check(req) is Decision.DENY
        assert engine.requests[-1] is req

    ``deny_by_default()`` / ``allow_by_default()`` flip what unmatched
    requests get (a fresh fake defers them, i.e. pure capability
    semantics).
    """

    name = "fake"
    passive = False

    def __init__(self) -> None:
        super().__init__()
        self._overrides: list[tuple[tuple, Decision]] = []
        self._default = Decision.DEFER
        #: every request this engine was asked about, in order.
        self.requests: list[PolicyRequest] = []
        #: outcomes observed via post_check: (request, allowed) pairs.
        self.observed: list[tuple[PolicyRequest, bool]] = []

    # -- configuration -----------------------------------------------------

    def set(self, *, domain: Optional[str] = None, operation: Optional[str] = None,
            target: Optional[str] = None, priv: Optional[str] = None,
            decision: Decision = Decision.DENY) -> "FakePolicyEngine":
        """Pin ``decision`` for requests matching the given fields
        (``None`` = wildcard).  Returns self for chaining."""
        if not isinstance(decision, Decision):
            decision = Decision(decision)
        self._overrides.append(((domain, operation, target, priv), decision))
        self.mutations += 1
        return self

    def deny_by_default(self) -> "FakePolicyEngine":
        """Unmatched requests are denied (allow-list mode)."""
        self._default = Decision.DENY
        self.mutations += 1
        return self

    def allow_by_default(self) -> "FakePolicyEngine":
        """Unmatched requests are allowed (deny-list mode)."""
        self._default = Decision.ALLOW
        self.mutations += 1
        return self

    def reset(self) -> "FakePolicyEngine":
        """Drop all overrides, defaults, and recorded traffic."""
        self._overrides.clear()
        self._default = Decision.DEFER
        self.requests.clear()
        self.observed.clear()
        self.records.clear()
        self.mutations += 1
        return self

    # -- decisions ---------------------------------------------------------

    def _lookup(self, request: PolicyRequest) -> Optional[Decision]:
        best: Optional[tuple[int, int, Decision]] = None
        for order, (key, decision) in enumerate(self._overrides):
            score = 0
            for field, want in zip(_KEY_FIELDS, key):
                if want is None:
                    continue
                if getattr(request, field) != want:
                    break
                score += 1
            else:
                if best is None or (score, order) >= best[:2]:
                    best = (score, order, decision)
        return best[2] if best else None

    def pre_check(self, request: PolicyRequest) -> Decision:
        self.requests.append(request)
        decision = self._lookup(request)
        if decision is None:
            decision = self._default
        if decision is not Decision.DEFER:
            self.record(request, decision, rule="override")
        return decision

    def post_check(self, request: PolicyRequest, allowed: bool) -> None:
        self.observed.append((request, allowed))

    # -- introspection -----------------------------------------------------

    def asked(self, *, domain: Optional[str] = None,
              operation: Optional[str] = None) -> list[PolicyRequest]:
        """The requests seen, optionally filtered by domain/operation."""
        return [
            r for r in self.requests
            if (domain is None or r.domain == domain)
            and (operation is None or r.operation == operation)
        ]

    def describe(self) -> dict:
        return {
            "engine": self.name,
            "passive": self.passive,
            "overrides": len(self._overrides),
            "default": self._default.value,
        }

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state["requests"] = []
        state["observed"] = []
        return state
