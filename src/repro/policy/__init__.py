"""Pluggable policy engines: SHILL's access-control decisions as data.

The protocol lives in :mod:`repro.policy.engine` (PolicyEngine,
PolicyRequest, Decision, DecisionRecord), the declarative data-driven
implementation in :mod:`repro.policy.rules` (RuleEngine — JSON rules,
first match wins), and the test double in :mod:`repro.policy.fakes`
(FakePolicyEngine — explicit override table).

See ``docs/policy.md`` for the executable tour.
"""

from repro.policy.engine import (
    DOMAINS,
    CapabilityEngine,
    Decision,
    DecisionRecord,
    PolicyEngine,
    PolicyRequest,
    engine_for,
)
from repro.policy.fakes import FakePolicyEngine
from repro.policy.rules import DEFAULT_DOMAINS, Rule, RuleEngine, RuleError

__all__ = [
    "DOMAINS",
    "DEFAULT_DOMAINS",
    "CapabilityEngine",
    "Decision",
    "DecisionRecord",
    "FakePolicyEngine",
    "PolicyEngine",
    "PolicyRequest",
    "Rule",
    "RuleEngine",
    "RuleError",
    "engine_for",
]
