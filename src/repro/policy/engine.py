"""The pluggable policy-engine protocol.

SHILL's value is the policy layer, but until this module the MAC and
capability decisions were hard-wired: :class:`repro.sandbox.policy.
ShillPolicy` consulted privilege maps directly, and the language layer
(:mod:`repro.capability.caps`) consulted privilege sets directly.  A
:class:`PolicyEngine` slots *in front of* those decisions: every check
site first asks the engine, which may

* **ALLOW** — override a would-be denial (the operation proceeds, and
  the override is audited),
* **DENY** — revoke an operation the capability semantics would have
  allowed (the denial is audited like any other), or
* **DEFER** — fall through to the unmodified SHILL capability
  semantics.

The default (no engine, or :class:`CapabilityEngine`) defers everything,
so a kernel without an engine behaves **byte-identically** to the
hard-wired code: same audit lines, same op counts, same fingerprints.

Decision sites and their request *domains*:

===========  ==============================================  ==========
domain       decision site                                    denial
===========  ==============================================  ==========
``vnode``    :meth:`ShillPolicy._require` on a vnode          audited
``pipe``     :meth:`ShillPolicy._require` on a pipe           audited
``socket``   :meth:`ShillPolicy._require_sock`                audited
``system``   :meth:`ShillPolicy._deny_sandboxed` (Figure 7)   audited
``language``  capability-value privilege checks               contract
             (:class:`repro.capability.caps.FsCap`)           violation
``mac``      :meth:`repro.kernel.mac.MacFramework.check`      raw errno
             (raw framework hooks, *no* session context)
===========  ==============================================  ==========

Engines are consulted through two hooks (the pre/post shape of the
snippet-idiom Policy ABC): :meth:`PolicyEngine.pre_check` decides,
:meth:`PolicyEngine.post_check` observes the final outcome.  Every
non-DEFER decision is retained as a :class:`DecisionRecord` on the
engine (``engine.records``) for inspection — the approval/audit trail.

Engine placement: a kernel-wide engine lives at
``kernel.policy_engine`` (declaratively: :meth:`repro.api.World.
with_policy_rules`); a per-sandbox-session engine at
``session.engine`` overrides it (:class:`repro.api.Sandbox` and
:class:`repro.api.Session` accept ``engine=``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

#: The request domains engines can be consulted in.
DOMAINS = ("vnode", "pipe", "socket", "proc", "system", "language", "mac")


class Decision(enum.Enum):
    """An engine's answer for one :class:`PolicyRequest`."""

    ALLOW = "allow"
    DENY = "deny"
    DEFER = "defer"


@dataclass(frozen=True)
class PolicyRequest:
    """One access-control question, as the engine sees it.

    ``target`` is the stable audit description of the object (a path for
    vnodes — the same string audit lines use).  ``held`` is the set of
    privilege names the subject's session currently holds on the target
    (empty outside the SHILL privilege domains).  ``sid`` is 0 for
    requests with no sandbox session (framework-level ``mac`` requests).
    """

    domain: str
    operation: str
    target: str
    priv: str = ""
    sid: int = 0
    user: str = ""
    held: frozenset = frozenset()

    def describe(self) -> str:
        who = f"session {self.sid}" if self.sid else (self.user or "?")
        return f"[{self.domain}] {who}: {self.operation} {self.priv} on {self.target}"


@dataclass(frozen=True)
class DecisionRecord:
    """One non-DEFER engine decision, retained for inspection."""

    request: PolicyRequest
    decision: Decision
    engine: str
    rule: str = ""

    def format(self) -> str:
        via = f" via {self.rule}" if self.rule else ""
        return f"{self.decision.value:5s} {self.request.describe()} ({self.engine}{via})"


class PolicyEngine:
    """Base engine: defers everything (pure SHILL capability semantics).

    Subclasses override :meth:`pre_check` (and optionally
    :meth:`post_check`).  The class is deliberately *not* abstract — the
    base is the identity engine, exactly like
    :class:`repro.kernel.mac.MacPolicy`'s every-hook-allows base.

    Two attributes shape how check sites treat an engine:

    * ``passive`` — ``True`` promises :meth:`pre_check` always defers
      and :meth:`post_check` is a no-op, letting the hot path skip
      request construction entirely (target descriptions cost a VFS
      name-cache walk).  Any engine that decides or observes must set
      it ``False``.
    * ``mutations`` — bump whenever the engine's *future decisions*
      may differ (rule edits, default flips).  The syscall layer folds
      it into the resolved-path dcache stamp so cached walks are
      re-judged after an engine change.
    """

    name = "policy-engine"
    passive = True

    def __init__(self) -> None:
        self.records: list[DecisionRecord] = []
        self.mutations = 0

    # -- the decision hooks ------------------------------------------------

    def pre_check(self, request: PolicyRequest) -> Decision:
        """Decide ``request``; DEFER falls through to capability
        semantics.  Called only on non-passive engines."""
        return Decision.DEFER

    def post_check(self, request: PolicyRequest, allowed: bool) -> None:
        """Observe the final outcome (after capability semantics ran,
        when the engine deferred).  Called only on non-passive engines."""

    # -- plumbing ----------------------------------------------------------

    def record(self, request: PolicyRequest, decision: Decision,
               rule: str = "") -> None:
        """Retain a non-DEFER decision on the engine's approval trail."""
        self.records.append(DecisionRecord(request, decision, self.name, rule))

    def fork_for(self, kernel: Any) -> "PolicyEngine":
        """The engine instance for a forked kernel.  Sharing ``self`` is
        right for engines whose decisions are pure functions of the
        request (rules); stateful engines override."""
        return self

    def digest(self) -> Optional[str]:
        """A stable content hash, or None when the engine's decisions
        cannot be named by data (arbitrary code).  Digestible engines
        keep the worlds that install them boot-cacheable."""
        return None

    def describe(self) -> dict:
        """A JSON-serializable snapshot, for logs and wire frames."""
        return {"engine": self.name, "passive": self.passive}

    def __getstate__(self) -> dict:
        # The decision trail is runtime observability, like the dcache:
        # it never crosses a snapshot (equal machines must produce equal
        # snapshot bytes regardless of what either one was asked).
        state = dict(self.__dict__)
        state["records"] = []
        return state

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class CapabilityEngine(PolicyEngine):
    """The explicit spelling of the default: defer every request to the
    SHILL capability semantics.  Installing it changes nothing — it
    exists so "no engine" has a value and a name.

    Example::

        from repro.policy import CapabilityEngine, Decision, PolicyRequest

        engine = CapabilityEngine()
        req = PolicyRequest(domain="vnode", operation="read", target="/etc/passwd")
        assert engine.pre_check(req) is Decision.DEFER
    """

    name = "capability"
    passive = True

    def digest(self) -> str:
        return "capability"


def engine_for(session: Any, kernel: Any) -> Optional[PolicyEngine]:
    """The engine governing ``session``'s checks: the session's own, or
    the kernel-wide one.  Returns None when neither is set (the common
    fast path — byte-identical legacy behavior)."""
    engine = getattr(session, "engine", None)
    if engine is not None:
        return engine
    return kernel.policy_engine
