"""Sandboxes: run one command under a policy file (section 3.2.2).

A :class:`Sandbox` is the API form of the ``shill-run`` debugging tool:
it parses a policy file, builds a capability-based sandbox from it, and
runs commands inside — returning :class:`repro.api.RunResult` records
with captured stdio, the audit log's denials, and (in debug mode) the
privileges that had to be auto-granted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.api.results import RunResult, freeze_ops, freeze_profile

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel


class Sandbox:
    """A reusable policy for sandboxed command runs.

    Each :meth:`exec` boots a fresh sandbox session from the policy, so
    one :class:`Sandbox` can run many commands under identical rules.

    Example (the §3.2.2 ``shill-run`` debugging flow)::

        from repro.api import World

        world = World().boot()
        sandbox = world.sandbox("")           # an empty policy grants nothing
        result = sandbox.exec(["/bin/cat", "/etc/passwd"])
        assert result.status != 0 and result.denied
        debug = world.sandbox("", debug=True)  # auto-grant and report
        granted = debug.exec(["/bin/cat", "/etc/passwd"])
        assert granted.ok and granted.auto_granted
    """

    def __init__(
        self,
        kernel: "Kernel",
        policy: str,
        *,
        user: str = "root",
        debug: bool = False,
        cwd: str = "/",
        engine=None,
    ) -> None:
        self.kernel = kernel
        self.policy = policy
        self.user = user
        self.debug = debug
        self.cwd = cwd
        # Per-sandbox repro.policy.PolicyEngine bound to every session
        # this Sandbox's exec() creates.
        self.engine = engine

    def exec(self, argv: list[str], *, stdin: bytes = b"") -> RunResult:
        """Run ``argv`` in a sandbox configured from the policy file."""
        from repro.kernel.pipes import make_pipe
        from repro.sandbox.shilld import run_with_policy

        from repro.kernel.kernel import KernelStats

        in_r = in_w = None
        if stdin:
            in_r, in_w = make_pipe()
            in_w.pipe.write(stdin)
        out_r, out_w = make_pipe()
        err_r, err_w = make_pipe()
        stats0 = self.kernel.stats.snapshot()
        raw = run_with_policy(
            self.kernel, self.user, self.policy, list(argv),
            debug=self.debug, stdin=in_r, stdout=out_w, stderr=err_w,
            cwd=self.cwd, engine=self.engine,
        )
        return RunResult(
            stdout=bytes(out_r.pipe.buffer).decode(errors="replace"),
            stderr=bytes(err_r.pipe.buffer).decode(errors="replace"),
            status=raw.status,
            profile=freeze_profile({}),
            ops=freeze_ops(KernelStats.delta(stats0, self.kernel.stats.snapshot())),
            sandbox_count=1,
            denials=tuple(raw.log.denials()),
            auto_granted=tuple(raw.auto_granted),
        )

    def __repr__(self) -> str:
        mode = " debug" if self.debug else ""
        return f"<Sandbox user={self.user!r}{mode}>"
