"""Sessions: one SHILL invocation against a booted world.

A :class:`Session` wraps the internal engine
(:class:`repro.lang.runner.ShillRuntime`) behind the public surface:
``run_ambient`` and friends return frozen :class:`repro.api.RunResult`
records instead of requiring callers to read ``runtime.tty.text`` or
``runtime.profile`` themselves.
"""

from __future__ import annotations

import contextlib
import pathlib
import time
import warnings
from typing import TYPE_CHECKING, Any, Mapping

from repro.api.registry import ScriptRegistry
from repro.api.results import RunResult, freeze_ops, freeze_profile
from repro.lang.runner import ShillRuntime
from repro.sandbox.audit import AuditEntry

if TYPE_CHECKING:
    from repro.api.sandboxes import Sandbox
    from repro.api.worlds import World
    from repro.kernel.kernel import Kernel


def deprecated_runtime_property(hint: str = "``.run`` / ``.session``") -> property:
    """Shared shim for classes holding a ``session``: expose the engine
    as ``.runtime`` for pre-façade callers, with a DeprecationWarning."""

    def _get(self) -> ShillRuntime:
        warnings.warn(
            "the .runtime property is a deprecated alias for the internal "
            f"engine; use {hint} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.session.runtime

    _get.__doc__ = f"Deprecated: the internal engine (use {hint})."
    return property(_get)


class Session:
    """An interpreter process for one user, plus its script registry.

    ``world`` may be a :class:`repro.api.World` (booted on demand) or a
    raw :class:`~repro.kernel.kernel.Kernel`.  ``user`` defaults to the
    world's default user (``for_user``), or root for a bare kernel.

    Example::

        from repro.api import World

        world = World().for_user("alice").with_jpeg_samples()
        session = world.session()
        result = session.run_ambient(
            '#lang shill/ambient\\n'
            'docs = open_dir("~/Documents");\\n'
            'append(stdout, path(docs) + "\\\\n");\\n')
        assert result.ok and result.stdout.endswith("Documents\\n")
    """

    def __init__(
        self,
        world: "World | Kernel",
        user: str | None = None,
        cwd: str | None = None,
        scripts: "Mapping[str, str] | ScriptRegistry | None" = None,
        engine: Any = None,
    ) -> None:
        from repro.api.worlds import World

        if isinstance(world, World):
            kernel = world.boot().kernel
            user = user or world.default_user
        else:
            kernel = world
            user = user or "root"
        if isinstance(scripts, ScriptRegistry):
            scripts = scripts.as_dict()
        self.user = user
        self.cwd = cwd or kernel.users.lookup(user).home
        # engine binds a per-session repro.policy.PolicyEngine to every
        # sandbox this session's scripts create (overriding any
        # kernel-wide Kernel.policy_engine for those checks).
        self._runtime = ShillRuntime(kernel, user=user, cwd=self.cwd,
                                     scripts=dict(scripts or {}),
                                     engine=engine)
        # Ops driven through *this* session.  Several Sessions may share
        # one kernel, whose counters are global — so, like the audit
        # trail (_owned_sids), op counts are accumulated per entry point
        # rather than read as a kernel-lifetime delta.
        self._ops_acc: dict[str, int] = {}
        # Sandbox sessions created *by this Session* — several Sessions may
        # share one kernel, and each must only report its own audit trail.
        self._owned_sids: set[int] = set()

    # -- internals exposed deliberately ------------------------------------

    @property
    def kernel(self) -> "Kernel":
        return self._runtime.kernel

    @property
    def runtime(self) -> ShillRuntime:
        """The internal engine.  Tests of the language ↔ sandbox seam may
        reach through; application code should not need to."""
        return self._runtime

    # -- scripts -----------------------------------------------------------

    def register_script(self, name: str, source: str) -> "Session":
        self._runtime.register_script(name, source)
        return self

    def register_scripts(self, scripts: "Mapping[str, str] | ScriptRegistry") -> "Session":
        if isinstance(scripts, ScriptRegistry):
            scripts = scripts.as_dict()
        for name, source in scripts.items():
            self._runtime.register_script(name, source)
        return self

    # -- running -----------------------------------------------------------

    def run_ambient(self, source: str, name: str = "<ambient>") -> RunResult:
        """Run an ambient script; returns a frozen :class:`RunResult`."""
        marks = self._marks()
        with self._owning(), self._counting():
            self._runtime.run_ambient(source, name)
        # The interpreter Env is deliberately NOT surfaced as `value`:
        # it holds live engine internals, which a frozen result must not
        # leak.  Use load_cap()/call() for language-level values.
        return self._result_since(marks, value=None)

    def run_ambient_file(self, path: str | pathlib.Path) -> RunResult:
        """Run an ambient script from a host file."""
        path = pathlib.Path(path)
        return self.run_ambient(path.read_text(), path.name)

    def run_script(self, name: str) -> RunResult:
        """Run a registered ambient script by its registry name."""
        return self.run_ambient(self._runtime.scripts[name], name)

    def load_cap(self, name: str, importer: str = "host") -> dict[str, Any]:
        """Load a capability-safe script; returns its contract-wrapped
        exports, callable through :meth:`call`."""
        with self._owning(), self._timing(), self._counting():
            return self._runtime.load_cap_exports(name, importer=importer)

    def call(self, fn: Any, *args: Any, **kwargs: Any) -> Any:
        with self._owning(), self._timing(), self._counting():
            return self._runtime.call(fn, *args, **kwargs)

    def open_file(self, path: str):
        """Mint an ambient file capability (the paper's ``open-file``) —
        for handing arguments to :meth:`call`-driven exports."""
        return self._runtime.open_file(path)

    def open_dir(self, path: str):
        return self._runtime.open_dir(path)

    def shell(self, policy: str, *, debug: bool = False, cwd: str | None = None) -> "Sandbox":
        """A policy-file-configured sandbox (the ``shill-run`` tool) for
        this session's user."""
        from repro.api.sandboxes import Sandbox

        return Sandbox(self.kernel, policy, user=self.user, debug=debug,
                       cwd=cwd or self.cwd, engine=self._runtime.engine)

    # -- observation -------------------------------------------------------

    @property
    def stdout(self) -> str:
        """Everything written to the ambient stdout device so far."""
        return self._runtime.tty.text

    @property
    def stderr(self) -> str:
        return self._runtime.tty_err.text

    @property
    def sandbox_count(self) -> int:
        return int(self._runtime.profile["sandbox_count"])

    @property
    def profile(self) -> Mapping[str, float]:
        return freeze_profile(self._runtime.profile)

    @property
    def denials(self) -> tuple[AuditEntry, ...]:
        return self._denials_for(self._owned_sessions())

    @property
    def ops(self) -> Mapping[str, int]:
        """Deterministic kernel op counts of the work driven through
        this session (runs, cap loads, calls) — sibling sessions on the
        same kernel are not included."""
        return freeze_ops(self._ops_acc)

    def result(self, value: Any = None) -> RunResult:
        """A frozen snapshot of everything this session has done so far."""
        sessions = self._owned_sessions()
        return RunResult(
            stdout=self.stdout,
            stderr=self.stderr,
            status=0,
            profile=self.profile,
            ops=self.ops,
            sandbox_count=self.sandbox_count,
            denials=self._denials_for(sessions),
            auto_granted=self._auto_grants_for(sessions),
            value=value,
        )

    # -- snapshot plumbing -------------------------------------------------

    @contextlib.contextmanager
    def _owning(self):
        """Attribute sandbox sessions created inside the block to this
        Session (runs are synchronous, so the sid delta is exactly ours)."""
        before = self._watermark()
        try:
            yield
        finally:
            self._owned_sids.update(range(before + 1, self._watermark() + 1))

    @contextlib.contextmanager
    def _counting(self):
        """Accumulate the kernel-op delta of the block into this
        session's own tally (runs are synchronous, so the delta is
        exactly the block's work)."""
        from repro.kernel.kernel import KernelStats

        before = self._runtime.kernel.stats.snapshot()
        try:
            yield
        finally:
            after = self._runtime.kernel.stats.snapshot()
            for key, value in KernelStats.delta(before, after).items():
                self._ops_acc[key] = self._ops_acc.get(key, 0) + value

    @contextlib.contextmanager
    def _timing(self):
        """Count host-driven work (load_cap / call) toward the engine's
        ``total`` accumulator, as run_ambient does itself, so profile
        decompositions stay consistent for call-driven sessions."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self._runtime.profile["total"] += time.perf_counter() - t0

    def _marks(self) -> tuple[int, int, dict[str, float], int, dict[str, int], int]:
        rt = self._runtime
        return (
            len(rt.tty.output),
            len(rt.tty_err.output),
            dict(rt.profile),
            self._watermark(),
            dict(self._ops_acc),
            len(rt.kernel._touched),
        )

    def _result_since(self, marks: tuple[int, int, dict[str, float], int, dict[str, int], int],
                      value: Any) -> RunResult:
        rt = self._runtime
        out0, err0, profile0, mark0, ops0, touched0 = marks
        sessions = self._sandbox_sessions_since(mark0)
        # Per-run breakdown: sandbox setup/exec and total are deltas over
        # this run; startup is the session's construction cost (a per-
        # session constant, reported as-is so single-run flows — the
        # Figure 10 benchmarks — see the full decomposition).
        profile = {
            "startup": rt.profile["startup"],
            "sandbox_setup": rt.profile["sandbox_setup"] - profile0["sandbox_setup"],
            "sandbox_exec": rt.profile["sandbox_exec"] - profile0["sandbox_exec"],
            "total": rt.profile["total"] - profile0["total"],
        }
        return RunResult(
            stdout=bytes(rt.tty.output[out0:]).decode(errors="replace"),
            stderr=bytes(rt.tty_err.output[err0:]).decode(errors="replace"),
            status=0,
            profile=freeze_profile(profile),
            # The run's delta of the per-session tally (_counting has
            # already folded the run in by the time results are built).
            ops=freeze_ops({key: self._ops_acc.get(key, 0) - ops0.get(key, 0)
                            for key in self._ops_acc}),
            sandbox_count=int(rt.profile["sandbox_count"] - profile0["sandbox_count"]),
            denials=self._denials_for(sessions),
            auto_granted=self._auto_grants_for(sessions),
            value=value,
            touched=tuple(sorted(set(rt.kernel._touched[touched0:]))),
        )

    def _watermark(self) -> int:
        kernel = self._runtime.kernel
        if not kernel.shill_installed:
            return 0
        return kernel.shill_policy().sessions.last_sid

    def _sandbox_sessions_since(self, mark: int) -> list:
        kernel = self._runtime.kernel
        if not kernel.shill_installed:
            return []
        return kernel.shill_policy().sessions.audit_records_since(mark)

    def _owned_sessions(self) -> list:
        kernel = self._runtime.kernel
        if not kernel.shill_installed:
            return []
        return [r for r in kernel.shill_policy().sessions.audit_records()
                if r.sid in self._owned_sids]

    @staticmethod
    def _denials_for(sessions: list) -> tuple[AuditEntry, ...]:
        return tuple(e for s in sessions for e in s.log.denials())

    @staticmethod
    def _auto_grants_for(sessions: list) -> tuple[str, ...]:
        return tuple(e.format() for s in sessions for e in s.log.auto_grants())

    def __repr__(self) -> str:
        return f"<Session user={self.user!r} cwd={self.cwd!r} sandboxes={self.sandbox_count}>"
