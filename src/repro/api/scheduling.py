"""Scheduling policies as data: score hosts, send the job to the max.

A :class:`SchedulingPolicy` is one pure function — ``score(host, job,
telemetry) → float`` — evaluated per candidate host at dispatch time;
the pool picks the highest score (registration order breaks ties).
Policies never mutate anything: all the state they may consult arrives
in the ``telemetry`` mapping, so a policy is trivially unit-testable
with plain dicts and no live hosts (the weighers-as-data style the
datacenter schedulers in PAPERS.md argue for).

Telemetry keys every pool guarantees:

===============  ======================================================
``ring_position``  the host's index in registration order
``ring_size``      how many hosts are registered (dead ones included)
``rotation``       ring position just after the previously picked host
``inflight``       jobs currently leased to this host
``jobs_done``      jobs this host completed
``warm``           whether the host already restored this job's template
``strikes``        times this host has been marked dead (crashes only)
``retired``        whether the host said a clean GOODBYE (not a crash)
===============  ======================================================

The built-ins cover the common shapes — :class:`RoundRobin` (fairness),
:class:`LeastLoaded` (variable job cost), :class:`StoreWarmth` (boot
cost dominates) — and a custom policy is just an object with ``score``;
see ``docs/serving.md`` for a worked example.

The legacy ``sharding="round-robin"`` strings still resolve, through
:func:`resolve_policy`, at the price of one :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from typing import Any, Mapping, Protocol, runtime_checkable


@runtime_checkable
class SchedulingPolicy(Protocol):
    """What a pool needs from a scheduling policy: one ``score`` method.

    Any object with a compatible ``score`` qualifies (the class is a
    :class:`typing.Protocol`; inheriting from it is optional).

    Example::

        from repro.api import SchedulingPolicy

        class FewestStrikes:
            "Prefer hosts that have crashed the least."
            def score(self, host, job, telemetry):
                return -telemetry["strikes"]

        assert isinstance(FewestStrikes(), SchedulingPolicy)
    """

    def score(self, host: Any, job: Any,
              telemetry: "Mapping[str, Any]") -> float:
        """Weigh ``host`` for ``job``; the highest score wins.

        ``host`` is the pool's per-host state object, ``job`` the job
        being placed (``None`` when the caller has no job context), and
        ``telemetry`` the live counters table in the module docstring.
        """
        ...  # pragma: no cover - protocol signature


class RoundRobin:
    """Rotate through live hosts in registration order.

    Fair and predictable when jobs are uniform: the host just after the
    previously picked one scores highest, so the pick walks the ring.

    Example::

        from repro.api import RoundRobin

        policy = RoundRobin()
        telem = {"ring_position": 1, "ring_size": 4, "rotation": 1}
        assert policy.score(None, None, telem) == 0.0   # next in the ring
    """

    def score(self, host: Any, job: Any,
              telemetry: "Mapping[str, Any]") -> float:
        ahead = (telemetry["ring_position"] - telemetry["rotation"]
                 ) % telemetry["ring_size"]
        return -float(ahead)

    def __repr__(self) -> str:
        return "RoundRobin()"


class LeastLoaded:
    """Prefer the host with the fewest in-flight jobs.

    Better than :class:`RoundRobin` when job costs vary: a host stuck
    on a heavy job stops receiving new ones until it drains.

    Example::

        from repro.api import LeastLoaded

        policy = LeastLoaded()
        assert policy.score(None, None, {"inflight": 0}) > \\
               policy.score(None, None, {"inflight": 3})
    """

    def score(self, host: Any, job: Any,
              telemetry: "Mapping[str, Any]") -> float:
        return -float(telemetry["inflight"])

    def __repr__(self) -> str:
        return "LeastLoaded()"


class StoreWarmth:
    """Prefer hosts that already hold this job's template, then load.

    A warm host boots the template with zero build work (the op-gated
    store-hit path), so when boot cost dominates, steering a job to a
    warm host beats spreading the load evenly.  Among equally-warm
    hosts, the least loaded wins.

    Example::

        from repro.api import StoreWarmth

        policy = StoreWarmth()
        warm = {"warm": True, "inflight": 2}
        cold = {"warm": False, "inflight": 0}
        assert policy.score(None, None, warm) > policy.score(None, None, cold)
    """

    #: Score bonus for a warm host — larger than any realistic in-flight
    #: gap, so warmth dominates and load only breaks warmth ties.
    warm_bonus = 1000.0

    def score(self, host: Any, job: Any,
              telemetry: "Mapping[str, Any]") -> float:
        bonus = self.warm_bonus if telemetry.get("warm") else 0.0
        return bonus - float(telemetry["inflight"])

    def __repr__(self) -> str:
        return "StoreWarmth()"


#: Legacy policy-string spellings (the pre-policy-object API), kept
#: resolvable through :func:`resolve_policy` — at a deprecation cost.
LEGACY_POLICY_STRINGS: "dict[str, type]" = {
    "round-robin": RoundRobin,
    "least-loaded": LeastLoaded,
    "store-warmth": StoreWarmth,
}


def resolve_policy(policy: "SchedulingPolicy | str | None",
                   ) -> SchedulingPolicy:
    """Normalise a policy argument to a policy *object*.

    ``None`` means the default (:class:`RoundRobin`).  Policy objects
    pass through.  Legacy strings (``"round-robin"``,
    ``"least-loaded"``, ``"store-warmth"``) resolve to their object
    equivalents and emit exactly one :class:`DeprecationWarning`.
    """
    if policy is None:
        return RoundRobin()
    if isinstance(policy, str):
        try:
            cls = LEGACY_POLICY_STRINGS[policy]
        except KeyError:
            raise ValueError(
                f"unknown sharding policy {policy!r}; "
                f"choices: {', '.join(LEGACY_POLICY_STRINGS)}") from None
        warnings.warn(
            f"sharding policy strings are deprecated; pass a policy object "
            f"(repro.api.{cls.__name__}()) instead of {policy!r}",
            DeprecationWarning, stacklevel=2)
        return cls()
    if not callable(getattr(policy, "score", None)):
        raise TypeError(f"{policy!r} is not a SchedulingPolicy "
                        f"(needs a callable .score(host, job, telemetry))")
    return policy
