"""Batch: many (script, user) jobs over forked worlds.

The scaling counterpart of :class:`repro.api.Session`: instead of one
SHILL invocation against one booted world, a :class:`Batch` takes a base
:class:`repro.api.World` and a list of jobs, gives **every job its own
copy-on-write fork** of the base image, and returns one frozen
:class:`repro.api.RunResult` per job in submission order.

Per-job forks buy two properties at once:

* **amortised boot** — the base world is built (or fetched from the
  boot-image cache) once; each job pays only a fork, which is
  O(changed-state) rather than O(world);
* **order independence** — no job can observe another job's writes, so
  running the jobs in parallel (per-worker kernels) produces
  byte-identical results to the sequential run:
  ``[r.fingerprint() for r in ...]`` is invariant under scheduling.

Three execution **backends** share that contract (see README "Choosing a
batch backend"):

* ``"sequential"`` — jobs run in submission order on the caller's
  thread; the reference behaviour;
* ``"thread"`` — jobs run on a thread pool.  Concurrency without the
  process-spawn cost, but the GIL serialises the interpreter work;
* ``"process"`` — the booted template kernel is serialized **once**
  (:mod:`repro.kernel.serialize`), shipped to a
  :class:`~concurrent.futures.ProcessPoolExecutor`, and each worker
  restores its own machine and forks it per job.  This is the only
  backend that uses more than one core.

Job failures are part of the contract: a script error (any
:class:`~repro.errors.ReproError`) becomes a failed :class:`RunResult`
carrying the error text *and* the full host traceback
(``result.traceback``); an unexpected error — an engine bug, a crashed
worker — raises :class:`BatchExecutionError` naming the (script, user)
job that failed, with the original traceback text preserved.

Results are additionally served from a module-level cache keyed on
(world digest, script source, user, registered scripts) — the world is
deterministic, so an identical job against an identical image must
produce an identical result.  The cache only engages while the base
world is :attr:`~repro.api.World.pristine` (booted from a digestible
configuration and not mutated since).  It lives in the coordinating
process for every backend: cached jobs are never dispatched to workers,
and worker results are merged back into it.
"""

from __future__ import annotations

import dataclasses
import threading
import traceback as _traceback
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.api.caching import BoundedCache
from repro.api.registry import ScriptRegistry
from repro.api.results import RunResult
from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.api.worlds import World
    from repro.kernel.kernel import Kernel

#: The execution backends ``Batch.run`` / ``World.pool`` accept.
BATCH_BACKENDS = ("sequential", "thread", "process")

#: Bounded FIFO of frozen results; old entries are evicted so a
#: long-lived process sweeping many distinct jobs cannot grow without
#: limit (a re-run after eviction just recomputes deterministically).
_RESULT_CACHE: BoundedCache = BoundedCache(4096)


def clear_result_cache() -> None:
    """Drop all cached run results."""
    _RESULT_CACHE.clear()


def result_cache_size() -> int:
    return len(_RESULT_CACHE)


class BatchExecutionError(ReproError):
    """A batch job died of something that is *not* a script failure.

    Script-level failures (denials, contract violations, syntax errors —
    every :class:`ReproError`) are deterministic results and come back as
    failed :class:`RunResult`\\ s.  This error is for the rest: engine
    bugs and crashed workers.  It names the failing job and preserves the
    original traceback text, which would otherwise be lost at a process
    boundary.
    """

    def __init__(self, job_name: str, user: str | None, traceback_text: str,
                 message: str | None = None) -> None:
        self.job_name = job_name
        self.user = user
        self.traceback_text = traceback_text
        self._message = message
        if message is None:
            lines = traceback_text.strip().splitlines()
            message = lines[-1] if lines else "unknown error"
        super().__init__(
            f"batch job {job_name!r} (user={user!r}) failed: {message}"
        )

    def __reduce__(self):
        """BaseException's default reduce replays only the formatted
        message, which does not match this constructor — spell out the
        real arguments so the error survives pickling (users wrap
        Batch.run in their own multiprocessing layers)."""
        return (BatchExecutionError,
                (self.job_name, self.user, self.traceback_text, self._message))


@dataclass(frozen=True)
class BatchJob:
    """One queued (script, user) pair."""

    source: str
    user: str | None
    name: str


def execute_job(kernel: "Kernel", source: str, user: str | None,
                name: str, scripts: Mapping[str, str],
                default_user: str) -> RunResult:
    """Run one batch job against its own fork of ``kernel``.

    This is the single execution path every backend funnels through —
    the worker processes import and call exactly this function — so the
    "parallel equals sequential" fingerprint guarantee reduces to kernel
    forks (and snapshots) being faithful.
    """
    from repro.api.sessions import Session

    fork = kernel.fork()
    effective_user = user or default_user
    try:
        session = Session(fork, user=effective_user, scripts=dict(scripts))
    except KeyError as err:
        # Unknown job user: the job fails alone, and with no session
        # there is nothing to snapshot beyond the error itself.  The
        # catch is deliberately this narrow — a KeyError out of the
        # interpreter would be an engine bug and must propagate (as a
        # BatchExecutionError, via the caller).
        return RunResult(status=1, stderr=f"KeyError: {err}\n",
                         traceback=_traceback.format_exc())
    try:
        # Jobs execute under a canonical script name: diagnostics
        # (e.g. syntax errors) embed the script name, and cached
        # results are shared across identically-keyed jobs whatever
        # they were called — callers attribute output via .jobs.
        result = session.run_ambient(source, "<batch>")
    except ReproError as err:
        # Jobs are isolated forks, so one failing script must not
        # abort its siblings: it becomes a failed RunResult carrying
        # everything the session observed up to the error — denials,
        # sandbox count, profile, op counts — since the audit trail
        # matters most exactly when a run fails.  The error text is
        # deterministic, so cache/fingerprint semantics hold for
        # failures too (the traceback is diagnostic-only and excluded
        # from fingerprints, like wall-clock timings).
        snapshot = session.result()
        result = dataclasses.replace(
            snapshot,
            status=1,
            stderr=snapshot.stderr + f"{type(err).__name__}: {err}\n",
            traceback=_traceback.format_exc(),
        )
    except Exception as err:
        raise BatchExecutionError(name, effective_user,
                                  _traceback.format_exc()) from err
    return result


# ---------------------------------------------------------------------------
# process-backend worker plumbing (module-level: workers must import it)
# ---------------------------------------------------------------------------

#: Per-worker-process state: the restored template kernel plus the job
#: context, installed once by the pool initializer.
_WORKER_STATE: dict = {}


def _process_worker_init(payload: bytes, scripts_items: tuple,
                         default_user: str) -> None:
    """Pool initializer: unpickle the template once per worker process."""
    from repro.kernel.serialize import restore_kernel

    _WORKER_STATE["kernel"] = restore_kernel(payload)
    _WORKER_STATE["scripts"] = dict(scripts_items)
    _WORKER_STATE["default_user"] = default_user


def _process_worker_run(packed: tuple) -> tuple:
    """Run one job in a worker; never raises (exceptions do not carry
    tracebacks across process boundaries faithfully, so failures travel
    home as data and the coordinator re-raises the typed error)."""
    import pickle

    index, source, user, name = packed
    try:
        result = execute_job(
            _WORKER_STATE["kernel"], source, user, name,
            _WORKER_STATE["scripts"], _WORKER_STATE["default_user"],
        )
        if result.value is not None:
            # The executor pickles our return value *after* this frame
            # exits, where a failure surfaces as an opaque pool error —
            # probe the only field that can carry arbitrary objects now,
            # so an unpicklable language-level value fails with the job
            # named.  Batch jobs produce value=None, so the common path
            # pays nothing.
            try:
                pickle.dumps(result.value)
            except Exception:
                return ("error", index, name, user, _traceback.format_exc())
        return ("ok", index, result)
    except BatchExecutionError as err:
        return ("error", index, err.job_name, err.user, err.traceback_text)
    except Exception:
        return ("error", index, name, user, _traceback.format_exc())


class Batch:
    """A queue of ambient-script jobs over one base world.

    ``scripts`` (a mapping or :class:`ScriptRegistry`) is the shared
    capability-script registry every job's session starts with.  Typical
    flow::

        batch = Batch(World().with_usr_src(), scripts=registry)
        for user in users:
            batch.add(AMBIENT_SRC, user=user)
        results = batch.run(backend="process", workers=8)
    """

    def __init__(
        self,
        world: "World",
        scripts: "Mapping[str, str] | ScriptRegistry | None" = None,
        cache: bool = True,
    ) -> None:
        from repro.api.worlds import World

        if not isinstance(world, World):
            raise TypeError("Batch needs a repro.api.World (its fork/digest "
                            "machinery is what batching is built on)")
        if isinstance(scripts, ScriptRegistry):
            scripts = scripts.as_dict()
        self.world = world
        self._scripts = dict(scripts or {})
        self._scripts_sig = tuple(sorted(self._scripts.items()))
        self._cache_enabled = cache
        self._jobs: list[BatchJob] = []
        self._stats = {"jobs": 0, "cache_hits": 0, "forks": 0}
        self._stats_lock = threading.Lock()

    # -- queueing ----------------------------------------------------------

    def add(self, source: str, *, user: str | None = None,
            name: str | None = None) -> "Batch":
        """Queue one ambient script, optionally for a specific user."""
        self._jobs.append(BatchJob(source, user, name or f"job{len(self._jobs)}"))
        return self

    def __len__(self) -> int:
        return len(self._jobs)

    @property
    def jobs(self) -> tuple[BatchJob, ...]:
        return tuple(self._jobs)

    @property
    def stats(self) -> dict[str, int]:
        """Totals across every :meth:`run` so far: jobs executed, result
        cache hits, and world forks taken."""
        with self._stats_lock:
            return dict(self._stats)

    # -- running -----------------------------------------------------------

    def run(self, *, parallel: bool = False, workers: int | None = None,
            backend: str | None = None) -> list[RunResult]:
        """Execute every queued job; results in submission order.

        ``backend`` selects the execution engine (:data:`BATCH_BACKENDS`):
        ``"sequential"`` (the default), ``"thread"``, or ``"process"``.
        ``parallel=True`` is the pre-backend spelling of
        ``backend="thread"`` and is kept for compatibility.  Whatever the
        backend, results are byte-identical (compare
        :meth:`RunResult.fingerprint`).
        """
        if workers is not None and workers < 1:
            raise ValueError("workers must be positive")
        if backend is None:
            backend = "thread" if parallel else "sequential"
        if backend not in BATCH_BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choices: {', '.join(BATCH_BACKENDS)}")
        self.world.boot()
        if backend == "sequential":
            return [self._run_one(job) for job in self._jobs]
        if backend == "thread":
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=workers or 4) as pool:
                return list(pool.map(self._run_one, self._jobs))
        return self._run_process(workers or 4)

    # -- in-process execution (sequential / thread) ------------------------

    def _run_one(self, job: BatchJob) -> RunResult:
        key = self._cache_key(job)
        if key is not None:
            cached = _RESULT_CACHE.get(key)
            if cached is not None:
                self._bump("jobs", "cache_hits")
                return cached
        assert self.world.kernel is not None
        self._bump("jobs", "forks")
        result = execute_job(self.world.kernel, job.source, job.user,
                             job.name, self._scripts, self.world.default_user)
        return self._finish(key, result)

    # -- process execution -------------------------------------------------

    def _run_process(self, workers: int) -> list[RunResult]:
        """Fan pending jobs out to worker processes.

        The coordinator serves cache hits locally, snapshots the booted
        template exactly once, and merges worker results back into the
        shared cache — so op counters and caching behave identically to
        the in-process backends, just off the GIL.
        """
        from concurrent.futures import ProcessPoolExecutor

        from repro.kernel.serialize import snapshot_kernel

        results: list[RunResult | None] = [None] * len(self._jobs)
        pending: list[tuple[int, BatchJob, tuple | None]] = []
        # Identically-keyed queued jobs dispatch once: the sequential
        # backend serves later duplicates from the result cache mid-run,
        # and the process backend must match those cache-hit semantics
        # even though it fans everything out up front.
        representative: dict[tuple, int] = {}
        duplicates: dict[int, list[int]] = {}
        for index, job in enumerate(self._jobs):
            key = self._cache_key(job)
            cached = _RESULT_CACHE.get(key) if key is not None else None
            if cached is not None:
                self._bump("jobs", "cache_hits")
                results[index] = cached
            elif key is not None and key in representative:
                self._bump("jobs", "cache_hits")
                duplicates.setdefault(representative[key], []).append(index)
            else:
                if key is not None:
                    representative[key] = index
                pending.append((index, job, key))
        if pending:
            assert self.world.kernel is not None
            payload = snapshot_kernel(self.world.kernel)
            packed = [(index, job.source, job.user, job.name)
                      for index, job, _key in pending]
            keys = {index: key for index, _job, key in pending}
            failure: tuple | None = None
            try:
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(pending)),
                    initializer=_process_worker_init,
                    initargs=(payload, tuple(self._scripts.items()),
                              self.world.default_user),
                ) as pool:
                    for outcome in pool.map(_process_worker_run, packed):
                        if outcome[0] == "error":
                            # Keep draining so sibling jobs finish
                            # cleanly; the first failure (submission
                            # order) wins.
                            if failure is None:
                                failure = outcome
                            continue
                        _tag, index, result = outcome
                        self._bump("jobs", "forks")
                        results[index] = self._finish(keys[index], result)
                        for dup_index in duplicates.get(index, ()):
                            results[dup_index] = results[index]
            except BatchExecutionError:
                raise
            except Exception as err:
                # A worker killed hard (OOM, signal) surfaces here as
                # BrokenProcessPool with no job attribution; the typed
                # error still names the batch and keeps the pool's
                # traceback, upholding the documented contract.
                raise BatchExecutionError(
                    "<worker pool>", None, _traceback.format_exc(),
                    message=f"worker pool failed: {type(err).__name__}: {err}",
                ) from err
            if failure is not None:
                _tag, _index, name, user, tb_text = failure
                raise BatchExecutionError(name, user, tb_text)
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    # -- shared plumbing ---------------------------------------------------

    def _finish(self, key: tuple | None, result: RunResult) -> RunResult:
        if key is not None:
            # put has setdefault semantics: under parallel duplicate
            # jobs, the first result wins everywhere (they are
            # fingerprint-identical anyway).
            result = _RESULT_CACHE.put(key, result)
        return result

    def _cache_key(self, job: BatchJob) -> tuple | None:
        """(world digest, scripts, source, user) — only while the base
        world is pristine, i.e. the digest still describes its state."""
        if not self._cache_enabled or not self.world.pristine:
            return None
        return (
            self.world.digest,
            self._scripts_sig,
            job.source,
            job.user or self.world.default_user,
        )

    def _bump(self, *keys: str) -> None:
        with self._stats_lock:
            for key in keys:
                self._stats[key] += 1

    def __repr__(self) -> str:
        return f"<Batch jobs={len(self._jobs)} world={self.world!r}>"
