"""Batch: many (script, user) jobs over forked worlds.

The scaling counterpart of :class:`repro.api.Session`: instead of one
SHILL invocation against one booted world, a :class:`Batch` takes a base
:class:`repro.api.World` and a list of jobs, gives **every job its own
copy-on-write fork** of the base image, and returns one frozen
:class:`repro.api.RunResult` per job in submission order.

Per-job forks buy two properties at once:

* **amortised boot** — the base world is built (or fetched from the
  boot-image cache) once; each job pays only a fork, which is
  O(changed-state) rather than O(world);
* **order independence** — no job can observe another job's writes, so
  running the jobs thread-parallel (``run(parallel=True)``, per-worker
  kernels) produces byte-identical results to the sequential run:
  ``[r.fingerprint() for r in ...]`` is invariant under scheduling.

Results are additionally served from a module-level cache keyed on
(world digest, script source, user, registered scripts) — the world is
deterministic, so an identical job against an identical image must
produce an identical result.  The cache only engages while the base
world is :attr:`~repro.api.World.pristine` (booted from a digestible
configuration and not mutated since).
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.api.caching import BoundedCache
from repro.api.registry import ScriptRegistry
from repro.api.results import RunResult
from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.api.worlds import World

#: Bounded FIFO of frozen results; old entries are evicted so a
#: long-lived process sweeping many distinct jobs cannot grow without
#: limit (a re-run after eviction just recomputes deterministically).
_RESULT_CACHE: BoundedCache = BoundedCache(4096)


def clear_result_cache() -> None:
    """Drop all cached run results."""
    _RESULT_CACHE.clear()


def result_cache_size() -> int:
    return len(_RESULT_CACHE)


@dataclass(frozen=True)
class BatchJob:
    """One queued (script, user) pair."""

    source: str
    user: str | None
    name: str


class Batch:
    """A queue of ambient-script jobs over one base world.

    ``scripts`` (a mapping or :class:`ScriptRegistry`) is the shared
    capability-script registry every job's session starts with.  Typical
    flow::

        batch = Batch(World().with_usr_src(), scripts=registry)
        for user in users:
            batch.add(AMBIENT_SRC, user=user)
        results = batch.run(parallel=True, workers=8)
    """

    def __init__(
        self,
        world: "World",
        scripts: "Mapping[str, str] | ScriptRegistry | None" = None,
        cache: bool = True,
    ) -> None:
        from repro.api.worlds import World

        if not isinstance(world, World):
            raise TypeError("Batch needs a repro.api.World (its fork/digest "
                            "machinery is what batching is built on)")
        if isinstance(scripts, ScriptRegistry):
            scripts = scripts.as_dict()
        self.world = world
        self._scripts = dict(scripts or {})
        self._scripts_sig = tuple(sorted(self._scripts.items()))
        self._cache_enabled = cache
        self._jobs: list[BatchJob] = []
        self._stats = {"jobs": 0, "cache_hits": 0, "forks": 0}
        self._stats_lock = threading.Lock()

    # -- queueing ----------------------------------------------------------

    def add(self, source: str, *, user: str | None = None,
            name: str | None = None) -> "Batch":
        """Queue one ambient script, optionally for a specific user."""
        self._jobs.append(BatchJob(source, user, name or f"job{len(self._jobs)}"))
        return self

    def __len__(self) -> int:
        return len(self._jobs)

    @property
    def jobs(self) -> tuple[BatchJob, ...]:
        return tuple(self._jobs)

    @property
    def stats(self) -> dict[str, int]:
        """Totals across every :meth:`run` so far: jobs executed, result
        cache hits, and world forks taken."""
        with self._stats_lock:
            return dict(self._stats)

    # -- running -----------------------------------------------------------

    def run(self, *, parallel: bool = False, workers: int | None = None) -> list[RunResult]:
        """Execute every queued job; results in submission order.

        Sequential by default (and always deterministic).  With
        ``parallel=True`` jobs run on a thread pool, each against its own
        forked kernel; results are byte-identical to the sequential run
        (compare :meth:`RunResult.fingerprint`).
        """
        if workers is not None and workers < 1:
            raise ValueError("workers must be positive")
        self.world.boot()
        if not parallel:
            return [self._run_one(job) for job in self._jobs]
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=workers or 4) as pool:
            return list(pool.map(self._run_one, self._jobs))

    def _run_one(self, job: BatchJob) -> RunResult:
        key = self._cache_key(job)
        if key is not None:
            cached = _RESULT_CACHE.get(key)
            if cached is not None:
                self._bump("jobs", "cache_hits")
                return cached
        fork = self.world.fork()
        self._bump("jobs", "forks")
        try:
            session = fork.session(user=job.user, scripts=self._scripts)
        except KeyError as err:
            # Unknown job user: the job fails alone, and with no session
            # there is nothing to snapshot beyond the error itself.  The
            # catch is deliberately this narrow — a KeyError out of the
            # interpreter would be an engine bug and must propagate.
            return self._finish(key, RunResult(status=1, stderr=f"KeyError: {err}\n"))
        try:
            # Jobs execute under a canonical script name: diagnostics
            # (e.g. syntax errors) embed the script name, and cached
            # results are shared across identically-keyed jobs whatever
            # they were called — callers attribute output via .jobs.
            result = session.run_ambient(job.source, "<batch>")
        except ReproError as err:
            # Jobs are isolated forks, so one failing script must not
            # abort its siblings: it becomes a failed RunResult carrying
            # everything the session observed up to the error — denials,
            # sandbox count, profile, op counts — since the audit trail
            # matters most exactly when a run fails.  The error text is
            # deterministic, so cache/fingerprint semantics hold for
            # failures too.
            snapshot = session.result()
            result = dataclasses.replace(
                snapshot,
                status=1,
                stderr=snapshot.stderr + f"{type(err).__name__}: {err}\n",
            )
        return self._finish(key, result)

    def _finish(self, key: tuple | None, result: RunResult) -> RunResult:
        if key is not None:
            # put has setdefault semantics: under parallel duplicate
            # jobs, the first result wins everywhere (they are
            # fingerprint-identical anyway).
            result = _RESULT_CACHE.put(key, result)
        return result

    def _cache_key(self, job: BatchJob) -> tuple | None:
        """(world digest, scripts, source, user) — only while the base
        world is pristine, i.e. the digest still describes its state."""
        if not self._cache_enabled or not self.world.pristine:
            return None
        return (
            self.world.digest,
            self._scripts_sig,
            job.source,
            job.user or self.world.default_user,
        )

    def _bump(self, *keys: str) -> None:
        with self._stats_lock:
            for key in keys:
                self._stats[key] += 1

    def __repr__(self) -> str:
        return f"<Batch jobs={len(self._jobs)} world={self.world!r}>"
