"""Batch: many (script, user) jobs over forked worlds.

The scaling counterpart of :class:`repro.api.Session`: instead of one
SHILL invocation against one booted world, a :class:`Batch` takes a base
:class:`repro.api.World` and a list of jobs, gives **every job its own
copy-on-write fork** of the base image, and returns one frozen
:class:`repro.api.RunResult` per job in submission order.

Per-job forks buy two properties at once:

* **amortised boot** — the base world is built (or fetched from the
  boot-image cache, or restored from a persistent snapshot store) once;
  each job pays only a fork, which is O(changed-state) rather than
  O(world);
* **order independence** — no job can observe another job's writes, so
  running the jobs in parallel (per-worker kernels) produces
  byte-identical results to the sequential run:
  ``[r.fingerprint() for r in ...]`` is invariant under scheduling.

*Where* jobs run is a pluggable :class:`repro.api.executors.Executor`
(see README "Executors"): ``SequentialExecutor``, ``ThreadExecutor``,
``ProcessExecutor``, or ``StoreExecutor`` (worker processes booting from
a persistent on-disk :class:`~repro.kernel.store.SnapshotStore`).
``Batch`` itself is a thin façade: it classifies jobs against the result
cache, hands the rest to the executor, and merges completions back into
submission order.  Three consumption shapes::

    results = batch.run(executor=ProcessExecutor(8))   # list, in order
    for result in batch.stream(backend="process"):     # in order, as ready
        ...
    for job, result in batch.as_completed():           # completion order
        ...

The legacy ``backend="sequential"|"thread"|"process"`` strings (and the
older ``parallel=`` boolean) keep working through the
executor registry (:func:`~repro.api.executors.create_executor`).

Job failures are part of the contract: a script error (any
:class:`~repro.errors.ReproError`) becomes a failed :class:`RunResult`
carrying the error text *and* the full host traceback
(``result.traceback``); an unexpected error — an engine bug, a crashed
worker — raises :class:`BatchExecutionError` naming the (script, user)
job that failed, with the original traceback text preserved, through
``run``/``stream``/``as_completed`` alike.

Results are additionally served from a result cache keyed on (world
digest, script source, user, registered scripts) — the world is
deterministic, so an identical job against an identical image must
produce an identical result.  While the base world is
:attr:`~repro.api.World.pristine` a hit is unconditional.  A world
mutated *after* boot (``patch_file``, post-boot writes) no longer drops
the cache wholesale: the batch computes the **world delta** against the
boot template and asks the dependency analyzer
(:func:`repro.analysis.may_depend`) whether the job's statically
inferred footprint can intersect it.  A VALID verdict serves the cached
result with zero kernel ops; INVALID and UNKNOWN verdicts re-execute
(and record per-job blame, see :attr:`Batch.verdicts`).  Serving a
stale entry is additionally gated on soundness: the entry carries the
original run's recorded touched paths, and if any escaped the static
footprint the entry is invalidated conservatively and an audit event is
recorded (:attr:`Batch.audit_events`).  Mutated-world results are never
written back under the template digest.  By default every batch in the
process shares one module-level cache; pass
``Batch(result_cache=BoundedCache(...))`` to isolate a batch (tests, or
coordinators that must not share state).  Cached jobs are never
dispatched to executors, and executor results are merged back in.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Iterator, Mapping

from repro.api.caching import BoundedCache
from repro.api.executors.base import (
    BatchExecutionError,
    Executor,
    ExecutorJob,
    JobTemplate,
    create_executor,
    execute_job,
)
from repro.api.registry import ScriptRegistry
from repro.api.results import RunResult

if TYPE_CHECKING:
    from repro.api.worlds import World

__all__ = [
    "BATCH_BACKENDS",
    "Batch",
    "BatchExecutionError",
    "BatchJob",
    "clear_result_cache",
    "execute_job",
    "result_cache_size",
]

#: The legacy execution-backend strings (pre-executor API).  The full
#: set — including ``"store"`` — lives in
#: :data:`repro.api.executors.EXECUTOR_CHOICES`.
BATCH_BACKENDS = ("sequential", "thread", "process")

#: The default, module-level result cache: a bounded FIFO shared by
#: every Batch that is not given its own cache.  Each entry is a
#: ``(result, touched)`` pair — the frozen :class:`RunResult` with its
#: ``touched`` field stripped, alongside the recorded touched paths the
#: dependency analyzer's soundness gate needs at probe time.  Old
#: entries are evicted so a long-lived process sweeping many distinct
#: jobs cannot grow without limit (a re-run after eviction just
#: recomputes deterministically).
_RESULT_CACHE: BoundedCache = BoundedCache(4096)


def clear_result_cache() -> None:
    """Drop all results from the default (module-level) cache.  Batches
    constructed with their own ``result_cache`` are unaffected."""
    _RESULT_CACHE.clear()


def result_cache_size() -> int:
    """Entries in the default (module-level) cache."""
    return len(_RESULT_CACHE)


@dataclass(frozen=True)
class BatchJob:
    """One queued (script, user) pair."""

    source: str
    user: str | None
    name: str


class Batch:
    """A queue of ambient-script jobs over one base world.

    ``scripts`` (a mapping or :class:`ScriptRegistry`) is the shared
    capability-script registry every job's session starts with.
    ``result_cache`` overrides the module-level shared result cache with
    a private :class:`~repro.api.caching.BoundedCache`.

    ``lint`` enables pre-dispatch gating (see docs/linting.md): every
    queued script is statically analysed *before* any fork or wire
    round-trip.  ``"warn"`` attaches the inferred
    :class:`~repro.analysis.Footprint` to each ``result.footprint``;
    ``"strict"`` additionally raises
    :class:`~repro.analysis.LintRejection` for the first job (in
    submission order) carrying a lint error — the executor never sees
    the doomed job, so the diagnostics are byte-identical whether the
    batch targets a sequential, process, or remote executor.
    ``lint_rules`` substitutes a custom
    :class:`~repro.analysis.RuleSet` (a ``FakeRuleSet`` in tests).

    Example::

        from repro.api import Batch, World

        batch = Batch(World().for_user("alice").with_jpeg_samples())
        for i in range(3):
            batch.add('#lang shill/ambient\\n'
                      'docs = open_dir("~/Documents");\\n'
                      'append(stdout, path(docs) + "\\\\n");\\n',
                      name=f"job{i}")
        results = batch.run()     # or run(executor=ProcessExecutor(8))
        assert [r.status for r in results] == [0, 0, 0]
        assert batch.stats["cache_hits"] == 2   # identical jobs dispatch once
    """

    def __init__(
        self,
        world: "World",
        scripts: "Mapping[str, str] | ScriptRegistry | None" = None,
        cache: bool = True,
        result_cache: "BoundedCache | None" = None,
        lint: str = "off",
        lint_rules: Any = None,
    ) -> None:
        from repro.api.worlds import World

        if not isinstance(world, World):
            raise TypeError("Batch needs a repro.api.World (its fork/digest "
                            "machinery is what batching is built on)")
        if lint not in ("off", "warn", "strict"):
            raise ValueError(f"lint must be one of ('off', 'warn', 'strict'), "
                             f"got {lint!r}")
        if isinstance(scripts, ScriptRegistry):
            scripts = scripts.as_dict()
        self.world = world
        self._scripts = dict(scripts or {})
        self._scripts_sig = tuple(sorted(self._scripts.items()))
        self._cache_enabled = cache
        self._result_cache = result_cache if result_cache is not None else _RESULT_CACHE
        self._lint = lint
        self._lint_rules = lint_rules
        self._jobs: list[BatchJob] = []
        self._stats = {"jobs": 0, "cache_hits": 0, "forks": 0}
        self._stats_lock = threading.Lock()
        # Dependency-aware invalidation bookkeeping (last run): per-job
        # verdict strings, verdict tallies, and soundness audit events.
        self._verdicts: dict[int, str] = {}
        self._verdict_counts = {"hits": 0, "misses": 0,
                                "invalidated": 0, "uncacheable": 0}
        self._audit: list[str] = []
        self._footprints: dict[str, Any] = {}

    # -- queueing ----------------------------------------------------------

    def add(self, source: str, *, user: str | None = None,
            name: str | None = None) -> "Batch":
        """Queue one ambient script, optionally for a specific user."""
        self._jobs.append(BatchJob(source, user, name or f"job{len(self._jobs)}"))
        return self

    def __len__(self) -> int:
        return len(self._jobs)

    @property
    def jobs(self) -> tuple[BatchJob, ...]:
        return tuple(self._jobs)

    @property
    def stats(self) -> dict[str, int]:
        """Totals across every run so far: jobs executed, result cache
        hits, and world forks taken."""
        with self._stats_lock:
            return dict(self._stats)

    @property
    def verdicts(self) -> dict[int, str]:
        """Per-job cache verdicts of the **last** run, by submission
        index: ``"hit"``, ``"miss"``, ``"invalidated-by:<prefix>"``, or
        ``"uncacheable:<flag>"``.  Jobs that never had a cache key (the
        world is undigestible, or ``cache=False``) are absent."""
        with self._stats_lock:
            return dict(self._verdicts)

    @property
    def cache_report(self) -> dict[str, int]:
        """Verdict tallies across every run so far — the
        cache-effectiveness summary (``hits`` / ``misses`` /
        ``invalidated`` / ``uncacheable``)."""
        with self._stats_lock:
            return dict(self._verdict_counts)

    @property
    def audit_events(self) -> tuple[str, ...]:
        """Soundness-gate audit trail: one event per cached entry whose
        recorded touched paths escaped the job's static footprint (the
        entry was invalidated conservatively)."""
        with self._stats_lock:
            return tuple(self._audit)

    # -- running -----------------------------------------------------------

    def run(self, *, parallel: bool = False, workers: int | None = None,
            backend: str | None = None,
            executor: "Executor | None" = None) -> list[RunResult]:
        """Execute every queued job; results in submission order.

        ``executor`` is the execution strategy (an
        :class:`repro.api.executors.Executor` instance — the batch binds
        it but does not close it, so one executor can serve many runs).
        The legacy spellings resolve through the deprecation shim:
        ``backend=`` strings construct a fresh executor per run (closed
        afterwards) and ``parallel=True`` means ``backend="thread"``.
        Whatever the strategy, results are byte-identical (compare
        :meth:`RunResult.fingerprint`).
        """
        chosen, owned = self._resolve(parallel, workers, backend, executor)
        return list(self._merge_in_order(self._drive(chosen, owned)))

    def stream(self, *, parallel: bool = False, workers: int | None = None,
               backend: str | None = None,
               executor: "Executor | None" = None) -> Iterator[RunResult]:
        """Like :meth:`run`, but yield each result **in submission order
        as soon as it (and every earlier job) has finished** — an ordered
        merge over the executor's completion stream, so a consumer sees
        the exact ``run()`` list without waiting for the whole batch.
        """
        chosen, owned = self._resolve(parallel, workers, backend, executor)
        return self._merge_in_order(self._drive(chosen, owned))

    def as_completed(self, *, parallel: bool = False, workers: int | None = None,
                     backend: str | None = None,
                     executor: "Executor | None" = None,
                     ) -> Iterator[tuple[BatchJob, RunResult]]:
        """Yield ``(job, result)`` pairs in **completion order** — cache
        hits first, then jobs as the executor finishes them.  Use this to
        react to results as they land when submission order does not
        matter; fingerprint guarantees are unchanged (the *set* of
        results equals the ``run()`` list)."""
        chosen, owned = self._resolve(parallel, workers, backend, executor)
        return ((job, result) for _index, job, result in self._drive(chosen, owned))

    # -- the driver --------------------------------------------------------

    def _resolve(self, parallel: bool, workers: int | None,
                 backend: str | None,
                 executor: "Executor | None") -> tuple[Executor, bool]:
        """(executor, whether this run owns — and must close — it)."""
        if workers is not None and workers < 1:
            raise ValueError("workers must be positive")
        if executor is not None:
            if backend is not None or parallel:
                raise ValueError("pass either executor= or the legacy "
                                 "backend=/parallel= spelling, not both")
            if workers is not None:
                raise ValueError("workers is the executor's to own; "
                                 "construct it with workers=N")
            return executor, False
        if parallel:
            # stacklevel 3 = the caller of run/stream/as_completed, each
            # of which calls _resolve directly.
            warnings.warn(
                "Batch.run(parallel=True) is deprecated; pass "
                "backend='thread' or executor=ThreadExecutor()",
                DeprecationWarning, stacklevel=3)
        if backend is None:
            backend = "thread" if parallel else "sequential"
        return create_executor(backend, workers=workers), True

    @staticmethod
    def _merge_in_order(completions: "Iterator[tuple[int, BatchJob, RunResult]]",
                        ) -> Iterator[RunResult]:
        buffered: dict[int, RunResult] = {}
        next_index = 0
        for index, _job, result in completions:
            buffered[index] = result
            while next_index in buffered:
                yield buffered.pop(next_index)
                next_index += 1

    def _drive(self, chosen: Executor, owned: bool,
               ) -> Iterator[tuple[int, BatchJob, RunResult]]:
        """Classify, dispatch, merge: yields (index, job, result) with
        cache hits first and executor completions as they land; raises
        the submission-earliest :class:`BatchExecutionError` after
        draining, so sibling results still reach the cache."""
        try:
            # Gate before the executor touches anything: a strict-mode
            # rejection must look identical whether the batch would have
            # forked locally or shipped jobs over the wire.
            lint_reports = self._gate()
            chosen.prepare(self.world)
            self.world.boot()
            template = JobTemplate.for_world(self.world, self._scripts_sig)
            chosen.bind(template)

            pristine = self.world.pristine
            with self._stats_lock:
                self._verdicts = {}
            # The world delta against the boot template, computed lazily
            # once per run and shared by every probe.
            delta_cell: list = []

            # Identically-keyed queued jobs dispatch once: later
            # duplicates ride on the representative's result, matching
            # the cache-hit semantics of a fully sequential run.
            pending: list[tuple[int, BatchJob, tuple | None]] = []
            representative: dict[tuple, int] = {}
            duplicates: dict[int, list[int]] = {}
            for index, job in enumerate(self._jobs):
                key = self._cache_key(job)
                entry = self._result_cache.get(key) if key is not None else None
                if entry is not None and not pristine:
                    # The base world drifted from what the digest
                    # describes — the cached entry survives only if the
                    # dependency analyzer proves the job could not have
                    # observed the drift.
                    verdict = self._probe(job, entry, delta_cell)
                    if not verdict.valid:
                        self._note_verdict(index, verdict.blame[0]
                                           if verdict.blame else verdict.state)
                        entry = None
                if entry is not None:
                    self._bump("jobs", "cache_hits")
                    self._note_verdict(index, "hit")
                    yield index, job, self._annotate(entry[0], index, lint_reports)
                elif key is not None and key in representative:
                    self._bump("jobs", "cache_hits")
                    if index not in self._verdicts:
                        self._note_verdict(index, "hit")
                    duplicates.setdefault(representative[key], []).append(index)
                else:
                    if key is not None:
                        representative[key] = index
                        if index not in self._verdicts:
                            self._note_verdict(index, "miss")
                    # Results computed on a drifted world must never be
                    # stored under the template digest.
                    pending.append((index, job, key if pristine else None))

            by_handle = {}
            for index, job, key in pending:
                handle = chosen.submit(ExecutorJob(
                    index=index, name=job.name, source=job.source, user=job.user))
                by_handle[handle] = (index, job, key)
            failure: BatchExecutionError | None = None
            failure_index = len(self._jobs)
            # Drain exactly our own handles: a shared executor may be
            # carrying another batch's (or the caller's own) submissions.
            for handle in chosen.as_completed(list(by_handle)):
                index, job, key = by_handle[handle]
                try:
                    result = handle.result()
                except BatchExecutionError as err:
                    # Keep draining so sibling jobs finish cleanly; the
                    # first failure (submission order) wins.
                    if index < failure_index:
                        failure, failure_index = err, index
                    continue
                self._bump("jobs", "forks")
                result = self._finish(key, result)
                yield index, job, self._annotate(result, index, lint_reports)
                for dup_index in duplicates.get(index, ()):
                    yield (dup_index, self._jobs[dup_index],
                           self._annotate(result, dup_index, lint_reports))
            if failure is not None:
                raise failure
        finally:
            if owned:
                chosen.close()

    # -- shared plumbing ---------------------------------------------------

    def _gate(self) -> dict:
        """Run pre-dispatch lint over the queued jobs (mode permitting).
        Imported lazily: ``repro.analysis`` depends on this module's
        :class:`BatchExecutionError`."""
        if self._lint == "off":
            return {}
        from repro.analysis.gate import gate_jobs

        return gate_jobs(self._jobs, self._scripts, self._lint,
                         rules=self._lint_rules)

    @staticmethod
    def _annotate(result: RunResult, index: int, lint_reports: dict) -> RunResult:
        """Attach the job's inferred footprint.  The cache holds bare
        results — the annotation is advisory metadata, and caching it
        would leak one batch's lint mode into another's results."""
        report = lint_reports.get(index)
        if report is None:
            return result
        return replace(result, footprint=report.footprint)

    def _finish(self, key: tuple | None, result: RunResult) -> RunResult:
        if key is not None:
            # put has setdefault semantics: under parallel duplicate
            # jobs, the first result wins everywhere (they are
            # fingerprint-identical anyway).  Entries are (result,
            # touched) pairs: touched is stripped from the stored
            # result but kept alongside for the soundness gate.
            stored, _touched = self._result_cache.put(
                key, (replace(result, touched=()), result.touched))
            result = stored
        return result

    def _cache_key(self, job: BatchJob) -> tuple | None:
        """(world digest, scripts, source, user) — for digestible,
        cache-enabled worlds.  Whether an entry under this key may be
        *served* is decided at classification time: unconditionally
        while the world is pristine, by :func:`repro.analysis.may_depend`
        once it has drifted."""
        if not self._cache_enabled or self.world.digest is None:
            return None
        return (
            self.world.digest,
            self._scripts_sig,
            job.source,
            job.user or self.world.default_user,
        )

    def _probe(self, job: BatchJob, entry: tuple, delta_cell: list):
        """Decide whether a cached entry survives the base world's
        post-boot drift: static footprint × world delta, then the
        soundness gate (``static ⊇ recorded touched``) on the entry."""
        from repro.analysis.deps import (
            INVALID,
            Verdict,
            may_depend,
            soundness_escapes,
            world_delta_of,
        )

        if not delta_cell:
            delta_cell.append(world_delta_of(self.world))
        footprint = self._footprint_of(job)
        home = self._home_of(job.user)
        verdict = may_depend(footprint, delta_cell[0], home=home)
        if verdict.valid:
            escapes = soundness_escapes(footprint, entry[1], home=home)
            if escapes:
                with self._stats_lock:
                    self._audit.append(
                        f"soundness: recorded touches escaped the static "
                        f"footprint of {job.name!r}: " + ", ".join(escapes))
                return Verdict(INVALID, tuple(
                    f"invalidated-by:escape:{esc}" for esc in escapes))
        return verdict

    def _footprint_of(self, job: BatchJob):
        """The job's statically inferred footprint, memoized per source;
        ``None`` (→ UNKNOWN verdict) when inference errored or left
        names unresolved."""
        if job.source not in self._footprints:
            from repro.analysis.infer import analyze_source

            analysis = analyze_source(job.name, job.source,
                                      registry=self._scripts)
            self._footprints[job.source] = (
                None if analysis.error is not None or analysis.unresolved
                else analysis.footprint)
        return self._footprints[job.source]

    def _home_of(self, user: str | None) -> str | None:
        """The job user's home, for ``~``-prefix expansion in footprints."""
        assert self.world.kernel is not None
        try:
            return self.world.kernel.users.lookup(
                user or self.world.default_user).home
        except KeyError:
            return None

    def _note_verdict(self, index: int, verdict: str) -> None:
        bucket = ("hits" if verdict == "hit"
                  else "invalidated" if verdict.startswith("invalidated")
                  else "uncacheable" if verdict.startswith("uncacheable")
                  else "misses")
        with self._stats_lock:
            self._verdicts[index] = verdict
            self._verdict_counts[bucket] += 1

    def _bump(self, *keys: str) -> None:
        with self._stats_lock:
            for key in keys:
                self._stats[key] += 1

    def __repr__(self) -> str:
        return f"<Batch jobs={len(self._jobs)} world={self.world!r}>"
