"""Frozen run results: everything a caller may observe about a run.

A :class:`RunResult` is the API's only answer object.  Callers never
reach into ``runtime.tty``, ``runtime.profile`` or ``runtime.last_session``
— the session snapshots those internals into an immutable record the
moment a run finishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from types import MappingProxyType
from typing import Any, Mapping

from repro.sandbox.audit import AuditEntry

#: The per-phase keys every ``RunResult.profile`` mapping carries
#: (Figure 10's breakdown: startup / sandbox setup / sandboxed
#: execution / remaining, plus the total they decompose).
PROFILE_KEYS = ("startup", "sandbox_setup", "sandbox_exec", "total", "remaining")

#: The deterministic kernel operation counters every ``RunResult.ops``
#: mapping carries (deltas of :meth:`repro.kernel.kernel.KernelStats
#: .snapshot` over the run).  Unlike ``profile``, these are exact and
#: reproducible — the benchmark shape assertions and the batch runner's
#: determinism checks gate on them.
OPS_KEYS = ("total_syscalls", "vnode_ops", "mac_checks", "mac_denials",
            "sandboxes_created", "execs")


def freeze_ops(raw: Mapping[str, int]) -> Mapping[str, int]:
    """Package a kernel-stats delta into the public immutable mapping."""
    return MappingProxyType({key: int(raw.get(key, 0)) for key in OPS_KEYS})


def freeze_profile(raw: Mapping[str, float]) -> Mapping[str, float]:
    """Package a runtime's accumulator dict into the public breakdown.

    ``total`` covers script execution only; ``startup`` (interpreter
    construction) is reported alongside it, so ``remaining`` — time in
    SHILL script code and contract checking — is what's left of
    ``total`` after sandbox setup and sandboxed execution.
    """
    startup = float(raw.get("startup", 0.0))
    setup = float(raw.get("sandbox_setup", 0.0))
    sexec = float(raw.get("sandbox_exec", 0.0))
    total = float(raw.get("total", 0.0))
    remaining = max(total - setup - sexec, 0.0)
    return MappingProxyType({
        "startup": startup,
        "sandbox_setup": setup,
        "sandbox_exec": sexec,
        "total": total,
        "remaining": remaining,
    })


def _stable_repr(value: Any) -> str:
    """A repr for fingerprinting: exact for plain data, type-only for
    opaque objects (default reprs embed memory addresses, which would
    make identical runs fingerprint differently)."""
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    if isinstance(value, (list, tuple)):
        inner = ",".join(_stable_repr(v) for v in value)
        return f"{type(value).__name__}({inner})"
    if isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: _stable_repr(kv[0]))
        inner = ",".join(f"{_stable_repr(k)}:{_stable_repr(v)}" for k, v in items)
        return f"dict({inner})"
    return f"<opaque:{type(value).__qualname__}>"


@dataclass(frozen=True)
class RunResult:
    """The outcome of one run (an ambient script, or a sandboxed command).

    * ``stdout`` / ``stderr`` — what the run wrote to the ambient stdout
      and stderr devices (or the sandbox's wired pipes);
    * ``status`` — exit status (0 for ambient scripts that completed);
    * ``profile`` — the per-phase timing breakdown (:data:`PROFILE_KEYS`);
    * ``ops`` — deterministic kernel operation counts (:data:`OPS_KEYS`);
    * ``sandbox_count`` — capability-based sandboxes created by the run;
    * ``denials`` — audit entries for operations the MAC policy refused;
    * ``auto_granted`` — privileges granted on demand (debug mode only);
    * ``value`` — the run's language-level result, when there is one;
    * ``traceback`` — for failed batch jobs, the full host traceback of
      the error that failed the run (diagnostic only: its frames name
      whichever backend ran the job, so it is excluded from
      :meth:`fingerprint` the same way wall-clock timings are);
    * ``footprint`` — the statically inferred capability footprint
      (:class:`repro.analysis.Footprint`), attached when the batch ran
      with ``lint="warn"``/``"strict"``; ``None`` otherwise.  Advisory
      metadata, not an observable of the run: excluded from
      :meth:`fingerprint` and never stored in the result cache.
    * ``touched`` — the recorded dynamic footprint: sorted, deduplicated
      ``(kind, path)`` pairs (kind is ``"read"``/``"write"``/``"execute"``)
      for every final-op MAC check the run passed.  Like ``footprint``
      it is diagnostic metadata, not an observable: excluded from
      :meth:`fingerprint` and stripped before a result enters the cache.
      The dependency analyzer (:mod:`repro.analysis.deps`) gates the
      static footprint against it — ``static ⊇ touched`` — before a
      cached result may survive a world mutation.

    Example::

        from repro.api import World

        world = World().for_user("alice").with_jpeg_samples()
        result = world.session().run_ambient(
            '#lang shill/ambient\\n'
            'docs = open_dir("~/Documents");\\n'
            'append(stdout, path(docs) + "\\\\n");\\n')
        assert result.ok and result.stdout.endswith("Documents\\n")
        assert result.ops["vnode_ops"] > 0
        assert isinstance(result.fingerprint(), bytes)
    """

    stdout: str = ""
    stderr: str = ""
    status: int = 0
    profile: Mapping[str, float] = field(default_factory=lambda: freeze_profile({}))
    ops: Mapping[str, int] = field(default_factory=lambda: freeze_ops({}))
    sandbox_count: int = 0
    denials: tuple[AuditEntry, ...] = ()
    auto_granted: tuple[str, ...] = ()
    value: Any = None
    traceback: str = ""
    footprint: Any = None
    touched: tuple = ()

    def __reduce__(self):
        """Results cross process boundaries (the batch engine's process
        backend ships them home), and the frozen ``profile``/``ops``
        mapping proxies do not pickle — reduce to plain data and re-freeze
        on load.  Fields are enumerated via :func:`dataclasses.fields`
        so a future field cannot be silently dropped in transit (which
        would break fingerprint identity on the process backend only)."""
        state = {f.name: getattr(self, f.name) for f in fields(self)}
        state["profile"] = dict(state["profile"])
        state["ops"] = dict(state["ops"])
        return (_rebuild, (state,))

    @property
    def ok(self) -> bool:
        return self.status == 0

    @property
    def denied(self) -> bool:
        return bool(self.denials)

    def denial_lines(self) -> tuple[str, ...]:
        return tuple(entry.format() for entry in self.denials)

    def fingerprint(self) -> bytes:
        """Every deterministic observable of the run, as one digest.

        Two runs of the same job against identical worlds must produce
        identical fingerprints — this is what the batch runner's
        "parallel equals sequential" guarantee is stated (and tested)
        in.  Wall-clock ``profile`` timings are deliberately excluded;
        the exact ``ops`` counters stand in for "did the same work".
        Fields are length-prefixed before hashing, so no output content
        can make two different results collide by mimicking a separator.
        ``value`` participates only as far as it is plain data — opaque
        objects (whose default reprs embed memory addresses) hash as
        their type name, never their repr.
        """
        import hashlib

        parts = (
            self.stdout,
            self.stderr,
            str(self.status),
            str(self.sandbox_count),
            ",".join(f"{key}={self.ops.get(key, 0)}" for key in OPS_KEYS),
            "\n".join(self.denial_lines()),
            "\n".join(self.auto_granted),
            _stable_repr(self.value),
        )
        digest = hashlib.sha256()
        for part in parts:
            raw = part.encode()
            digest.update(len(raw).to_bytes(8, "big"))
            digest.update(raw)
        return digest.digest()


def _rebuild(state: dict) -> RunResult:
    """Unpickle helper for :meth:`RunResult.__reduce__`."""
    state = dict(state)
    state["profile"] = freeze_profile(state["profile"])
    state["ops"] = freeze_ops(state["ops"])
    return RunResult(**state)
