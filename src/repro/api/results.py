"""Frozen run results: everything a caller may observe about a run.

A :class:`RunResult` is the API's only answer object.  Callers never
reach into ``runtime.tty``, ``runtime.profile`` or ``runtime.last_session``
— the session snapshots those internals into an immutable record the
moment a run finishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping

from repro.sandbox.audit import AuditEntry

#: The per-phase keys every ``RunResult.profile`` mapping carries
#: (Figure 10's breakdown: startup / sandbox setup / sandboxed
#: execution / remaining, plus the total they decompose).
PROFILE_KEYS = ("startup", "sandbox_setup", "sandbox_exec", "total", "remaining")


def freeze_profile(raw: Mapping[str, float]) -> Mapping[str, float]:
    """Package a runtime's accumulator dict into the public breakdown.

    ``total`` covers script execution only; ``startup`` (interpreter
    construction) is reported alongside it, so ``remaining`` — time in
    SHILL script code and contract checking — is what's left of
    ``total`` after sandbox setup and sandboxed execution.
    """
    startup = float(raw.get("startup", 0.0))
    setup = float(raw.get("sandbox_setup", 0.0))
    sexec = float(raw.get("sandbox_exec", 0.0))
    total = float(raw.get("total", 0.0))
    remaining = max(total - setup - sexec, 0.0)
    return MappingProxyType({
        "startup": startup,
        "sandbox_setup": setup,
        "sandbox_exec": sexec,
        "total": total,
        "remaining": remaining,
    })


@dataclass(frozen=True)
class RunResult:
    """The outcome of one run (an ambient script, or a sandboxed command).

    * ``stdout`` / ``stderr`` — what the run wrote to the ambient stdout
      and stderr devices (or the sandbox's wired pipes);
    * ``status`` — exit status (0 for ambient scripts that completed);
    * ``profile`` — the per-phase timing breakdown (:data:`PROFILE_KEYS`);
    * ``sandbox_count`` — capability-based sandboxes created by the run;
    * ``denials`` — audit entries for operations the MAC policy refused;
    * ``auto_granted`` — privileges granted on demand (debug mode only);
    * ``value`` — the run's language-level result, when there is one.
    """

    stdout: str = ""
    stderr: str = ""
    status: int = 0
    profile: Mapping[str, float] = field(default_factory=lambda: freeze_profile({}))
    sandbox_count: int = 0
    denials: tuple[AuditEntry, ...] = ()
    auto_granted: tuple[str, ...] = ()
    value: Any = None

    @property
    def ok(self) -> bool:
        return self.status == 0

    @property
    def denied(self) -> bool:
        return bool(self.denials)

    def denial_lines(self) -> tuple[str, ...]:
        return tuple(entry.format() for entry in self.denials)
