"""repro.api — the single supported public surface.

Everything above the kernel goes through five nouns:

* :class:`World` — fluent builder for the deterministic world image
  (users, workload fixtures, ad-hoc files), booted once through a
  boot-image cache; cheap to :meth:`~World.fork` and to fan out as a
  :meth:`~World.pool`;
* :class:`Session` — one SHILL invocation: runs ambient scripts, loads
  capability-safe exports, and snapshots results;
* :class:`Batch` — many (script, user) jobs over per-job world forks,
  dispatched to a pluggable :class:`Executor`
  (:mod:`repro.api.executors`: sequential, thread, process, or a
  snapshot-store-backed worker fleet) with byte-identical results
  however they run, consumed eagerly (``run``) or as futures
  (``stream`` / ``as_completed``), plus a result cache keyed on
  (world digest, script, user);
* :class:`Sandbox` — the ``shill-run`` debugging tool: one command under
  a policy file;
* :class:`RunResult` — the frozen answer object (stdout, stderr, exit
  status, per-phase profile breakdown, deterministic op counts, denials,
  sandbox count).

:class:`ScriptRegistry` feeds named ``.cap`` / ``.ambient`` sources —
from strings, files, or directories — into sessions.

A typical flow::

    from repro.api import ScriptRegistry, World

    world = World().for_user("alice").with_jpeg_samples().boot()
    session = world.session(scripts=ScriptRegistry().add("find_jpg.cap", SRC))
    result = session.run_ambient(AMBIENT_SRC, "main.ambient")
    print(result.stdout, result.sandbox_count)

The engine underneath (:class:`repro.lang.runner.ShillRuntime`,
:func:`repro.world.build_world`) remains importable from its historical
locations for tests of the language ↔ sandbox seam, and — deprecated —
from this module.
"""

from __future__ import annotations

import warnings

from repro.api.batch import (
    BATCH_BACKENDS,
    Batch,
    BatchExecutionError,
    BatchJob,
    clear_result_cache,
    result_cache_size,
)
from repro.api.caching import BoundedCache
from repro.api.executors import (
    EXECUTOR_CHOICES,
    Executor,
    ExecutorJob,
    JobHandle,
    JobTemplate,
    ProcessExecutor,
    RemoteExecutor,
    SequentialExecutor,
    ServeExecutor,
    SnapshotStore,
    StoreExecutor,
    ThreadExecutor,
    create_executor,
    register_executor,
    resolve_executor,
)
from repro.api.registry import SCRIPT_SUFFIXES, ScriptRegistry
from repro.api.scheduling import (
    LeastLoaded,
    RoundRobin,
    SchedulingPolicy,
    StoreWarmth,
    resolve_policy,
)
from repro.api.results import OPS_KEYS, PROFILE_KEYS, RunResult, freeze_ops, freeze_profile
from repro.api.sandboxes import Sandbox
from repro.api.sessions import Session
from repro.policy import (
    CapabilityEngine,
    Decision,
    FakePolicyEngine,
    PolicyEngine,
    PolicyRequest,
    RuleEngine,
)
from repro.api.worlds import (
    FIXTURE_CHOICES,
    World,
    WorldPool,
    as_kernel,
    boot_cache_size,
    clear_boot_cache,
)

__all__ = [
    "World",
    "WorldPool",
    "Session",
    "Sandbox",
    "Batch",
    "BatchExecutionError",
    "BatchJob",
    "BATCH_BACKENDS",
    "Executor",
    "ExecutorJob",
    "JobHandle",
    "JobTemplate",
    "SequentialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "StoreExecutor",
    "RemoteExecutor",
    "ServeExecutor",
    "SnapshotStore",
    "BoundedCache",
    "EXECUTOR_CHOICES",
    "register_executor",
    "create_executor",
    "resolve_executor",
    "SchedulingPolicy",
    "RoundRobin",
    "LeastLoaded",
    "StoreWarmth",
    "resolve_policy",
    "RunResult",
    "PolicyEngine",
    "PolicyRequest",
    "Decision",
    "RuleEngine",
    "FakePolicyEngine",
    "CapabilityEngine",
    "ScriptRegistry",
    "FIXTURE_CHOICES",
    "PROFILE_KEYS",
    "OPS_KEYS",
    "SCRIPT_SUFFIXES",
    "as_kernel",
    "freeze_profile",
    "freeze_ops",
    "clear_boot_cache",
    "boot_cache_size",
    "clear_result_cache",
    "result_cache_size",
    "LintRejection",
]

_DEPRECATED = ("ShillRuntime", "build_world")


def __getattr__(name: str):
    # Loaded on demand so the analysis package (parser, contract
    # elaborator) stays off the import path of API users who never lint.
    if name == "LintRejection":
        from repro.analysis.gate import LintRejection

        return LintRejection
    # Deprecation shims: the engine stays reachable under the new roof so
    # code mid-migration can flip one import at a time.
    if name in _DEPRECATED:
        warnings.warn(
            f"repro.api.{name} is a deprecated alias for the internal engine; "
            "use repro.api.World / repro.api.Session instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if name == "ShillRuntime":
            from repro.lang.runner import ShillRuntime

            return ShillRuntime
        from repro.world import build_world

        return build_world
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
