"""Script registries: named ``.cap`` / ``.ambient`` sources for a session.

A :class:`ScriptRegistry` collects SHILL sources from strings, host
files, or whole directories, and hands them to :class:`repro.api.Session`
so ``require "name.cap"`` resolves without manual ``register_script``
plumbing.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Iterator, Mapping

#: Host-file suffixes recognised as SHILL sources.
SCRIPT_SUFFIXES = (".cap", ".ambient")


class ScriptRegistry:
    """An ordered name → source mapping with fluent loaders.

    Example::

        from repro.api import ScriptRegistry

        registry = ScriptRegistry().add(
            "hello.cap",
            "#lang shill/cap\\n"
            "provide hello : {out : file(+append)} -> void;\\n"
            'hello = fun(out) { append(out, "hi\\\\n"); }\\n')
        assert "hello.cap" in registry
        assert registry.as_dict()["hello.cap"].startswith("#lang shill/cap")
    """

    def __init__(self, scripts: Mapping[str, str] | None = None) -> None:
        self._scripts: dict[str, str] = dict(scripts or {})

    # -- loading -----------------------------------------------------------

    def add(self, name: str, source: str) -> "ScriptRegistry":
        """Register ``source`` under ``name`` (e.g. ``"find_jpg.cap"``)."""
        self._scripts[name] = source
        return self

    def update(self, scripts: "Mapping[str, str] | ScriptRegistry") -> "ScriptRegistry":
        if isinstance(scripts, ScriptRegistry):
            scripts = scripts.as_dict()
        self._scripts.update(scripts)
        return self

    def add_file(self, path: str | pathlib.Path, name: str | None = None) -> "ScriptRegistry":
        """Register one host file; the script name defaults to its basename."""
        path = pathlib.Path(path)
        self._scripts[name or path.name] = path.read_text()
        return self

    def add_dir(
        self,
        path: str | pathlib.Path,
        suffixes: Iterable[str] = SCRIPT_SUFFIXES,
        recursive: bool = False,
    ) -> "ScriptRegistry":
        """Register every script-suffixed file in a host directory."""
        path = pathlib.Path(path)
        if not path.is_dir():
            raise NotADirectoryError(str(path))
        pattern = "**/*" if recursive else "*"
        # A bare string is Iterable[str] too — tuple("*.cap") would turn
        # into single characters and silently match nothing.
        wanted = (suffixes,) if isinstance(suffixes, str) else tuple(suffixes)
        for child in sorted(path.glob(pattern)):
            if child.is_file() and child.suffix in wanted:
                source = child.read_text()
                existing = self._scripts.get(child.name)
                if existing is not None and existing != source:
                    raise ValueError(
                        f"duplicate script name {child.name!r} ({child} conflicts "
                        "with an already-registered source) — register one with "
                        "an explicit add_file(name=...)"
                    )
                self._scripts[child.name] = source
        return self

    # -- reading -----------------------------------------------------------

    def get(self, name: str) -> str:
        return self._scripts[name]

    def as_dict(self) -> dict[str, str]:
        return dict(self._scripts)

    def merged(self, other: "Mapping[str, str] | ScriptRegistry") -> "ScriptRegistry":
        return ScriptRegistry(self._scripts).update(other)

    def __contains__(self, name: object) -> bool:
        return name in self._scripts

    def __iter__(self) -> Iterator[str]:
        return iter(self._scripts)

    def __len__(self) -> int:
        return len(self._scripts)

    def __repr__(self) -> str:
        return f"<ScriptRegistry {sorted(self._scripts)}>"
