"""Worlds: a fluent builder over the deterministic world image.

``World()`` records configuration steps (users, workload fixtures,
extra files) and :meth:`World.boot` materialises them onto a freshly
booted kernel, in declaration order.  A booted world hands out
:class:`repro.api.Session` and :class:`repro.api.Sandbox` objects — the
only supported way to run SHILL code::

    world = World().for_user("alice").with_jpeg_samples().boot()
    result = world.session(scripts=my_registry).run_ambient(src)
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.api.registry import ScriptRegistry
from repro.api.sandboxes import Sandbox
from repro.api.sessions import Session
from repro.world import (
    add_emacs_mirror,
    add_grading_fixture,
    add_jpeg_samples,
    add_usr_src,
    add_web_content,
    build_world,
)
from repro.world.image import WorldBuilder

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel
    from repro.kernel.syscalls import SyscallInterface

#: ``--fixture`` spellings accepted by :meth:`World.with_fixture`.
FIXTURE_CHOICES = ("none", "jpeg", "grading", "usr-src", "web", "emacs")


class World:
    """Builder + handle for one booted world image.

    Fluent ``with_*`` / ``for_user`` calls queue build steps; ``boot()``
    runs them once and is idempotent afterwards.  Fixture helpers record
    their return values (paths, counts, blobs) under ``world.fixtures``.
    """

    def __init__(self, *, install_shill: bool = True) -> None:
        self._install_shill = install_shill
        self._steps: list[tuple[str | None, Callable[["Kernel"], Any]]] = []
        self._users: list[str] = []
        self._default_user = "root"
        self.kernel: "Kernel | None" = None
        self.fixtures: dict[str, Any] = {}

        self._sys_cache: dict[tuple[str, str], "SyscallInterface"] = {}

    # -- configuration -----------------------------------------------------

    def without_shill(self) -> "World":
        """The Figure 9 "Baseline" machine: no SHILL kernel module."""
        self._check_unbooted()
        self._install_shill = False
        return self

    def for_user(self, user: str, *, create: bool = True) -> "World":
        """Default user for sessions, sandboxes, and owner-less content.

        Unknown users are created at boot (with a home) unless
        ``create=False``, in which case a later lookup fails with
        ``KeyError`` — the CLI uses this so a typo'd ``--user`` errors
        instead of silently running as a brand-new user."""
        self._check_unbooted()
        self._default_user = user
        if create and user != "root":
            self.with_users(user)
        return self

    def with_users(self, *names: str) -> "World":
        """Ensure the named users exist (with homes); no-op for users the
        base image already creates."""
        self._check_unbooted()
        for name in names:
            if name not in self._users:
                self._users.append(name)
        return self

    # -- workload fixtures -------------------------------------------------

    def with_jpeg_samples(self, owner: str | None = None) -> "World":
        """The quickstart's ~/Documents samples, owned by ``owner``
        (default: the world's default user)."""
        def step(kernel: "Kernel") -> Any:
            return add_jpeg_samples(kernel, owner=owner or self._default_user)

        return self._add_step("jpeg_samples", step)

    def with_grading_fixture(self, **kwargs: Any) -> "World":
        """Student submissions + test suite (see
        :func:`repro.world.add_grading_fixture` for knobs)."""
        return self._add_step("grading", lambda kernel: add_grading_fixture(kernel, **kwargs))

    def with_usr_src(self, **kwargs: Any) -> "World":
        """The scaled-down BSD source tree the Find workload greps."""
        return self._add_step("usr_src", lambda kernel: add_usr_src(kernel, **kwargs))

    def with_web_content(self, **kwargs: Any) -> "World":
        """Docroot content + access log for the Apache workload."""
        return self._add_step("web_content", lambda kernel: add_web_content(kernel, **kwargs))

    def with_emacs_mirror(self, tarball: bytes | None = None) -> "World":
        """The simulated GNU mirror the Download workload fetches from."""
        return self._add_step("emacs_mirror", lambda kernel: add_emacs_mirror(kernel, tarball))

    def with_fixture(self, name: str, **kwargs: Any) -> "World":
        """String-keyed fixture selection (the CLI's ``--fixture``).
        ``"none"`` is explicitly a no-op."""
        self._check_unbooted()
        if name == "none":
            return self
        dispatch = {
            "jpeg": self.with_jpeg_samples,
            "grading": self.with_grading_fixture,
            "usr-src": self.with_usr_src,
            "web": self.with_web_content,
            "emacs": self.with_emacs_mirror,
        }
        if name not in dispatch:
            raise ValueError(f"unknown fixture {name!r}; choices: {', '.join(FIXTURE_CHOICES)}")
        return dispatch[name](**kwargs)

    # -- ad-hoc content ----------------------------------------------------

    def with_file(self, path: str, data: bytes | str, mode: int = 0o644,
                  owner: str | None = None) -> "World":
        if isinstance(data, str):
            data = data.encode()

        def step(kernel: "Kernel") -> Any:
            uid, gid = self._owner_ids(kernel, owner)
            return WorldBuilder(kernel).write_file(path, data, mode=mode, uid=uid, gid=gid)

        return self._add_step(None, step)

    def with_dir(self, path: str, mode: int = 0o755, owner: str | None = None) -> "World":
        def step(kernel: "Kernel") -> Any:
            uid, gid = self._owner_ids(kernel, owner)
            return WorldBuilder(kernel).ensure_dir(path, mode=mode, uid=uid, gid=gid)

        return self._add_step(None, step)

    def with_symlink(self, target: str, link: str) -> "World":
        def step(kernel: "Kernel") -> None:
            kernel.syscalls(kernel.spawn_process("root", "/")).symlink(target, link)

        return self._add_step(None, step)

    def with_setup(self, fn: Callable[["Kernel"], Any], key: str | None = None) -> "World":
        """Escape hatch: run ``fn(kernel)`` during boot."""
        return self._add_step(key, fn)

    # -- boot --------------------------------------------------------------

    def boot(self) -> "World":
        """Build the kernel and apply every queued step, once."""
        if self.kernel is not None:
            return self
        kernel = build_world(install_shill=self._install_shill)
        for name in self._users:
            self._ensure_user(kernel, name)
        for key, step in self._steps:
            value = step(kernel)
            if key is not None:
                self.fixtures[key] = value
        self.kernel = kernel
        return self

    @property
    def booted(self) -> bool:
        return self.kernel is not None

    @property
    def default_user(self) -> str:
        return self._default_user

    # -- handles over the booted world -------------------------------------

    def session(
        self,
        user: str | None = None,
        cwd: str | None = None,
        scripts: "Mapping[str, str] | ScriptRegistry | None" = None,
    ) -> Session:
        self.boot()
        return Session(self.kernel, user=user or self._default_user,
                       cwd=cwd, scripts=scripts)

    def sandbox(self, policy: str, *, user: str | None = None,
                debug: bool = False, cwd: str = "/") -> Sandbox:
        self.boot()
        assert self.kernel is not None
        return Sandbox(self.kernel, policy, user=user or self._default_user,
                       debug=debug, cwd=cwd)

    def syscalls(self, user: str | None = None, cwd: str | None = None) -> "SyscallInterface":
        """An ambient (unsandboxed) syscall interface for inspecting or
        mutating the booted world — e.g. reading files a run produced.
        Defaults to the world's default user, like ``session()``.  One
        backing process per (user, cwd), reused across calls, so polling
        the world does not grow the kernel's process table."""
        self.boot()
        assert self.kernel is not None
        who = user or self._default_user
        key = (who, cwd or self.kernel.users.lookup(who).home)
        if key not in self._sys_cache:
            self._sys_cache[key] = self.kernel.syscalls(
                self.kernel.spawn_process(key[0], key[1]))
        return self._sys_cache[key]

    def read_file(self, path: str) -> bytes:
        return self.syscalls().read_whole(path)

    def write_file(self, path: str, data: bytes | str) -> None:
        if isinstance(data, str):
            data = data.encode()
        self.syscalls().write_whole(path, data)

    # -- helpers -----------------------------------------------------------

    def _add_step(self, key: str | None, step: Callable[["Kernel"], Any]) -> "World":
        self._check_unbooted()
        self._steps.append((key, step))
        return self

    def _check_unbooted(self) -> None:
        if self.kernel is not None:
            raise RuntimeError("World is already booted; configure before boot()")

    def _owner_ids(self, kernel: "Kernel", owner: str | None) -> tuple[int, int]:
        cred = kernel.users.lookup(owner or self._default_user)
        return cred.uid, cred.gid

    @staticmethod
    def _ensure_user(kernel: "Kernel", name: str) -> None:
        try:
            kernel.users.lookup(name)
            return
        except KeyError:
            pass
        for uid in itertools.count(2001):
            try:
                cred = kernel.users.add_user(name, uid, uid)
                break
            except ValueError:
                continue
        WorldBuilder(kernel).ensure_dir(cred.home, mode=0o755,
                                        uid=cred.uid, gid=cred.gid)

    def __repr__(self) -> str:
        state = "booted" if self.booted else "unbooted"
        return f"<World {state} user={self._default_user!r} steps={len(self._steps)}>"
