"""Worlds: a fluent builder over the deterministic world image.

``World()`` records configuration steps (users, workload fixtures,
extra files) and :meth:`World.boot` materialises them onto a freshly
booted kernel, in declaration order.  A booted world hands out
:class:`repro.api.Session` and :class:`repro.api.Sandbox` objects — the
only supported way to run SHILL code::

    world = World().for_user("alice").with_jpeg_samples().boot()
    result = world.session(scripts=my_registry).run_ambient(src)

Booting is cheap when repeated: every declarative configuration has a
**digest**, and :meth:`World.boot` keeps a module-level cache of booted
template kernels keyed on it.  A second boot of an identical
configuration *forks* the cached template (copy-on-write, see
:meth:`repro.kernel.kernel.Kernel.fork`) instead of rebuilding ~200
vnodes of world image.  :meth:`World.fork` exposes the same mechanism
directly, and :meth:`World.pool` hands out N forks for parallel work.
Worlds configured through the escape hatch (:meth:`World.with_setup`)
run arbitrary code and are exempt from caching — unless the step is
given a ``key``, which is folded into the digest as the caller's promise
that equal keys build equal worlds.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping

from repro.api.caching import BoundedCache
from repro.api.registry import ScriptRegistry
from repro.api.sandboxes import Sandbox
from repro.api.sessions import Session
from repro.world import (
    add_emacs_mirror,
    add_grading_fixture,
    add_jpeg_samples,
    add_usr_src,
    add_vcs_repo,
    add_web_content,
    build_world,
)
from repro.world.image import WorldBuilder

if TYPE_CHECKING:
    from repro.api.executors import Executor
    from repro.kernel.kernel import Kernel
    from repro.kernel.syscalls import SyscallInterface

#: ``--fixture`` spellings accepted by :meth:`World.with_fixture`.
FIXTURE_CHOICES = ("none", "jpeg", "grading", "usr-src", "web", "emacs", "vcs")

#: Booted template kernels keyed by config digest.  Templates are never
#: handed out directly — every boot and fork takes an isolated copy — so
#: a cached image stays pristine for the life of the process.  The cache
#: is LRU-bounded: each entry retains a whole template kernel, and a
#: process sweeping many distinct configurations must not accumulate
#: them forever (an evicted configuration just rebuilds on next boot).
_BOOT_CACHE: BoundedCache = BoundedCache(64, lru=True)


def clear_boot_cache() -> None:
    """Drop all cached world templates (tests of boot cost use this)."""
    _BOOT_CACHE.clear()


def boot_cache_size() -> int:
    """Booted template kernels currently held by the module-level
    boot-image cache (one entry per distinct world config digest)."""
    return len(_BOOT_CACHE)


def boot_cache_contains(digest: str) -> bool:
    """Whether a template for ``digest`` is already cached in-process —
    executors use this to report a warm boot as "cached" rather than
    claiming build work that never happened."""
    return _BOOT_CACHE.get(digest) is not None


def as_kernel(world: "World | Kernel") -> "Kernel":
    """Normalise a ``World | Kernel`` argument (the case studies accept
    either) to a booted kernel."""
    if isinstance(world, World):
        kernel = world.boot().kernel
        assert kernel is not None
        return kernel
    return world


class World:
    """Builder + handle for one booted world image.

    Fluent ``with_*`` / ``for_user`` calls queue build steps; ``boot()``
    runs them once and is idempotent afterwards.  Fixture helpers record
    their return values (paths, counts, blobs) under ``world.fixtures``.

    Example::

        from repro.api import World

        world = World().for_user("alice").with_file("/tmp/data.txt", "hi")
        world.boot()
        assert world.read_file("/tmp/data.txt") == b"hi"
        fork = world.fork()
        fork.write_file("/tmp/data.txt", "changed")
        assert world.read_file("/tmp/data.txt") == b"hi"   # forks are isolated
    """

    def __init__(self, *, install_shill: bool = True) -> None:
        self._install_shill = install_shill
        # (fixtures key, build step, digest descriptor); a None descriptor
        # means "arbitrary code" and makes the whole world uncacheable.
        self._steps: list[tuple[str | None, Callable[["Kernel"], Any], str | None]] = []
        self._users: list[str] = []
        self._default_user = "root"
        self.kernel: "Kernel | None" = None
        self.fixtures: dict[str, Any] = {}
        self._digest: str | None = None
        self._boot_generation = -1
        self._boot_epoch = -1

        self._sys_cache: dict[tuple[str, str], "SyscallInterface"] = {}

    # -- configuration -----------------------------------------------------

    def without_shill(self) -> "World":
        """The Figure 9 "Baseline" machine: no SHILL kernel module."""
        self._check_unbooted()
        self._install_shill = False
        return self

    def for_user(self, user: str, *, create: bool = True) -> "World":
        """Default user for sessions, sandboxes, and owner-less content.

        Unknown users are created at boot (with a home) unless
        ``create=False``, in which case a later lookup fails with
        ``KeyError`` — the CLI uses this so a typo'd ``--user`` errors
        instead of silently running as a brand-new user."""
        self._check_unbooted()
        self._default_user = user
        if create and user != "root":
            self.with_users(user)
        return self

    def with_users(self, *names: str) -> "World":
        """Ensure the named users exist (with homes); no-op for users the
        base image already creates."""
        self._check_unbooted()
        for name in names:
            if name not in self._users:
                self._users.append(name)
        return self

    # -- workload fixtures -------------------------------------------------

    def with_jpeg_samples(self, owner: str | None = None) -> "World":
        """The quickstart's ~/Documents samples, owned by ``owner``
        (default: the world's default user)."""
        def step(kernel: "Kernel") -> Any:
            return add_jpeg_samples(kernel, owner=owner or self._default_user)

        return self._add_step("jpeg_samples", step, f"jpeg:{owner!r}")

    def with_grading_fixture(self, **kwargs: Any) -> "World":
        """Student submissions + test suite (see
        :func:`repro.world.add_grading_fixture` for knobs)."""
        return self._add_step("grading", lambda kernel: add_grading_fixture(kernel, **kwargs),
                              f"grading:{sorted(kwargs.items())!r}")

    def with_usr_src(self, **kwargs: Any) -> "World":
        """The scaled-down BSD source tree the Find workload greps."""
        return self._add_step("usr_src", lambda kernel: add_usr_src(kernel, **kwargs),
                              f"usr_src:{sorted(kwargs.items())!r}")

    def with_web_content(self, **kwargs: Any) -> "World":
        """Docroot content + access log for the Apache workload."""
        return self._add_step("web_content", lambda kernel: add_web_content(kernel, **kwargs),
                              f"web:{sorted(kwargs.items())!r}")

    def with_emacs_mirror(self, tarball: bytes | None = None) -> "World":
        """The simulated GNU mirror the Download workload fetches from."""
        blob = "default" if tarball is None else hashlib.sha256(tarball).hexdigest()
        return self._add_step("emacs_mirror", lambda kernel: add_emacs_mirror(kernel, tarball),
                              f"emacs:{blob}")

    def with_vcs_repo(self, **kwargs: Any) -> "World":
        """A git-like repository (worktree + ``.vcs`` metadata) plus an
        out-of-tree secret — the vcs case study's world (see
        :func:`repro.world.add_vcs_repo` for knobs)."""
        return self._add_step("vcs_repo", lambda kernel: add_vcs_repo(kernel, **kwargs),
                              f"vcs:{sorted(kwargs.items())!r}")

    def with_fixture(self, name: str, **kwargs: Any) -> "World":
        """String-keyed fixture selection (the CLI's ``--fixture``).
        ``"none"`` is explicitly a no-op."""
        self._check_unbooted()
        if name == "none":
            return self
        dispatch = {
            "jpeg": self.with_jpeg_samples,
            "grading": self.with_grading_fixture,
            "usr-src": self.with_usr_src,
            "web": self.with_web_content,
            "emacs": self.with_emacs_mirror,
            "vcs": self.with_vcs_repo,
        }
        if name not in dispatch:
            raise ValueError(f"unknown fixture {name!r}; choices: {', '.join(FIXTURE_CHOICES)}")
        return dispatch[name](**kwargs)

    # -- ad-hoc content ----------------------------------------------------

    def with_file(self, path: str, data: bytes | str, mode: int = 0o644,
                  owner: str | None = None) -> "World":
        if isinstance(data, str):
            data = data.encode()

        def step(kernel: "Kernel") -> Any:
            uid, gid = self._owner_ids(kernel, owner)
            return WorldBuilder(kernel).write_file(path, data, mode=mode, uid=uid, gid=gid)

        digest = hashlib.sha256(data).hexdigest()
        return self._add_step(None, step, f"file:{path}:{mode}:{owner!r}:{digest}")

    def with_dir(self, path: str, mode: int = 0o755, owner: str | None = None) -> "World":
        def step(kernel: "Kernel") -> Any:
            uid, gid = self._owner_ids(kernel, owner)
            return WorldBuilder(kernel).ensure_dir(path, mode=mode, uid=uid, gid=gid)

        return self._add_step(None, step, f"dir:{path}:{mode}:{owner!r}")

    def with_symlink(self, target: str, link: str) -> "World":
        def step(kernel: "Kernel") -> None:
            kernel.syscalls(kernel.spawn_process("root", "/")).symlink(target, link)

        return self._add_step(None, step, f"symlink:{target}:{link}")

    def with_policy_rules(self, rules: Any, *, default: str = "defer",
                          name: str | None = None) -> "World":
        """Install a declarative :class:`repro.policy.RuleEngine` as the
        booted kernel's policy engine.

        ``rules`` is a rule list / policy spec dict (see
        :mod:`repro.policy.rules`), JSON text, or an already-built
        :class:`~repro.policy.RuleEngine`.  Because rule engines are pure
        data with a stable digest, the configuration stays digestible —
        the world keeps its boot cache, result cache, and snapshot-store
        eligibility, and two worlds differing only in rules get
        *different* digests (which is what keeps per-tenant result
        caches from crossing policy boundaries).
        """
        from repro.policy.rules import RuleEngine

        if isinstance(rules, RuleEngine):
            engine = rules
        elif isinstance(rules, str):
            engine = RuleEngine.from_json(rules)
        elif isinstance(rules, dict):
            engine = RuleEngine.from_spec(rules)
        else:
            engine = RuleEngine(rules, default=default, name=name)

        def step(kernel: "Kernel") -> None:
            kernel.policy_engine = engine

        return self._add_step(None, step, f"policy-rules:{engine.digest()}")

    def with_policy_engine(self, engine: Any, *, key: str | None = None) -> "World":
        """Install an arbitrary :class:`repro.policy.PolicyEngine` as the
        booted kernel's policy engine.

        Like :meth:`with_setup`, arbitrary code has no digest: unless the
        engine reports one (``engine.digest()``) or you supply ``key``
        (the same equal-keys-mean-equal-worlds promise), the world
        becomes uncacheable — which is exactly right for a stateful
        test double like :class:`~repro.policy.FakePolicyEngine`.
        """

        def step(kernel: "Kernel") -> None:
            kernel.policy_engine = engine

        stamp = key or engine.digest()
        descriptor = None if stamp is None else f"policy-engine:{stamp}"
        return self._add_step(None, step, descriptor)

    def with_setup(self, fn: Callable[["Kernel"], Any], key: str | None = None) -> "World":
        """Escape hatch: run ``fn(kernel)`` during boot.

        Arbitrary code has no digest, so keyless setup worlds are never
        cached.  Supplying ``key`` does two things: ``fn``'s return value
        lands under ``world.fixtures[key]``, and the key is **folded into
        the world digest**, restoring boot-cache / result-cache /
        snapshot-store eligibility.  The key is thereby a promise —
        *equal keys build equal worlds* — exactly like a cache key; two
        different setup functions under one key would wrongly share
        cached images and results.  Fixture values should be plain data:
        a value that refuses deep-copy keeps the boot private (uncached),
        and one that refuses pickling is simply absent from process
        workers and snapshot-store links.
        """
        return self._add_step(key, fn, None if key is None else f"setup:{key}")

    # -- boot --------------------------------------------------------------

    def boot(self) -> "World":
        """Materialise the configuration onto a kernel, once.

        Cacheable configurations (every step carries a digest descriptor)
        go through the module-level boot-image cache: the first boot
        builds a template and every boot — including the first — receives
        an isolated copy-on-write fork of it, so no caller can pollute
        the cached image.  Undigestible configurations build a private
        kernel the old way.
        """
        if self.kernel is not None:
            return self
        digest = self.digest
        if digest is None:
            self.kernel = self._build()
        else:
            cached = _BOOT_CACHE.get(digest)
            built = None
            if cached is None:
                built = self._build()
                try:
                    fixtures_copy = copy.deepcopy(self.fixtures)
                except Exception:
                    # A keyed with_setup step may record a fixture value
                    # that refuses deep-copy (a lock, an open handle).
                    # Such a value cannot be shared safely through the
                    # template cache — keep this build private instead
                    # of crashing (the digest, and with it the result
                    # cache, still holds).
                    self.kernel = built
                    self._digest = digest
                    self._boot_generation = built.vfs.generation
                    self._boot_epoch = built.state_epoch
                    return self
                cached = _BOOT_CACHE.put(digest, (built, fixtures_copy))
            template, fixtures = cached
            # Fixture values are plain data (paths, counts, blobs) but
            # may be mutable containers — deep-copy so no caller can
            # pollute the cached template's record.  When our own build
            # just won the insert, self.fixtures is already a private
            # copy distinct from the cached one.
            if template is not built:
                self.fixtures = copy.deepcopy(fixtures)
            self.kernel = template.fork()
        self._digest = digest
        self._boot_generation = self.kernel.vfs.generation
        self._boot_epoch = self.kernel.state_epoch
        return self

    def _build(self) -> "Kernel":
        kernel = build_world(install_shill=self._install_shill)
        for name in self._users:
            self._ensure_user(kernel, name)
        for key, step, _descriptor in self._steps:
            value = step(kernel)
            if key is not None:
                self.fixtures[key] = value
        return kernel

    @property
    def booted(self) -> bool:
        return self.kernel is not None

    @property
    def digest(self) -> str | None:
        """A stable hash of the declarative configuration, or ``None``
        when a key-less :meth:`with_setup` step makes it undigestible.  Equal
        digests mean "boots to an identical world" — the key for both
        the boot-image cache and the batch runner's result cache.
        Configuration freezes at boot, so the value is computed once
        then (recomputed on demand only while still configurable)."""
        if self.kernel is not None:
            return self._digest
        descriptors = [d for _key, _step, d in self._steps]
        if any(d is None for d in descriptors):
            return None
        payload = repr((self._install_shill, self._default_user,
                        tuple(self._users), tuple(descriptors)))
        return hashlib.sha256(payload.encode()).hexdigest()

    @property
    def pristine(self) -> bool:
        """True while the booted world is byte-identical to what its
        digest describes — no filesystem mutation (``vfs.generation``)
        and no kernel configuration change (``state_epoch``: users,
        sysctl, kenv, IPC, network services, MAC policy set, device
        interposition) since boot.  The precondition for serving cached
        :class:`RunResult`s."""
        return (self.kernel is not None and self.digest is not None
                and self.kernel.vfs.generation == self._boot_generation
                and self.kernel.state_epoch == self._boot_epoch)

    @property
    def default_user(self) -> str:
        return self._default_user

    # -- forking -----------------------------------------------------------

    def fork(self) -> "World":
        """An isolated, booted copy of this world in O(changed-state).

        The clone sees everything this world's kernel holds right now —
        including post-boot mutations — but writes on either side never
        cross over (file buffers are copy-on-write).  Cheap enough to
        take one per job: the batch runner does exactly that.
        """
        self.boot()
        assert self.kernel is not None
        child = World(install_shill=self._install_shill)
        child._users = list(self._users)
        child._default_user = self._default_user
        child._steps = list(self._steps)
        child.kernel = self.kernel.fork()
        child.fixtures = copy.deepcopy(self.fixtures)
        child._digest = self._digest
        # generation and epoch carry over in the kernel fork, so the
        # child's pristine flag tracks the parent's state at fork time.
        child._boot_generation = self._boot_generation
        child._boot_epoch = self._boot_epoch
        return child

    def adopt_template(self, kernel: "Kernel", fixtures: "dict | None" = None) -> "World":
        """Install an externally materialised template — a machine
        restored from a :class:`repro.kernel.store.SnapshotStore` — as
        this configuration's boot image.

        The kernel enters the module boot cache under the world digest
        and this world receives a copy-on-write fork, exactly as if
        :meth:`boot` had built it; the build steps never run (that is
        the point: a store hit performs zero world-build kernel ops).
        Only digestible, unbooted worlds can adopt — the digest is the
        claim that ``kernel`` is what the steps would have built.
        """
        self._check_unbooted()
        digest = self.digest
        if digest is None:
            raise ValueError("only digestible worlds can adopt a template "
                             "(the digest is what names the snapshot)")
        cached = _BOOT_CACHE.put(digest, (kernel, copy.deepcopy(dict(fixtures or {}))))
        template, cached_fixtures = cached
        self.fixtures = copy.deepcopy(cached_fixtures)
        self.kernel = template.fork()
        self._digest = digest
        self._boot_generation = self.kernel.vfs.generation
        self._boot_epoch = self.kernel.state_epoch
        return self

    @classmethod
    def _from_kernel(cls, kernel: "Kernel", *, default_user: str,
                     fixtures: dict, install_shill: bool) -> "World":
        """A booted World over an already-materialised kernel (a restored
        snapshot) — the single place worker processes rebuild a World, so
        every construction invariant stays owned by this class.  Such
        worlds have no build steps or digest: they are deliberately
        uncacheable (their provenance is the snapshot, not a recipe)."""
        world = cls(install_shill=install_shill)
        world._default_user = default_user
        world.kernel = kernel
        world.fixtures = fixtures
        world._boot_generation = kernel.vfs.generation
        world._boot_epoch = kernel.state_epoch
        return world

    def pool(self, workers: int = 4, backend: str = "thread",
             executor: "Executor | None" = None) -> "WorldPool":
        """``workers`` independent forks of this world, for long-lived
        parallel sessions (the batch runner forks per job instead).

        ``backend`` picks where :meth:`WorldPool.map` runs its workers:
        ``"sequential"``, ``"thread"`` (default), ``"process"``, or
        ``"store"`` — the last two ship a kernel snapshot to worker
        processes, so the mapped function must be a picklable
        (module-level) callable and its return value must pickle too.
        ``executor`` supplies an :class:`repro.api.executors.Executor`
        instance instead of a backend string (the caller keeps ownership
        and closes it).
        """
        return WorldPool(self, workers, backend=backend, executor=executor)

    # -- handles over the booted world -------------------------------------

    def session(
        self,
        user: str | None = None,
        cwd: str | None = None,
        scripts: "Mapping[str, str] | ScriptRegistry | None" = None,
        engine: Any = None,
    ) -> Session:
        self.boot()
        return Session(self.kernel, user=user or self._default_user,
                       cwd=cwd, scripts=scripts, engine=engine)

    def sandbox(self, policy: str, *, user: str | None = None,
                debug: bool = False, cwd: str = "/",
                engine: Any = None) -> Sandbox:
        self.boot()
        assert self.kernel is not None
        return Sandbox(self.kernel, policy, user=user or self._default_user,
                       debug=debug, cwd=cwd, engine=engine)

    def syscalls(self, user: str | None = None, cwd: str | None = None) -> "SyscallInterface":
        """An ambient (unsandboxed) syscall interface for inspecting or
        mutating the booted world — e.g. reading files a run produced.
        Defaults to the world's default user, like ``session()``.  One
        backing process per (user, cwd), reused across calls, so polling
        the world does not grow the kernel's process table."""
        self.boot()
        assert self.kernel is not None
        who = user or self._default_user
        key = (who, cwd or self.kernel.users.lookup(who).home)
        if key not in self._sys_cache:
            self._sys_cache[key] = self.kernel.syscalls(
                self.kernel.spawn_process(key[0], key[1]))
        return self._sys_cache[key]

    def read_file(self, path: str) -> bytes:
        return self.syscalls().read_whole(path)

    def write_file(self, path: str, data: bytes | str) -> None:
        if isinstance(data, str):
            data = data.encode()
        self.syscalls().write_whole(path, data)

    def patch_file(self, path: str, data: bytes | str, mode: int = 0o644,
                   owner: str | None = None) -> None:
        """Mutate the booted world as an administrative patch — no process.

        :meth:`write_file` goes through a syscall interface, which spawns
        a backing process on first use; that advances the kernel's pid
        watermark, and watermark drift is an observable the dependency
        analyzer (:mod:`repro.analysis.deps`) must treat as invalidating
        *everything*.  ``patch_file`` writes through the world builder
        instead: the only state it moves is ``vfs.generation`` plus the
        touched vnodes, so the world delta against the boot template is
        exactly ``{path}`` — and cached results whose footprints are
        disjoint from it survive (:func:`repro.analysis.may_depend`
        returns VALID)."""
        if isinstance(data, str):
            data = data.encode()
        self.boot()
        assert self.kernel is not None
        uid, gid = self._owner_ids(self.kernel, owner)
        WorldBuilder(self.kernel).write_file(path, data, mode=mode, uid=uid, gid=gid)

    # -- helpers -----------------------------------------------------------

    def _add_step(self, key: str | None, step: Callable[["Kernel"], Any],
                  descriptor: str | None) -> "World":
        self._check_unbooted()
        self._steps.append((key, step, descriptor))
        return self

    def _check_unbooted(self) -> None:
        if self.kernel is not None:
            raise RuntimeError("World is already booted; configure before boot()")

    def _owner_ids(self, kernel: "Kernel", owner: str | None) -> tuple[int, int]:
        cred = kernel.users.lookup(owner or self._default_user)
        return cred.uid, cred.gid

    @staticmethod
    def _ensure_user(kernel: "Kernel", name: str) -> None:
        try:
            kernel.users.lookup(name)
            return
        except KeyError:
            pass
        for uid in itertools.count(2001):
            try:
                cred = kernel.users.add_user(name, uid, uid)
                break
            except ValueError:
                continue
        WorldBuilder(kernel).ensure_dir(cred.home, mode=0o755,
                                        uid=cred.uid, gid=cred.gid)

    def __repr__(self) -> str:
        state = "booted" if self.booted else "unbooted"
        return f"<World {state} user={self._default_user!r} steps={len(self._steps)}>"


class WorldPool:
    """``workers`` forked worlds over one base image.

    Each worker world has its own kernel, so sessions on different
    workers can run in parallel without sharing any mutable state.
    :meth:`map` is the convenience driver; index or iterate the pool to
    own the scheduling yourself.  The ``backend``/``executor`` chosen at
    construction is where ``map`` runs; process-family executors
    snapshot the base kernel to worker processes, so mapped functions
    (and their results) must pickle.
    """

    def __init__(self, base: World, workers: int = 4,
                 backend: str = "thread",
                 executor: "Executor | None" = None) -> None:
        from repro.api.executors import EXECUTOR_CHOICES

        if workers < 1:
            raise ValueError("a pool needs at least one worker")
        if executor is not None:
            backend = executor.name
        elif backend not in EXECUTOR_CHOICES:
            raise ValueError(
                f"unknown backend {backend!r}; choices: {', '.join(EXECUTOR_CHOICES)}")
        base.boot()
        self.base = base
        self.backend = backend
        self.executor = executor
        self._workers = workers
        # Legacy in-process pools (sequential/thread *strings*) fork
        # their persistent worker worlds *now* (so later base mutations
        # never leak into workers — the pool snapshots at construction).
        # Executor-backed pools — any instance, or the process/store
        # strings — defer: map() forks per call (inside worker processes
        # for the process family) and would never touch these.
        self._worlds: list[World] | None = (
            None if executor is not None or backend in ("process", "store")
            else [base.fork() for _ in range(workers)])

    @property
    def worlds(self) -> list[World]:
        """The pool's persistent in-process worker worlds.

        For process-family pools these are forked lazily on first
        access (indexing/iterating one still works), and therefore see
        the base world *as of that first access*, not as of ``pool()``
        — process maps don't use them, so an access is an explicit
        opt-in to in-process worlds."""
        if self._worlds is None:
            self._worlds = [self.base.fork() for _ in range(self._workers)]
        return self._worlds

    def __len__(self) -> int:
        return self._workers

    def __iter__(self) -> Iterator[World]:
        return iter(self.worlds)

    def __getitem__(self, index: int) -> World:
        return self.worlds[index]

    def map(self, fn: Callable[[World], Any], *, parallel: bool | None = None,
            backend: str | None = None,
            executor: "Executor | None" = None) -> list[Any]:
        """Run ``fn(world)`` once per worker; results in worker order.

        ``backend``/``executor`` override the pool's default for this
        call; ``parallel`` is the pre-backend boolean spelling
        (``False`` → sequential, ``True`` → the pool's parallel
        backend) and is kept for compatibility.

        Statefulness differs by path: the legacy ``"sequential"`` /
        ``"thread"`` *strings* run against the pool's persistent worker
        worlds, so writes made by one ``map`` call are visible to the
        next; every :class:`~repro.api.executors.Executor` *instance*
        (and the ``"process"``/``"store"`` strings) follows the executor
        protocol instead — each call runs on a fresh fork and keeps
        nothing, failures surface as
        :class:`repro.api.BatchExecutionError`, and anything a mapped
        function wants to keep must be in its return value.  Use
        :class:`repro.api.Batch` for a per-job-fork contract identical
        on every executor.
        """
        if executor is not None and (backend is not None or parallel is not None):
            raise ValueError("pass either executor= or the legacy "
                             "backend=/parallel= spelling, not both")
        if executor is None:
            if backend is None:
                backend = self.backend
                executor = self.executor
                if parallel is False:
                    backend, executor = "sequential", None
        else:
            backend = executor.name
        if executor is None and backend == "sequential":
            return [fn(world) for world in self.worlds]
        if executor is None and backend == "thread":
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=len(self.worlds)) as pool:
                return list(pool.map(fn, self.worlds))
        return self._map_executor(fn, backend, executor)

    def _map_executor(self, fn: Callable[[World], Any], backend: str,
                      executor: "Executor | None") -> list[Any]:
        """Fan ``fn`` out as callable jobs on an executor — the
        process-family path (workers restore a snapshot and fork per
        call).  String-resolved executors are owned by this call and
        closed; supplied instances stay open for the caller."""
        from repro.api.executors import ExecutorJob, JobTemplate, create_executor

        owned = executor is None
        chosen = executor if executor is not None else \
            create_executor(backend, workers=self._workers)
        try:
            chosen.bind(JobTemplate.for_world(self.base))
            return chosen.map([
                ExecutorJob(index=index, name=f"map{index}", fn=fn)
                for index in range(self._workers)
            ])
        finally:
            if owned:
                chosen.close()

    def __repr__(self) -> str:
        return (f"<WorldPool workers={self._workers} "
                f"backend={self.backend!r} base={self.base!r}>")
