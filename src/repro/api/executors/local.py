"""In-process executors: the caller's thread, or a thread pool.

Both run :func:`repro.api.executors.base.run_job` against per-job forks
of the bound template kernel — exactly what the worker processes of the
process/store executors do, just without the serialization round-trip.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor

from repro.api.executors.base import (
    Executor,
    ExecutorJob,
    JobHandle,
    JobTemplate,
    register_executor,
    run_job,
)


class SequentialExecutor(Executor):
    """Jobs run on the caller's thread, at :meth:`submit` time.

    The reference strategy: submission order *is* completion order, and
    every other executor's fingerprints are gated against it.  Eager
    execution keeps ``submit → as_completed`` fully deterministic —
    a handle is already resolved when it is returned.

    Example::

        from repro.api import Batch, SequentialExecutor, World

        world = World().for_user("alice").with_jpeg_samples()
        with SequentialExecutor() as ex:
            [result] = Batch(world, cache=False).add(
                '#lang shill/ambient\\nappend(stdout, "hi\\\\n");\\n'
            ).run(executor=ex)
        assert result.stdout == "hi\\n"
    """

    name = "sequential"

    def _submit(self, template: JobTemplate, job: ExecutorJob) -> JobHandle:
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(run_job(template, job))
        except BaseException as err:  # surfaced by JobHandle.result()
            future.set_exception(err)
        return JobHandle(job, future)


class ThreadExecutor(Executor):
    """Jobs run on a thread pool over forks of the shared template.

    Concurrency without process-spawn cost; the GIL serialises the
    interpreter work, so this buys overlap, not cores.  The pool is
    created lazily on first submit and survives rebinds (threads hold no
    per-template state — every job forks the currently bound kernel).

    Example (scheduling cannot change the bytes)::

        from repro.api import Batch, ThreadExecutor, World

        src = '#lang shill/ambient\\nappend(stdout, "hi\\\\n");\\n'
        world = World().for_user("alice").with_jpeg_samples()
        with ThreadExecutor(workers=2) as ex:
            batch = Batch(world, cache=False)
            for i in range(4):
                batch.add(src, name=f"job{i}")
            results = batch.run(executor=ex)
        assert len({r.fingerprint() for r in results}) == 1
    """

    name = "thread"

    def __init__(self, workers: "int | None" = None) -> None:
        super().__init__(workers)
        self._pool: ThreadPoolExecutor | None = None

    def _submit(self, template: JobTemplate, job: ExecutorJob) -> JobHandle:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return JobHandle(job, self._pool.submit(run_job, template, job))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


register_executor("sequential", lambda workers=None, **_: SequentialExecutor(workers=workers))
register_executor("thread", lambda workers=None, **_: ThreadExecutor(workers=workers))
