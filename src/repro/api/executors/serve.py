"""The serve executor: jobs through a long-lived ``repro serve`` gateway.

Where :class:`~repro.api.executors.remote.RemoteExecutor` manages its
own fleet — it dials every agent, prepares each one, shards jobs across
them — :class:`ServeExecutor` talks to exactly one address: a
:mod:`repro.serve` gateway that looks, on the wire, like a single very
large v2 agent.  The gateway owns the fleet (agents announce
themselves, rejoin after restarts, get scored by the gateway's
scheduling policy) and the admission story (per-user rate limits,
bounded queues, BUSY/RETRY-AFTER backpressure); the client just
multiplexes channel-tagged SUBMITs, honours BUSY by waiting, and
re-dials if the gateway itself restarts.

Because the gateway relays PREPARE/NEED/BLOB and SUBMIT/RESULT frames
to agents that run :func:`repro.api.executors.base.run_job` — the same
single execution path as every other executor — serve-executor
fingerprints are byte-identical to sequential ones, and the existing
cross-executor equivalence gate extends to the gateway unchanged
(``benchmarks/test_batch_backends.py``).
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.api.executors.base import register_executor
from repro.api.executors.remote import RemoteExecutor
from repro.kernel.store import SnapshotStore
from repro.remote.hostpool import HostSpec

if TYPE_CHECKING:
    pass


class ServeExecutor(RemoteExecutor):
    """Jobs run through one ``repro serve`` gateway.

    ``gateway`` is the gateway's ``"host:port"`` address (or a
    :class:`~repro.remote.hostpool.HostSpec`).  ``concurrency`` is how
    many jobs this client keeps in flight at the gateway at once
    (channel-multiplexed on one connection; the gateway's admission
    control is the real arbiter — a BUSY response makes the client wait
    the suggested interval).  ``store`` roots the client's local
    snapshot store; the template ships to the gateway once and from
    there to agents that miss.  ``user`` attributes requests for the
    gateway's per-user rate limits.

    Example (gateway + one agent, all on this machine)::

        import tempfile
        from repro.api import Batch, ServeExecutor, World
        from repro.serve import spawn_local_gateway
        from repro.remote.agent import spawn_local_agent

        tmp = tempfile.mkdtemp()
        gateway_proc, gateway = spawn_local_gateway(f"{tmp}/gw")
        agent_proc, _addr = spawn_local_agent(f"{tmp}/a1", announce=gateway)
        try:
            world = World().for_user("alice").with_jpeg_samples()
            with ServeExecutor(gateway, store=f"{tmp}/client") as ex:
                results = Batch(world, cache=False).add(
                    '#lang shill/ambient\\ndocs = open_dir("~/Documents");\\n'
                ).run(executor=ex)
            assert results[0].ok
        finally:
            agent_proc.kill()
            gateway_proc.kill()
    """

    name = "serve"

    def __init__(self, gateway: "HostSpec | str | tuple[str, int]",
                 store: "SnapshotStore | Path | str | None" = None,
                 workers: "int | None" = None,
                 concurrency: int = 4,
                 user: "str | None" = None) -> None:
        self.gateway = HostSpec.parse(gateway)
        self.user = user
        super().__init__([self.gateway], store=store, workers=workers,
                         concurrency=concurrency)

    def _encode(self, job, wire_key):  # type: ignore[override]
        fields, blob = super()._encode(job, wire_key)
        if self.user is not None:
            # Attribution for the gateway's per-user rate limits; the
            # job's *execution* user is fields["user"], untouched.
            fields["requester"] = self.user
        return fields, blob

    def __repr__(self) -> str:
        return (f"<ServeExecutor gateway={self.gateway} "
                f"store={self.store.root} concurrency={self.concurrency}>")


def _make_serve(gateway=None, store=None, workers=None, concurrency=4,
                user=None, **_):
    if not gateway:
        raise ValueError("the serve executor needs gateway= (the HOST:PORT "
                         "of a `python -m repro serve` gateway)")
    return ServeExecutor(gateway, store=store, workers=workers,
                         concurrency=concurrency, user=user)


register_executor("serve", _make_serve)
