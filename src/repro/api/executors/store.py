"""The store executor: worker fleets that boot from disk.

A :class:`ProcessExecutor` re-pickles the booted template for every
fresh pool and ships the whole payload through ``initargs``.  The
:class:`StoreExecutor` puts the snapshot in a persistent, content-
addressed :class:`repro.kernel.store.SnapshotStore` instead:

* workers receive ``(store_root, snapshot_digest)`` and read the blob
  from disk in their initializer — no machine bytes cross the process-
  spawn channel, and a fleet of N workers reads one shared file;
* the world digest is **linked** to its snapshot, so a later run — in a
  *different process*, on a different day, from a restored CI cache —
  resolves the link and restores the template straight from disk:
  :meth:`StoreBootMixin.prepare` then performs **zero template-build
  kernel ops** (gated by ``benchmarks/test_snapshot_store.py``);
* the restored template is seeded into the in-process boot cache, so
  everything downstream (forks per job, result-cache keys, pristine
  checks) behaves exactly as if the world had been built.

The store-boot behaviour lives in :class:`StoreBootMixin` because two
executors share it: this one (store → local worker processes) and the
:class:`~repro.api.executors.remote.RemoteExecutor` (store → the wire →
agent hosts, each with a store of its own).  The store is the wire
format on disk, and ``prepare → bind → submit`` is the boot protocol a
remote host follows.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.api.executors.base import (
    BootInfo,
    JobTemplate,
    portable_fixtures,
    register_executor,
)
from repro.api.executors.process import ProcessExecutor, _store_worker_init
from repro.kernel.store import SnapshotStore

if TYPE_CHECKING:
    from repro.api.worlds import World


class StoreBootMixin:
    """Store-backed ``prepare()`` + snapshot bookkeeping, shared by the
    executors whose boot path goes through a persistent
    :class:`SnapshotStore` (local worker fleets and remote agents).

    Mixed in *before* the concrete :class:`~repro.api.executors.base.
    Executor` base so :meth:`prepare` overrides the plain build path;
    ``super().prepare(world)`` reaches the base strategy when the store
    cannot help.  Concrete classes call :meth:`_init_store` from their
    constructor.
    """

    store: SnapshotStore
    boot_info: BootInfo

    def _init_store(self, store: "SnapshotStore | Path | str | None") -> None:
        self.store = store if isinstance(store, SnapshotStore) else SnapshotStore(store)
        self.boot_info = BootInfo(source="unprepared")
        #: template token -> blob digest, so one executor never snapshots
        #: the same machine state twice.
        self._snapshots: dict[tuple, str] = {}
        #: Digest of the last *pristine* full blob this executor stored
        #: or booted from — the base that mutated-template snapshots are
        #: delta-encoded against.
        self._delta_base: "str | None" = None

    # -- coordinator-side boot ---------------------------------------------

    def prepare(self, world: "World") -> BootInfo:
        """Boot ``world``, from the store when its digest is linked.

        On a hit the linked blob is restored, adopted as the world's
        template (and seeded into the in-process boot cache), and the
        reported ``build_ops`` delta — current kernel op counters minus
        the counters recorded when the link was written — is zero unless
        the restore path executed kernel work it should not have.  On a
        miss the world boots normally and the blob + link are written so
        the *next* process hits.
        """
        if world.booted:
            self.boot_info = BootInfo(source="booted")
            return self.boot_info
        from repro.api.worlds import boot_cache_contains

        digest = world.digest
        if digest is not None and boot_cache_contains(digest):
            # A warm in-process template beats a disk restore — but the
            # store must still end up linked, or a fully cache-served
            # run would leave nothing for the next process to boot from.
            info = super().prepare(world)
            if self._resolve_current(digest) is None:
                info.snapshot = self._snapshot_into_store(
                    JobTemplate.for_world(world))
            self.boot_info = info
            return info
        resolved = self._resolve_current(digest) if digest is not None else None
        if resolved is not None:
            from repro.kernel.serialize import SnapshotError

            snapshot_digest, meta = resolved
            try:
                info = self._boot_from_store(world, snapshot_digest, meta)
            except SnapshotError:
                # A stale blob (codec version bump, torn write survived a
                # crash) is a cache miss, never an error: rebuild and
                # re-link over the bad entry.
                resolved = None
        if resolved is None:
            info = super().prepare(world)  # the plain build path
            if digest is not None:
                # Write blob + link now, not at first submit: even a
                # fully cache-served batch leaves the store warm for the
                # next process.
                info.snapshot = self._snapshot_into_store(
                    JobTemplate.for_world(world))
        self.boot_info = info
        return info

    def _resolve_current(self, digest: str) -> "tuple[str, dict] | None":
        """The store's link for ``digest``, if written by the *current*
        world-build code: the config digest cannot see code changes, so
        the version stamp must — stale links are misses, rebuilt and
        re-linked over."""
        from repro.world import WORLD_IMAGE_VERSION

        resolved = self.store.resolve_world(digest)
        if resolved is not None and \
                resolved[1].get("world_version") != WORLD_IMAGE_VERSION:
            return None
        return resolved

    def _boot_from_store(self, world: "World", snapshot_digest: str,
                         meta: dict) -> BootInfo:
        from repro.kernel.kernel import KernelStats

        kernel = self.store.restore(snapshot_digest)
        world.adopt_template(kernel, meta.get("fixtures", {}))
        assert world.kernel is not None
        # The codec preserves op counters, so the restored machine must
        # show exactly the counters recorded at link time: any surplus
        # is kernel work the "boot from disk" path performed (and the
        # store-hit benchmark gate fails on it).
        build_ops = KernelStats.delta(meta.get("stats", {}),
                                      world.kernel.stats.snapshot())
        # Downstream consumers (workers, agents) can boot from the very
        # blob we restored — no re-pickle.
        self._snapshots[JobTemplate.token_for(world)] = snapshot_digest
        self._delta_base = snapshot_digest
        return BootInfo(source="store", snapshot=snapshot_digest,
                        build_ops=build_ops)

    def _encode_snapshot(self, template: JobTemplate) -> bytes:
        """The template as blob bytes: a delta against the last pristine
        full blob when the template has mutated away from one, a full
        frame otherwise (and as the fallback whenever delta encoding
        cannot apply)."""
        from repro.kernel.serialize import (
            SnapshotError,
            snapshot_kernel,
            snapshot_kernel_delta,
        )

        base_digest = self._delta_base
        if (template.digest is None and base_digest is not None
                and self.store.has(base_digest)):
            try:
                base = self.store.restore(base_digest)
                return snapshot_kernel_delta(template.kernel, base, base_digest)
            except SnapshotError:
                pass  # evicted/stale base: fall back to a full frame
        return snapshot_kernel(template.kernel)

    def _snapshot_into_store(self, template: JobTemplate) -> str:
        """Ensure the template's snapshot is a store blob; link its world
        digest so future processes boot from disk.  Pristine templates
        store full frames (they are link targets and delta bases);
        mutated ones store ~KB deltas against the pristine blob."""
        snapshot_digest = self._snapshots.get(template.token)
        if snapshot_digest is None:
            snapshot_digest = self.store.put(self._encode_snapshot(template))
            self._snapshots[template.token] = snapshot_digest
        if template.digest is not None:
            self._delta_base = snapshot_digest
            # template.digest is only set while the world is pristine
            # (JobTemplate.for_world): a mutated machine must never be
            # linked as "what this configuration boots to".
            from repro.world import WORLD_IMAGE_VERSION

            self.store.link_world(template.digest, snapshot_digest, meta={
                "fixtures": portable_fixtures(template.fixtures),
                "default_user": template.default_user,
                "install_shill": template.install_shill,
                "stats": dict(template.kernel.stats.snapshot()),
                "world_version": WORLD_IMAGE_VERSION,
            })
        return snapshot_digest


class StoreExecutor(StoreBootMixin, ProcessExecutor):
    """A process executor whose workers boot from a persistent store.

    ``store`` is a :class:`SnapshotStore`, a directory path, or ``None``
    (the default store root: ``$REPRO_STORE`` or the user cache dir).
    ``boot_info`` records how the last :meth:`~StoreBootMixin.prepare`
    obtained its template — ``"store"`` boots report an all-zero
    ``build_ops`` delta.

    Example::

        from repro.api import Batch, StoreExecutor, World

        world = World().for_user("alice").with_jpeg_samples()
        with StoreExecutor(store="/tmp/snapstore", workers=2) as ex:
            results = Batch(world).add(
                '#lang shill/ambient\\ndocs = open_dir("~/Documents");\\n'
            ).run(executor=ex)
        assert results[0].ok
    """

    name = "store"

    def __init__(self, store: "SnapshotStore | Path | str | None" = None,
                 workers: "int | None" = None) -> None:
        super().__init__(workers)
        self._init_store(store)

    # -- worker-side boot --------------------------------------------------

    def _worker_boot(self, template: JobTemplate) -> tuple:
        snapshot_digest = self._snapshot_into_store(template)
        return (_store_worker_init,
                (str(self.store.root), snapshot_digest, template.scripts,
                 template.default_user, portable_fixtures(template.fixtures),
                 template.install_shill))

    def __repr__(self) -> str:
        return f"<StoreExecutor workers={self.workers} store={self.store.root}>"


register_executor("store", lambda workers=None, store=None, **_:
                  StoreExecutor(store=store, workers=workers))
