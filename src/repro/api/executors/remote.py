"""The remote executor: jobs sharded across agent hosts.

The multi-host member of the executor family.  Where
:class:`~repro.api.executors.process.ProcessExecutor` fans out to local
worker processes, :class:`RemoteExecutor` fans out to N **agent
processes** (``python -m repro agent``) over the wire protocol in
:mod:`repro.remote.wire` — each agent a host with its own
:class:`~repro.kernel.store.SnapshotStore`, restoring the bound
template from disk when it already has the blob and pulling it over the
wire exactly once when it does not.  The snapshot store is the wire
format; ``prepare → bind → submit`` is the boot sequence; the agents
run :func:`repro.api.executors.base.run_job`, the same single execution
path as every local executor — which is why remote fingerprints are
byte-identical to sequential ones (gated across all four case-study
worlds in ``benchmarks/test_batch_backends.py``).

Scheduling is delegated to a :class:`repro.remote.hostpool.HostPool`
scored by a :class:`repro.api.scheduling.SchedulingPolicy` object
(legacy policy strings still resolve, with a ``DeprecationWarning``).
Host death is survived, not hidden: a wire failure marks the host dead
(a health strike), the in-flight job retries on the survivors with the
dead host excluded, and before declaring "no live hosts" the executor
re-dials the dead ones — a restarted agent rejoins right there.  An
agent that says a clean GOODBYE (SIGTERM drain) is *retired* instead:
no strike, no panic, jobs simply route elsewhere.  Agent-*reported*
failures (an engine bug inside a job) are never retried: they are
deterministic, and re-running them elsewhere would produce the same
error with worse attribution.
"""

from __future__ import annotations

import pickle
import threading
import time
import traceback as _traceback
from concurrent.futures import Future, ThreadPoolExecutor
from pathlib import Path
from typing import Any, Iterable

from repro.api.executors.base import (
    BatchExecutionError,
    BootInfo,
    Executor,
    ExecutorJob,
    JobHandle,
    JobTemplate,
    portable_fixtures,
    register_executor,
)
from repro.api.executors.store import StoreBootMixin
from repro.api.scheduling import SchedulingPolicy
from repro.kernel.store import SnapshotStore
from repro.remote.hostpool import HostPool, HostSpec, HostState
from repro.remote.wire import WireError, template_key


class RemoteExecutor(StoreBootMixin, Executor):
    """Jobs run on a pool of agent hosts, sharded per policy.

    ``hosts`` is any iterable of ``"host:port"`` strings, ``(host,
    port)`` tuples, or :class:`~repro.remote.hostpool.HostSpec`\\ s —
    one per agent.  ``store`` roots the *coordinator's* local snapshot
    store (the template is snapshotted into it once; agents that miss
    fetch the blob over the wire and keep it in their own stores).
    ``policy`` is a :class:`~repro.api.scheduling.SchedulingPolicy`
    object (default :class:`~repro.api.scheduling.RoundRobin`; legacy
    strings resolve with a ``DeprecationWarning``).  ``concurrency`` is
    how many jobs to run *per agent* at once — v2 agents multiplex
    channel-tagged jobs on one connection; against a v1 agent the link
    itself serialises, so the flag degrades gracefully.  ``workers``
    caps coordinator-side dispatch threads and defaults to ``hosts ×
    concurrency``.

    Example (a two-host "cluster" on one machine)::

        import tempfile
        from repro.api import Batch, RemoteExecutor, World
        from repro.remote.agent import spawn_local_agent

        tmp = tempfile.mkdtemp()
        agents = [spawn_local_agent(f"{tmp}/agent{i}") for i in range(2)]
        try:
            world = World().for_user("alice").with_jpeg_samples()
            with RemoteExecutor([addr for _proc, addr in agents],
                                store=f"{tmp}/coordinator") as ex:
                results = Batch(world, cache=False).add(
                    '#lang shill/ambient\\ndocs = open_dir("~/Documents");\\n'
                ).run(executor=ex)
            assert results[0].ok
        finally:
            for proc, _addr in agents:
                proc.kill()
    """

    name = "remote"

    #: How many BUSY (admission-control backpressure) responses one job
    #: tolerates, sleeping the server-suggested ``retry_after`` between
    #: attempts, before failing typed.
    busy_retries = 60

    def __init__(self, hosts: "Iterable[HostSpec | str | tuple[str, int]]",
                 store: "SnapshotStore | Path | str | None" = None,
                 policy: "SchedulingPolicy | str | None" = None,
                 workers: "int | None" = None,
                 concurrency: int = 1) -> None:
        self.hosts = HostPool(hosts, policy=policy)
        self.concurrency = max(1, int(concurrency))
        super().__init__(workers or len(self.hosts) * self.concurrency)
        self._init_store(store)
        #: "host:port" -> BootInfo of that host's last PREPARE, so tests
        #: and benchmarks can gate "a warm agent store boots with zero
        #: world-build kernel ops" per host.
        self.host_boots: dict[str, BootInfo] = {}
        #: template token -> (wire template key, snapshot digest) —
        #: computed once per bound template, not per job.
        self._wire_keys: dict[tuple, tuple[str, str]] = {}
        self._dispatch: "ThreadPoolExecutor | None" = None
        self._dispatch_lock = threading.Lock()

    # -- protocol ----------------------------------------------------------

    def _submit(self, template: JobTemplate, job: ExecutorJob) -> JobHandle:
        # Owners may submit from several threads (the base class's
        # _pending_lock exists for exactly that); the lazy pool must not
        # be created twice, or the loser's threads leak past close().
        with self._dispatch_lock:
            if self._dispatch is None:
                self._dispatch = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="remote-dispatch")
            dispatch = self._dispatch
        future: Future = dispatch.submit(self._run_remote, template, job)
        return JobHandle(job, future)

    def close(self) -> None:
        with self._dispatch_lock:
            dispatch, self._dispatch = self._dispatch, None
        if dispatch is not None:
            dispatch.shutdown(wait=True)
        self.hosts.close_all()

    # -- one job, end to end -----------------------------------------------

    def _run_remote(self, template: JobTemplate, job: ExecutorJob) -> Any:
        """Shard, prepare, run — retrying on fresh hosts as they die.

        The loop terminates: every failed attempt excludes its host for
        this job (and a crash marks it dead for everyone), so each
        iteration strictly shrinks the candidate set; BUSY responses
        spend a separate bounded retry budget.
        """
        tried: list[str] = []
        excluded: set[HostSpec] = set()
        busy_budget = self.busy_retries
        wire_key, _digest = self._wire_identity(template)
        while True:
            try:
                host = self._pick(job, wire_key, excluded)
            except LookupError:
                raise BatchExecutionError(
                    job.name, job.user or template.default_user,
                    "".join(_traceback.format_stack(limit=8)),
                    message="no live hosts left"
                            + (f" (hosts tried: {', '.join(tried)})" if tried
                               else f" ({self.hosts.describe()})"))
            try:
                link = self.hosts.link_for(host)
                self._ensure_prepared(host, link, template)
                with self.hosts.lease(host):
                    reply = link.request(
                        "SUBMIT", *self._encode(job, wire_key))
            except (WireError, OSError) as err:
                if host.retired:
                    # A clean GOODBYE raced this job: no strike (the
                    # pool already marked the retirement) — just route
                    # the job elsewhere.
                    excluded.add(host.spec)
                    tried.append(f"{host.spec} (retired)")
                    continue
                # The *host* failed (died mid-job, unreachable, spoke
                # garbage) — take it out of rotation for everyone, and
                # exclude it for *this* job so the retry can never land
                # back on the host that just ate it.
                self.hosts.mark_dead(host, err)
                excluded.add(host.spec)
                tried.append(f"{host.spec} ({type(err).__name__}: {err})")
                continue
            if reply.type == "BUSY":
                # Admission backpressure, not failure: the host stays in
                # rotation; this job waits the server-suggested interval.
                busy_budget -= 1
                if busy_budget <= 0:
                    raise BatchExecutionError(
                        job.name, job.user or template.default_user, "",
                        message=f"server busy: {self.busy_retries} "
                                f"admission retries exhausted")
                time.sleep(float(reply.fields.get("retry_after", 0.05)))
                continue
            return self._decode(reply)

    def _pick(self, job: ExecutorJob, wire_key: str,
              excluded: "set[HostSpec]") -> HostState:
        """Policy pick — with one twist: before giving up on an empty
        ring, re-dial the dead hosts.  A restarted agent rejoins here."""
        try:
            return self.hosts.pick(excluded=excluded, job=job,
                                   wire_key=wire_key)
        except LookupError:
            if not self.hosts.try_revive(excluded=excluded):
                raise
            return self.hosts.pick(excluded=excluded, job=job,
                                   wire_key=wire_key)

    @staticmethod
    def _encode(job: ExecutorJob, wire_key: str) -> tuple[dict, bytes]:
        fields = {"index": job.index, "name": job.name, "user": job.user,
                  "source": job.source, "has_fn": job.fn is not None,
                  # SUBMIT names its template: agents hold many at once,
                  # and a reused executor must never run against
                  # whichever template this connection prepared last.
                  "template": wire_key}
        return fields, pickle.dumps(job.fn) if job.fn is not None else b""

    @staticmethod
    def _decode(reply) -> Any:
        reply.expect("RESULT")
        if reply.fields.get("status") == "error":
            # A deterministic failure *inside* the job on a healthy
            # host: re-raise with the agent's attribution, never retry.
            raise BatchExecutionError(
                reply.fields.get("name") or "<unknown>",
                reply.fields.get("user"),
                reply.fields.get("traceback") or "")
        return pickle.loads(reply.blob)

    # -- host preparation --------------------------------------------------

    def _wire_identity(self, template: JobTemplate) -> tuple[str, str]:
        """The (wire template key, snapshot digest) naming ``template``
        on the wire — computed once per bound template; the first call
        snapshots the template into the coordinator's store."""
        cached = self._wire_keys.get(template.token)
        if cached is not None:
            return cached
        digest = self._snapshot_into_store(template)
        wire_key = template_key(digest, template.scripts,
                                template.default_user,
                                template.install_shill)
        self._wire_keys[template.token] = (wire_key, digest)
        return wire_key, digest

    def _ensure_prepared(self, host: HostState, link,
                         template: JobTemplate) -> str:
        """PREPARE ``host`` for ``template`` once (per template
        signature): ship the snapshot digest; ship the bytes only if the
        agent's own store misses.  Returns the wire template key SUBMITs
        must name.  ``host.lock`` serialises concurrent preparers; the
        link's ``converse`` keeps the NEED/BLOB exchange exclusive
        against concurrent SUBMIT sends.
        """
        wire_key, digest = self._wire_identity(template)
        if wire_key in host.prepared:
            return wire_key
        with host.lock:
            if wire_key in host.prepared:
                return wire_key
            with link.converse() as conv:
                reply = conv.request("PREPARE", {
                    "snapshot": digest,
                    "scripts": [[name, source]
                                for name, source in template.scripts],
                    "default_user": template.default_user,
                    "install_shill": template.install_shill,
                    "stats": dict(template.kernel.stats.snapshot()),
                }, pickle.dumps(portable_fixtures(template.fixtures)))
                while reply.type == "NEED":
                    # The agent's store misses: ship each blob it names,
                    # in the store's self-verifying export framing.  A
                    # delta snapshot makes this a short loop — the delta
                    # itself, then any base in its chain the agent's
                    # store lacks.
                    needed = reply.fields["snapshot"]
                    reply = conv.request("BLOB", {"snapshot": needed},
                                         self.store.export_blob(needed))
            reply.expect("READY")
            host.prepared.add(wire_key)
            self.host_boots[str(host.spec)] = BootInfo(
                source=reply.fields.get("source", "unknown"), snapshot=digest,
                build_ops=dict(reply.fields.get("build_ops", {})))
            return wire_key

    def __repr__(self) -> str:
        return (f"<RemoteExecutor {self.hosts!r} store={self.store.root} "
                f"workers={self.workers}>")


def _make_remote(workers=None, store=None, hosts=None, policy=None,
                 concurrency=1, **_):
    if not hosts:
        raise ValueError("the remote executor needs hosts= (agent "
                         "addresses, e.g. ['127.0.0.1:7001']); start "
                         "agents with `python -m repro agent`")
    return RemoteExecutor(hosts=hosts, store=store, workers=workers,
                          policy=policy, concurrency=concurrency)


register_executor("remote", _make_remote)
