"""repro.api.executors — pluggable execution strategies.

The :class:`Executor` protocol (``submit``/``as_completed``/``map``/
``close``) plus the six shipped strategies:

* :class:`SequentialExecutor` — the caller's thread; the reference;
* :class:`ThreadExecutor` — a thread pool (concurrency, not cores);
* :class:`ProcessExecutor` — kernel snapshots shipped to a process pool;
* :class:`StoreExecutor` — a process pool whose workers (and
  coordinator) boot from a persistent, content-addressed
  :class:`~repro.kernel.store.SnapshotStore` on disk;
* :class:`RemoteExecutor` — jobs sharded across agent *hosts*
  (``python -m repro agent``) over the :mod:`repro.remote.wire`
  protocol, with the snapshot store as the wire format;
* :class:`ServeExecutor` — jobs through a long-lived ``repro serve``
  gateway that owns the agent fleet and the admission story.

Strategies live in a **registry**: each module calls
:func:`register_executor` at import, :func:`create_executor` constructs
by name, and :data:`EXECUTOR_CHOICES` is a live view of the registered
names — ``Batch``'s ``backend=`` strings and the CLI's ``--executor``
flag both resolve through it, so registering your own strategy makes it
usable everywhere at once.  The legacy :func:`resolve_executor` spelling
survives as a deprecation shim.  See ``docs/executors.md`` for how to
author a new strategy.
"""

from repro.api.executors.base import (
    DEFAULT_WORKERS,
    EXECUTOR_CHOICES,
    BatchExecutionError,
    BootInfo,
    Executor,
    ExecutorJob,
    JobHandle,
    JobTemplate,
    create_executor,
    execute_job,
    register_executor,
    resolve_executor,
    run_job,
)
from repro.api.executors.local import SequentialExecutor, ThreadExecutor
from repro.api.executors.process import ProcessExecutor
from repro.api.executors.remote import RemoteExecutor
from repro.api.executors.serve import ServeExecutor
from repro.api.executors.store import StoreBootMixin, StoreExecutor
from repro.kernel.store import SnapshotStore

__all__ = [
    "Executor",
    "ExecutorJob",
    "JobHandle",
    "JobTemplate",
    "BootInfo",
    "BatchExecutionError",
    "SequentialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "StoreExecutor",
    "StoreBootMixin",
    "RemoteExecutor",
    "ServeExecutor",
    "SnapshotStore",
    "EXECUTOR_CHOICES",
    "DEFAULT_WORKERS",
    "execute_job",
    "run_job",
    "register_executor",
    "create_executor",
    "resolve_executor",
]
