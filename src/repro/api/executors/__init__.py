"""repro.api.executors — pluggable execution strategies.

The :class:`Executor` protocol (``submit``/``as_completed``/``map``/
``close``) plus the five shipped strategies:

* :class:`SequentialExecutor` — the caller's thread; the reference;
* :class:`ThreadExecutor` — a thread pool (concurrency, not cores);
* :class:`ProcessExecutor` — kernel snapshots shipped to a process pool;
* :class:`StoreExecutor` — a process pool whose workers (and
  coordinator) boot from a persistent, content-addressed
  :class:`~repro.kernel.store.SnapshotStore` on disk;
* :class:`RemoteExecutor` — jobs sharded across agent *hosts*
  (``python -m repro agent``) over the :mod:`repro.remote.wire`
  protocol, with the snapshot store as the wire format.

``Batch`` and ``World.pool`` accept executor instances directly; the
legacy ``backend=`` strings resolve through :func:`resolve_executor`.
See ``docs/executors.md`` for how to author a new strategy.
"""

from repro.api.executors.base import (
    DEFAULT_WORKERS,
    EXECUTOR_CHOICES,
    BatchExecutionError,
    BootInfo,
    Executor,
    ExecutorJob,
    JobHandle,
    JobTemplate,
    execute_job,
    resolve_executor,
    run_job,
)
from repro.api.executors.local import SequentialExecutor, ThreadExecutor
from repro.api.executors.process import ProcessExecutor
from repro.api.executors.remote import RemoteExecutor
from repro.api.executors.store import StoreBootMixin, StoreExecutor
from repro.kernel.store import SnapshotStore

__all__ = [
    "Executor",
    "ExecutorJob",
    "JobHandle",
    "JobTemplate",
    "BootInfo",
    "BatchExecutionError",
    "SequentialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "StoreExecutor",
    "StoreBootMixin",
    "RemoteExecutor",
    "SnapshotStore",
    "EXECUTOR_CHOICES",
    "DEFAULT_WORKERS",
    "execute_job",
    "run_job",
    "resolve_executor",
]
