"""The Executor protocol: execution strategies as first-class objects.

Historically ``Batch(backend="sequential"|"thread"|"process")`` hard-wired
three strategies inside one class.  This package turns the execution
surface into a *protocol*: an :class:`Executor` owns its resources
(threads, worker processes, a snapshot store), is bound to a
:class:`JobTemplate` (one booted machine plus the script registry jobs
run against), and exposes four verbs::

    executor.bind(template)
    handle = executor.submit(job)      # -> JobHandle (future-like)
    for handle in executor.as_completed(): ...
    executor.map(jobs)                 # submit all, gather in order
    executor.close()                   # release pools/processes

:class:`repro.api.Batch` is a thin façade over this: ``backend=`` strings
resolve to executor instances via the **executor registry** —
:func:`register_executor` maps a name to a factory, the shipped
strategies register themselves on import, :func:`create_executor`
constructs by name, and :data:`EXECUTOR_CHOICES` is a live view of the
registered names (the CLI's ``--executor`` choices come from it).  New
strategies — yours included — plug in by implementing this protocol and
registering a factory, without touching ``Batch`` or the CLI.
:func:`resolve_executor` survives as the deprecation shim for the old
string-only spelling.

Two job shapes share the protocol:

* **script jobs** (``source`` set) — one ambient SHILL script for one
  user, producing a frozen :class:`repro.api.RunResult`; the single
  execution path is :func:`execute_job`, identical on every executor, so
  the "parallel equals sequential" fingerprint guarantee reduces to
  kernel forks (and snapshots) being faithful;
* **callable jobs** (``fn`` set) — ``fn(world)`` against a fresh fork of
  the template (``World.pool(...).map`` rides on this), producing
  whatever ``fn`` returns.

Failures keep the Batch contract: script errors are results; everything
else — engine bugs, crashed workers, broken pools — raises
:class:`BatchExecutionError` naming the (script, user) job.
"""

from __future__ import annotations

import copy
import dataclasses
import itertools
import threading
import traceback as _traceback
import warnings
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures import as_completed as _futures_as_completed
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from repro.api.results import RunResult
from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.api.worlds import World
    from repro.kernel.kernel import Kernel

#: name -> factory.  The shipped strategies self-register when their
#: modules import (:func:`_ensure_builtins` forces that lazily, so the
#: registry is complete whenever anyone actually reads it).
_EXECUTOR_REGISTRY: "dict[str, Callable[..., Executor]]" = {}


def register_executor(name: str, factory: "Callable[..., Executor]") -> None:
    """Register an execution strategy under ``name``.

    ``factory`` is called with keyword options (``workers=``, ``store=``,
    ``hosts=``, ``policy=``, ``gateway=``, ``concurrency=`` — whatever
    the call site supplies; accept ``**_`` for the ones you ignore) and
    returns an :class:`Executor`.  Registering makes the name
    constructible via :func:`create_executor`, visible in
    :data:`EXECUTOR_CHOICES`, and therefore valid for ``Batch``'s
    ``backend=`` and the CLI's ``--executor``.  Re-registering a name
    replaces it.

    Example::

        from repro.api.executors import (
            EXECUTOR_CHOICES, SequentialExecutor, register_executor)

        register_executor("careful", lambda **opts: SequentialExecutor())
        assert "careful" in EXECUTOR_CHOICES
    """
    if not name or not isinstance(name, str):
        raise ValueError("executor names must be non-empty strings")
    if not callable(factory):
        raise TypeError(f"executor factory for {name!r} is not callable")
    _EXECUTOR_REGISTRY[name] = factory


def _ensure_builtins() -> None:
    # Importing the package pulls in every shipped strategy module, each
    # of which registers itself at import time.
    import repro.api.executors  # noqa: F401


def create_executor(name: str, **options: Any) -> "Executor":
    """Construct a registered executor by name, forwarding ``options``
    to its factory.  This is the string-to-executor path ``Batch``, the
    CLI and :func:`resolve_executor` all funnel through — unlike the
    latter, it carries no deprecation baggage.

    Example::

        from repro.api.executors import create_executor

        executor = create_executor("thread", workers=2)
        assert executor.name == "thread" and executor.workers == 2
        executor.close()
    """
    _ensure_builtins()
    factory = _EXECUTOR_REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown backend {name!r}; choices: {', '.join(EXECUTOR_CHOICES)}")
    return factory(**options)


class _ExecutorChoices:
    """A live, ordered view of the registered executor names.

    Behaves like the tuple it replaced (iteration, ``in``, indexing,
    comparison) but always reflects the registry — names added by
    :func:`register_executor` appear without anyone re-importing this
    constant.
    """

    @staticmethod
    def _names() -> tuple:
        _ensure_builtins()
        return tuple(_EXECUTOR_REGISTRY)

    def __iter__(self):
        return iter(self._names())

    def __len__(self) -> int:
        return len(self._names())

    def __getitem__(self, index):
        return self._names()[index]

    def __contains__(self, name) -> bool:
        return name in self._names()

    def __eq__(self, other) -> bool:
        return tuple(self._names()) == tuple(other)

    def __repr__(self) -> str:
        return repr(self._names())


#: The executor names ``create_executor`` (and therefore the ``backend=``
#: strings, ``World.pool`` and the CLI ``--executor`` flag) accepts — a
#: live view over the registry, in registration order.  ``"remote"``
#: additionally needs ``hosts=`` (the CLI's ``--hosts``) naming its
#: agent addresses; ``"serve"`` needs ``gateway=`` (``--gateway``).
EXECUTOR_CHOICES = _ExecutorChoices()

#: Default worker count when a caller names none.
DEFAULT_WORKERS = 4

#: Process-unique identities for kernels of undigestible worlds (see
#: :meth:`JobTemplate.token_for`).
_ANON_IDS = itertools.count(1)


class BatchExecutionError(ReproError):
    """A batch job died of something that is *not* a script failure.

    Script-level failures (denials, contract violations, syntax errors —
    every :class:`ReproError`) are deterministic results and come back as
    failed :class:`RunResult`\\ s.  This error is for the rest: engine
    bugs, crashed workers, broken pools.  It names the failing job and
    preserves the original traceback text, which would otherwise be lost
    at a process boundary.
    """

    def __init__(self, job_name: str, user: str | None, traceback_text: str,
                 message: str | None = None) -> None:
        self.job_name = job_name
        self.user = user
        self.traceback_text = traceback_text
        self._message = message
        if message is None:
            lines = traceback_text.strip().splitlines()
            message = lines[-1] if lines else "unknown error"
        super().__init__(
            f"batch job {job_name!r} (user={user!r}) failed: {message}"
        )

    def __reduce__(self):
        """BaseException's default reduce replays only the formatted
        message, which does not match this constructor — spell out the
        real arguments so the error survives pickling (users wrap
        Batch.run in their own multiprocessing layers)."""
        return (BatchExecutionError,
                (self.job_name, self.user, self.traceback_text, self._message))


def execute_job(kernel: "Kernel", source: str, user: str | None,
                name: str, scripts: "dict[str, str] | Iterable[tuple[str, str]]",
                default_user: str) -> RunResult:
    """Run one script job against its own fork of ``kernel``.

    This is the single execution path every executor funnels through —
    worker processes import and call exactly this function — so the
    "parallel equals sequential" fingerprint guarantee reduces to kernel
    forks (and snapshots) being faithful.
    """
    from repro.api.sessions import Session

    fork = kernel.fork()
    effective_user = user or default_user
    try:
        session = Session(fork, user=effective_user, scripts=dict(scripts))
    except KeyError as err:
        # Unknown job user: the job fails alone, and with no session
        # there is nothing to snapshot beyond the error itself.  The
        # catch is deliberately this narrow — a KeyError out of the
        # interpreter would be an engine bug and must propagate (as a
        # BatchExecutionError, via the caller).
        return RunResult(status=1, stderr=f"KeyError: {err}\n",
                         traceback=_traceback.format_exc())
    try:
        # Jobs execute under a canonical script name: diagnostics
        # (e.g. syntax errors) embed the script name, and cached
        # results are shared across identically-keyed jobs whatever
        # they were called — callers attribute output via .jobs.
        result = session.run_ambient(source, "<batch>")
    except ReproError as err:
        # Jobs are isolated forks, so one failing script must not
        # abort its siblings: it becomes a failed RunResult carrying
        # everything the session observed up to the error — denials,
        # sandbox count, profile, op counts — since the audit trail
        # matters most exactly when a run fails.  The error text is
        # deterministic, so cache/fingerprint semantics hold for
        # failures too (the traceback is diagnostic-only and excluded
        # from fingerprints, like wall-clock timings).
        snapshot = session.result()
        result = dataclasses.replace(
            snapshot,
            status=1,
            stderr=snapshot.stderr + f"{type(err).__name__}: {err}\n",
            traceback=_traceback.format_exc(),
        )
    except Exception as err:
        raise BatchExecutionError(name, effective_user,
                                  _traceback.format_exc()) from err
    return result


@dataclass(frozen=True)
class ExecutorJob:
    """One unit of work an executor schedules.

    Exactly one of ``source`` (an ambient script job) or ``fn`` (a
    callable mapped over a world fork) is set.  ``index`` is the
    submission position — executors echo it back so coordinators can
    merge completion-ordered results into submission order.
    """

    index: int
    name: str
    source: str | None = None
    user: str | None = None
    fn: "Callable[[World], Any] | None" = None


@dataclass(frozen=True)
class JobTemplate:
    """Everything jobs execute against: one booted machine + context.

    ``token`` identifies the template's exact state — the world digest
    (or an instance key for undigestible worlds) plus the kernel's
    mutation counters — so executors that cache expensive per-template
    resources (a pickled snapshot, a warm worker pool) know when a
    rebind actually changed the machine underneath them.
    """

    kernel: "Kernel"
    scripts: tuple[tuple[str, str], ...]
    default_user: str
    fixtures: dict
    install_shill: bool
    digest: str | None
    token: tuple

    @classmethod
    def for_world(cls, world: "World",
                  scripts: Iterable[tuple[str, str]] = ()) -> "JobTemplate":
        """The template of a booted :class:`repro.api.World`.

        ``digest`` is carried only while the world is **pristine**: a
        mutated machine is no longer what its config digest describes,
        and anything keyed on the digest (snapshot-store world links)
        must not claim it is — jobs still run fine, addressed by
        content rather than by configuration.
        """
        assert world.kernel is not None, "template worlds must be booted"
        return cls(
            kernel=world.kernel,
            scripts=tuple(scripts),
            default_user=world.default_user,
            fixtures=world.fixtures,
            install_shill=world._install_shill,
            digest=world.digest if world.pristine else None,
            token=cls.token_for(world),
        )

    @staticmethod
    def token_for(world: "World") -> tuple:
        kernel = world.kernel
        assert kernel is not None
        key = world.digest
        if key is None:
            # Undigestible worlds get a process-unique identity stamped
            # on the kernel object (never ``id()``: a recycled address
            # on a machine with coincidentally equal mutation counters
            # would let an executor reuse a warm pool for the wrong
            # machine).  Kernel.__getstate__ enumerates its fields
            # explicitly, so the stamp never enters snapshots or forks.
            key = getattr(kernel, "_executor_identity", None)
            if key is None:
                key = f"anon-{next(_ANON_IDS)}"
                kernel._executor_identity = key
        return (key, kernel.state_epoch, kernel.vfs.generation)


def portable_fixtures(fixtures: dict) -> dict:
    """``fixtures`` if the record pickles, ``{}`` otherwise.

    Fixture values are normally plain data, but a keyed ``with_setup``
    step can record anything; a value that cannot cross a process
    boundary (or land in a snapshot-store link) must not crash a run
    whose jobs never read it — it is simply absent on the far side
    (documented on :meth:`repro.api.World.with_setup`).
    """
    import pickle

    try:
        pickle.dumps(fixtures)
    except Exception:
        return {}
    return fixtures


def run_job(template: JobTemplate, job: ExecutorJob) -> Any:
    """Execute one job (script or callable) against a fork of the
    template — shared by every executor, in-process and in workers."""
    if job.fn is not None:
        from repro.api.worlds import World

        world = World._from_kernel(
            template.kernel.fork(), default_user=template.default_user,
            fixtures=copy.deepcopy(template.fixtures),
            install_shill=template.install_shill)
        return job.fn(world)
    assert job.source is not None
    return execute_job(template.kernel, job.source, job.user, job.name,
                       dict(template.scripts), template.default_user)


class JobHandle:
    """A future-like handle for one submitted job.

    ``result()`` returns the job's outcome (a :class:`RunResult` for
    script jobs, ``fn``'s return value for callable jobs).  Engine and
    worker failures — whatever the executor — surface as
    :class:`BatchExecutionError` naming the job; script failures are
    *results*, never exceptions.
    """

    __slots__ = ("job", "_future", "_decode")

    def __init__(self, job: ExecutorJob, future: Future,
                 decode: "Callable[[ExecutorJob, Any], Any] | None" = None) -> None:
        self.job = job
        self._future = future
        self._decode = decode

    @property
    def index(self) -> int:
        return self.job.index

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: "float | None" = None) -> Any:
        try:
            raw = self._future.result(timeout)
        except BatchExecutionError:
            raise
        except (TimeoutError, _FuturesTimeout) as err:
            # With a caller-supplied timeout, the wait expiring is the
            # caller's protocol, not a job failure (3.10 spells it
            # futures.TimeoutError, 3.11+ the builtin).  With no timeout
            # the future cannot raise a wait-timeout, so this TimeoutError
            # came out of the *job* and is a failure like any other.
            if timeout is not None:
                raise
            raise self._job_failure(err) from err
        except Exception as err:
            raise self._job_failure(err) from err
        if self._decode is not None:
            return self._decode(self.job, raw)
        return raw

    def _job_failure(self, err: BaseException) -> BatchExecutionError:
        """Anything non-Repro escaping a job — an engine bug in a
        thread, a worker killed hard (BrokenProcessPool) — has no job
        attribution of its own; the typed error names the job this
        handle carried and keeps the original traceback, upholding the
        documented contract."""
        return BatchExecutionError(
            self.job.name, self.job.user, _traceback.format_exc(),
            message=f"{type(err).__name__}: {err}",
        )


@dataclass
class BootInfo:
    """How an executor obtained its template (see ``Executor.prepare``).

    ``source`` is one of ``"build"`` (template freshly built this call),
    ``"cached"`` (forked from the warm in-process boot cache — no build
    work), ``"store"`` (restored from a persistent snapshot store),
    ``"booted"`` (the world arrived already booted), or
    ``"unprepared"`` (no prepare has run yet).  ``build_ops`` is the
    deterministic kernel-op delta the boot itself performed in this
    process: a fresh build reports the full world-build cost, a
    snapshot-store hit reports all zeros — the op-count gate behind "a
    second boot from the store does no template-build work" — and the
    cached/booted sources report nothing (no work happened here).
    """

    source: str = "build"
    snapshot: str | None = None               # blob digest, for store boots
    build_ops: dict = field(default_factory=dict)

    @property
    def build_ops_total(self) -> int:
        return sum(self.build_ops.values())


class Executor:
    """Base class / protocol for execution strategies.

    Subclasses implement :meth:`_submit` (and optionally
    :meth:`prepare` / :meth:`close`).  An executor is *bound* to a
    :class:`JobTemplate` before jobs are submitted; rebinding with a
    different template token invalidates per-template resources.
    Executors are context managers: ``with ProcessExecutor(8) as ex: ...``
    closes pools on exit.
    """

    name = "executor"

    def __init__(self, workers: "int | None" = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be positive")
        self.workers = workers or DEFAULT_WORKERS
        self._template: JobTemplate | None = None
        # Owners may share one executor across threads; the pending-
        # handle list must not lose a concurrent submit to a drain.
        self._pending: list[JobHandle] = []
        self._pending_lock = threading.Lock()

    # -- template lifecycle ------------------------------------------------

    def prepare(self, world: "World") -> BootInfo:
        """Boot ``world`` however this executor can do it cheapest.

        The base strategy builds, or forks the in-process boot cache
        (reported as ``"cached"`` — forking a warm template does no
        build work, so claiming the full build cost would be wrong);
        the :class:`~repro.api.executors.store.StoreExecutor` overrides
        this to restore a linked snapshot from disk with zero
        template-build kernel ops.  Returns a :class:`BootInfo`
        describing what happened.
        """
        if world.booted:
            return BootInfo(source="booted")
        from repro.api.worlds import boot_cache_contains

        warm = world.digest is not None and boot_cache_contains(world.digest)
        world.boot()
        assert world.kernel is not None
        if warm:
            return BootInfo(source="cached")
        return BootInfo(source="build",
                        build_ops=dict(world.kernel.stats.snapshot()))

    def bind(self, template: JobTemplate) -> "Executor":
        """Fix the template subsequent :meth:`submit` calls run against."""
        if self._template is not None and self._template.token != template.token:
            self._on_rebind()
        self._template = template
        return self

    def _on_rebind(self) -> None:
        """Hook: the bound template genuinely changed (different token)."""

    # -- the four protocol verbs -------------------------------------------

    def submit(self, job: ExecutorJob) -> JobHandle:
        """Schedule one job; returns a future-like :class:`JobHandle`."""
        if self._template is None:
            raise RuntimeError(f"{type(self).__name__} is not bound to a "
                               "template; call bind() first (Batch does "
                               "this for you)")
        handle = self._submit(self._template, job)
        with self._pending_lock:
            self._pending.append(handle)
        return handle

    def as_completed(self, handles: "Iterable[JobHandle] | None" = None,
                     timeout: "float | None" = None) -> Iterator[JobHandle]:
        """Yield handles as their jobs finish.

        With no argument, drains every handle submitted since the last
        drain; with an explicit iterable, drains exactly those handles
        (they are consumed — removed from the no-arg drain — so two
        owners sharing one executor never swallow each other's work).
        Already-finished handles come first, in submission order (this
        is what makes the sequential executor fully deterministic); the
        rest follow in completion order.
        """
        if handles is None:
            with self._pending_lock:
                pending, self._pending = self._pending, []
        else:
            pending = list(handles)
            self._consume(pending)
        done = [h for h in pending if h.done()]
        waiting = {h._future: h for h in pending if not h.done()}
        yield from done
        for future in _futures_as_completed(waiting, timeout=timeout):
            yield waiting[future]

    def map(self, jobs: Iterable[ExecutorJob]) -> list[Any]:
        """Submit every job and gather results in submission order."""
        handles = [self.submit(job) for job in jobs]
        try:
            return [handle.result() for handle in handles]
        finally:
            # map() owns its handles; don't leave them for a later
            # as_completed() drain to double-consume.
            self._consume(handles)

    def _consume(self, handles: "list[JobHandle]") -> None:
        taken = set(map(id, handles))
        with self._pending_lock:
            self._pending = [h for h in self._pending if id(h) not in taken]

    def close(self) -> None:
        """Release owned resources (pools, worker processes)."""

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- subclass surface --------------------------------------------------

    def _submit(self, template: JobTemplate, job: ExecutorJob) -> JobHandle:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} workers={self.workers}>"


def resolve_executor(backend: str, *, workers: "int | None" = None,
                     store: Any = None, hosts: Any = None,
                     policy: Any = None) -> Executor:
    """The deprecation shim from ``backend=`` strings to executors.

    Old call sites keep working through here at the price of one
    :class:`DeprecationWarning`; new code constructs executor instances
    directly (``Batch(...).run(executor=ThreadExecutor(8))``) or calls
    :func:`create_executor`, which resolves the same registry without
    the warning.

    Example::

        import warnings
        from repro.api import resolve_executor

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            executor = resolve_executor("thread", workers=2)
        assert executor.name == "thread" and executor.workers == 2
        executor.close()
    """
    warnings.warn(
        "resolve_executor() is deprecated; construct executors directly "
        "(e.g. ThreadExecutor(workers=2)) or use create_executor()",
        DeprecationWarning, stacklevel=2)
    return create_executor(backend, workers=workers, store=store,
                           hosts=hosts, policy=policy)
