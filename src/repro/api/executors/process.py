"""The process executor: kernel snapshots fanned out to worker processes.

The only strategy that uses more than one core: the bound template is
serialized once (:mod:`repro.kernel.serialize`), each worker process
restores a private machine in its pool initializer, and every job forks
that machine locally — restore-once, fork-per-job.  Results (and typed
failures) travel home as data, because exceptions do not carry
tracebacks across process boundaries faithfully.

The pool is cached per template *token*: rebinding the same machine
state reuses warm workers, so an executor held across many batches pays
the snapshot + spawn cost once (the old ``backend="process"`` string
spelling constructs a fresh executor per run and keeps the old
pool-per-run behaviour).
"""

from __future__ import annotations

import pickle
import traceback as _traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro.api.executors.base import (
    BatchExecutionError,
    Executor,
    ExecutorJob,
    JobHandle,
    JobTemplate,
    portable_fixtures,
    register_executor,
    run_job,
)
from repro.api.results import RunResult

# ---------------------------------------------------------------------------
# worker plumbing (module-level: worker processes must import it by name)
# ---------------------------------------------------------------------------

#: Per-worker-process state: the restored template, installed once by the
#: pool initializer.
_WORKER_STATE: dict = {}


def _install_worker_template(kernel, scripts_items: tuple,
                             default_user: str, fixtures: dict,
                             install_shill: bool) -> None:
    _WORKER_STATE["template"] = JobTemplate(
        kernel=kernel,
        scripts=tuple(scripts_items),
        default_user=default_user,
        fixtures=fixtures,
        install_shill=install_shill,
        digest=None,
        token=("worker",),
    )


def _process_worker_init(payload: bytes, scripts_items: tuple,
                         default_user: str, fixtures: dict,
                         install_shill: bool) -> None:
    """Pool initializer: unpickle the shipped template once per worker."""
    from repro.kernel.serialize import restore_kernel

    _install_worker_template(restore_kernel(payload), scripts_items,
                             default_user, fixtures, install_shill)


def _store_worker_init(store_root: str, snapshot_digest: str,
                       scripts_items: tuple, default_user: str,
                       fixtures: dict, install_shill: bool) -> None:
    """Pool initializer for store-backed workers: boot from the on-disk
    blob instead of a pickled payload in ``initargs`` — initargs carry a
    path and a digest, not a machine.  ``restore`` resolves delta blobs
    against their base chain in the same store."""
    from repro.kernel.store import SnapshotStore

    kernel = SnapshotStore(store_root).restore(snapshot_digest)
    _install_worker_template(kernel, scripts_items, default_user,
                             fixtures, install_shill)


def _process_worker_run(packed: tuple) -> tuple:
    """Run one job in a worker; never raises (failures travel home as
    ("error", ...) tuples and the coordinator re-raises the typed
    error)."""
    index, name, user, source, fn = packed
    job = ExecutorJob(index=index, name=name, source=source, user=user, fn=fn)
    try:
        result = run_job(_WORKER_STATE["template"], job)
        # The executor pickles our return value *after* this frame
        # exits, where a failure surfaces as an opaque pool error —
        # probe whatever can carry arbitrary objects now, so an
        # unpicklable value fails with the job named.  Script jobs
        # produce value=None, so the common path pays nothing.
        probe = result.value if isinstance(result, RunResult) else result
        if probe is not None:
            try:
                pickle.dumps(probe)
            except Exception:
                return ("error", index, name, user, _traceback.format_exc())
        return ("ok", index, result)
    except BatchExecutionError as err:
        return ("error", index, err.job_name, err.user, err.traceback_text)
    except Exception:
        return ("error", index, name, user, _traceback.format_exc())


def _decode_outcome(job: ExecutorJob, outcome: tuple) -> Any:
    """Translate a worker's outcome tuple; errors re-raise typed."""
    if outcome[0] == "error":
        _tag, _index, name, user, tb_text = outcome
        raise BatchExecutionError(name, user, tb_text)
    return outcome[2]


class ProcessExecutor(Executor):
    """Jobs run in a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Workers restore the template from a one-time pickle and fork per
    job.  Mapped callables (``fn`` jobs) and their return values must be
    picklable, i.e. module-level.

    Example::

        from repro.api import Batch, ProcessExecutor, World

        world = World().for_user("alice").with_jpeg_samples()
        with ProcessExecutor(workers=2) as ex:
            batch = Batch(world, cache=False)
            batch.add('#lang shill/ambient\\nappend(stdout, "a\\\\n");\\n')
            batch.add('#lang shill/ambient\\nappend(stdout, "b\\\\n");\\n')
            results = batch.run(executor=ex)
        assert [r.stdout for r in results] == ["a\\n", "b\\n"]
    """

    name = "process"

    def __init__(self, workers: "int | None" = None) -> None:
        super().__init__(workers)
        self._pool: ProcessPoolExecutor | None = None
        self._pool_token: tuple | None = None  # (template token, scripts)

    # -- template resources ------------------------------------------------

    def _worker_boot(self, template: JobTemplate) -> tuple:
        """(initializer, initargs) that boot one worker process."""
        from repro.kernel.serialize import snapshot_kernel

        payload = snapshot_kernel(template.kernel)
        return (_process_worker_init,
                (payload, template.scripts, template.default_user,
                 portable_fixtures(template.fixtures),
                 template.install_shill))

    def _ensure_pool(self, template: JobTemplate) -> ProcessPoolExecutor:
        # The pool identity is everything its initializer baked into the
        # workers: the machine state (token) *and* the script registry —
        # a rebind with different scripts must rebuild the workers, or
        # jobs would resolve `require` against a stale registry.
        pool_key = (template.token, template.scripts)
        if self._pool is not None and self._pool_token == pool_key:
            return self._pool
        self.close()
        initializer, initargs = self._worker_boot(template)
        self._pool = ProcessPoolExecutor(max_workers=self.workers,
                                         initializer=initializer,
                                         initargs=initargs)
        self._pool_token = pool_key
        return self._pool

    # -- protocol ----------------------------------------------------------

    def _submit(self, template: JobTemplate, job: ExecutorJob) -> JobHandle:
        pool = self._ensure_pool(template)
        packed = (job.index, job.name, job.user, job.source, job.fn)
        return JobHandle(job, pool.submit(_process_worker_run, packed),
                         decode=_decode_outcome)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_token = None


register_executor("process", lambda workers=None, **_: ProcessExecutor(workers=workers))
