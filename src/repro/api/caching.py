"""A tiny thread-safe bounded map, shared by the API layer's caches.

Two module-level caches ride on this: the boot-image cache
(:mod:`repro.api.worlds`, LRU) and the run-result cache
(:mod:`repro.api.batch`, FIFO).  Entries are only ever whole immutable
values (template kernels handed out by fork, frozen results), so the
only concurrency contract needed is that racing inserts agree on one
winner — ``put`` has setdefault semantics and returns the stored value.
"""

from __future__ import annotations

import threading
from typing import Any


class BoundedCache:
    """Insertion-ordered bounded mapping with optional LRU refresh.

    Eviction drops the oldest entry (least-recently-used when ``lru``,
    first-inserted otherwise) whenever the bound is exceeded; an evicted
    entry is simply recomputed by its owner on the next miss.

    Example (a private result cache for one :class:`repro.api.Batch`)::

        from repro.api import BoundedCache

        cache = BoundedCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)              # bound exceeded: "a" evicted
        assert cache.get("a") is None
        assert cache.put("b", 99) == 2  # setdefault semantics
    """

    def __init__(self, maxsize: int, *, lru: bool = False) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self._maxsize = maxsize
        self._lru = lru
        self._data: dict[Any, Any] = {}
        self._lock = threading.Lock()

    def get(self, key: Any) -> Any | None:
        with self._lock:
            value = self._data.get(key)
            if value is not None and self._lru:
                self._data[key] = self._data.pop(key)
            return value

    def put(self, key: Any, value: Any) -> Any:
        """Insert unless present; returns the stored value (setdefault
        semantics, so concurrent inserts agree on the first winner)."""
        with self._lock:
            value = self._data.setdefault(key, value)
            while len(self._data) > self._maxsize:
                self._data.pop(next(iter(self._data)))
            return value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)
