"""repro.serve — the long-lived gateway over a dynamic agent fleet.

``python -m repro serve`` turns the batch cluster from a *per-run*
construction (a coordinator that dials a fixed host list, runs its
batch, and hangs up) into a *service*: one gateway process that agents
join by announcing themselves, that admits client jobs under per-user
rate limits and a bounded queue, and that survives agents restarting
under it mid-batch.  Clients reach it through
:class:`~repro.api.executors.serve.ServeExecutor` — on the wire the
gateway is just one very large agent, so the determinism story
(byte-identical fingerprints across every executor) extends to the
served fleet unchanged.

The pieces:

* :class:`~repro.serve.gateway.Gateway` — the asyncio server: client
  sessions northbound, the agent fleet southbound, a JSONL request log
  for everything it decides;
* :class:`~repro.serve.admission.AdmissionController` — the front
  door: per-user token buckets + a global pending bound, refusals as
  typed ``BUSY {retry_after}`` frames;
* :func:`~repro.serve.gateway.serve_main` — the ``python -m repro
  serve`` entrypoint;
* :func:`~repro.serve.client.spawn_local_gateway` — the test/CI
  helper: spawn a gateway subprocess on an ephemeral port and discover
  its address.

See ``docs/serving.md`` for the operational walkthrough.
"""

from repro.serve.admission import AdmissionController
from repro.serve.client import spawn_local_gateway
from repro.serve.gateway import Gateway, serve_main

__all__ = [
    "AdmissionController",
    "Gateway",
    "serve_main",
    "spawn_local_gateway",
]
