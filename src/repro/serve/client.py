"""Client-side conveniences for the gateway: spawn one locally.

The serving side lives in :mod:`repro.serve.gateway`; the *client* side
of the protocol is just :class:`~repro.api.executors.serve
.ServeExecutor` (the gateway speaks the agent wire protocol, so the
executor needs nothing gateway-specific beyond an address).  What tests,
benchmarks and the CI smoke step do need is a way to stand a real
gateway up as a subprocess and learn its ephemeral port — the exact
shape :func:`repro.remote.agent.spawn_local_agent` already has for
agents.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from pathlib import Path


def spawn_local_gateway(store: "Path | str", *, host: str = "127.0.0.1",
                        policy: "str | None" = None, concurrency: int = 4,
                        rate: "float | None" = None,
                        burst: "float | None" = None,
                        max_pending: "int | None" = None,
                        request_log: "Path | str | None" = None,
                        result_cache: "int | None" = None,
                        ) -> "tuple[subprocess.Popen, str]":
    """Spawn one gateway subprocess; returns ``(process, "host:port")``.

    Runs ``python -m repro serve --port 0`` with ``src`` on
    ``PYTHONPATH``, waits for the ``GATEWAY LISTENING`` readiness line,
    and hands back the discovered address — ready to be passed as
    ``--announce`` to agents and as ``gateway=`` to a
    :class:`~repro.api.executors.serve.ServeExecutor`.  The caller owns
    the process (``proc.kill()``, or ``proc.terminate()`` for a clean
    stop).
    """
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    cmd = [sys.executable, "-m", "repro", "serve",
           "--store", str(store), "--host", host, "--port", "0",
           "--concurrency", str(concurrency)]
    if policy:
        cmd += ["--policy", policy]
    if rate is not None:
        cmd += ["--rate", str(rate)]
    if burst is not None:
        cmd += ["--burst", str(burst)]
    if max_pending is not None:
        cmd += ["--max-pending", str(max_pending)]
    if request_log is not None:
        cmd += ["--request-log", str(request_log)]
    if result_cache is not None:
        cmd += ["--result-cache", str(result_cache)]
    proc = subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE, text=True)
    assert proc.stdout is not None
    # The readiness line is the startup barrier; a crash-on-boot gateway
    # hits EOF instead and is reported with its exit status.
    line = proc.stdout.readline()
    if "GATEWAY LISTENING" not in line:
        proc.kill()
        raise RuntimeError(
            f"gateway failed to start (exit {proc.poll()}): {line!r}")
    parts = dict(item.split("=", 1) for item in line.split()[2:])
    # Drain stdout in the background so a chatty gateway never blocks on
    # a full pipe.
    threading.Thread(target=proc.stdout.read, daemon=True).start()
    return proc, f"{parts['host']}:{parts['port']}"
