"""The gateway: one long-lived front door over a dynamic agent fleet.

``python -m repro serve`` starts an asyncio server that speaks the
agent wire protocol (:mod:`repro.remote.wire`) on both faces:

* **southbound**, it is a coordinator: it owns a
  :class:`~repro.remote.hostpool.HostPool` of agents, scores them with
  a :class:`~repro.api.scheduling.SchedulingPolicy`, PREPAREs each
  agent from its own snapshot store, and relays SUBMITs over ordinary
  sync links (a thread pool keeps the event loop unblocked);
* **northbound**, it *is* an agent, as far as any client can tell: it
  answers HELLO with version negotiation, services PREPARE (pulling
  missed blobs — delta chains included — into its own store exactly
  like an agent would), and replies RESULT frames channel-tagged, so
  :class:`~repro.api.executors.serve.ServeExecutor` is just a
  :class:`~repro.api.executors.remote.RemoteExecutor` pointed at one
  very large host.

What the gateway adds over a static fleet:

* **dynamic membership** — agents dial in with one ``ANNOUNCE`` frame
  (``python -m repro agent --announce HOST:PORT``) and the gateway
  dials back; a known address re-announcing is a *rejoin* (restarted
  agents kept their stores, so the re-PREPARE is warm), and before
  declaring "no live agents" the gateway re-dials its dead ones;
* **admission control** — every SUBMIT passes the
  :class:`~repro.serve.admission.AdmissionController` (per-user token
  buckets + a global pending bound); refusals are typed ``BUSY
  {retry_after}`` frames, never silent drops;
* **a request log** — one JSON line per admission/dispatch/health
  event (``--request-log``), which is also how tests assert that a
  mid-batch agent restart really was survived.

Failure taxonomy, preserved end to end: an agent *crash* strikes the
host and the job retries on the survivors; a clean agent GOODBYE
retires the host without a strike; a *deterministic* job failure comes
back as ``RESULT {status: "error"}`` with the agent's attribution and
is never retried; fleet exhaustion is reported the same way — the
gateway never answers a SUBMIT with a connection-killing ERROR frame.

On startup the gateway prints one machine-readable line::

    GATEWAY LISTENING host=127.0.0.1 port=44501 store=/path/to/store

so callers that spawn it with ``--port 0`` (tests, CI,
:func:`repro.serve.client.spawn_local_gateway`) can discover the port.
"""

from __future__ import annotations

import argparse
import asyncio
import collections
import json
import os
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any

from repro.kernel.serialize import delta_base_digest, is_delta
from repro.kernel.store import SnapshotStore
from repro.remote.hostpool import HostPool, HostSpec, HostState
from repro.remote.wire import (
    _HEAD,
    MAX_FRAME_BYTES,
    Message,
    WireClosed,
    WireError,
    WireVersionError,
    negotiate_version,
    template_key,
)


class Gateway:
    """The serving half of one ``repro serve`` process.

    ``store`` roots the gateway's own snapshot store (templates land
    here once per client and fan out to agents from it); ``hosts``
    seeds the fleet with static agent addresses (usually empty — agents
    announce themselves); ``policy`` is a
    :class:`~repro.api.scheduling.SchedulingPolicy` object or legacy
    string; ``concurrency`` caps jobs in flight *per agent*; ``rate`` /
    ``burst`` / ``max_pending`` configure admission control
    (:class:`~repro.serve.admission.AdmissionController`);
    ``request_log`` appends one JSON line per gateway event to a file;
    ``result_cache`` bounds the per-user result cache (entries; 0
    disables it).
    """

    def __init__(self, store: "SnapshotStore | Path | str | None" = None,
                 host: str = "127.0.0.1", port: int = 0,
                 hosts: "tuple | list" = (),
                 policy: Any = None,
                 concurrency: int = 4,
                 rate: "float | None" = None,
                 burst: "float | None" = None,
                 max_pending: int = 256,
                 request_log: "Path | str | None" = None,
                 dispatch_workers: int = 16,
                 result_cache: int = 1024) -> None:
        from repro.api.caching import BoundedCache
        from repro.serve.admission import AdmissionController

        self.store = store if isinstance(store, SnapshotStore) else SnapshotStore(store)
        self._bind = (host, port)
        self.address: "tuple[str, int] | None" = None
        self.pool = HostPool(hosts, policy=policy, allow_empty=True)
        self.concurrency = max(1, int(concurrency))
        self.admission = AdmissionController(rate=rate, burst=burst,
                                             max_pending=max_pending)
        #: wire template key -> (PREPARE fields, fixtures blob), exactly
        #: as a client shipped them — relayed verbatim to agents that
        #: miss, so both hops compute the same template identity.
        self._templates: "dict[str, tuple[dict, bytes]]" = {}
        self._templates_lock = threading.Lock()
        # Agent dispatch runs on sync links in a thread pool; per-host
        # semaphores enforce the per-agent concurrency cap.
        self._dispatch = ThreadPoolExecutor(max_workers=dispatch_workers,
                                            thread_name_prefix="gateway-dispatch")
        self._host_slots: "dict[HostSpec, threading.Semaphore]" = {}
        self._slots_lock = threading.Lock()
        # The per-user result cache: (requester, template, user, source)
        # -> the RESULT frame verbatim.  Jobs on one template are
        # deterministic, so a repeat SUBMIT answers from here without
        # admission control, dispatch, or a single agent kernel op.
        self._result_cache = (BoundedCache(result_cache, lru=True)
                              if result_cache > 0 else None)
        # The request log: a bounded in-memory tail (diagnostics, tests)
        # plus an optional append-only JSONL file.
        self.events: "collections.deque[dict]" = collections.deque(maxlen=10_000)
        self._log_path = Path(request_log) if request_log else None
        self._log_lock = threading.Lock()
        self._tasks: "set[asyncio.Task]" = set()

    # -- lifecycle ---------------------------------------------------------

    def announce(self, out=None) -> None:
        assert self.address is not None, "announce() before start()"
        print(f"GATEWAY LISTENING host={self.address[0]} "
              f"port={self.address[1]} store={self.store.root}",
              file=out or sys.stdout, flush=True)

    async def start(self) -> "asyncio.base_events.Server":
        server = await asyncio.start_server(self._handle_conn, *self._bind)
        self.address = server.sockets[0].getsockname()[:2]
        self._log("listening", host=self.address[0], port=self.address[1],
                  store=str(self.store.root))
        return server

    async def run(self) -> None:
        """Start, announce, and serve until SIGTERM/SIGINT."""
        server = await self.start()
        self.announce()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-main thread / platform without signal support
        try:
            await stop.wait()
        finally:
            self._log("stopping", pid=os.getpid())
            server.close()
            await server.wait_closed()
            self.close()

    def close(self) -> None:
        self._dispatch.shutdown(wait=False)
        self.pool.close_all()

    # -- frames over asyncio streams ---------------------------------------

    @staticmethod
    async def _read_frame(reader: asyncio.StreamReader) -> "Message | None":
        """One frame, or ``None`` when the peer went away (cleanly or
        not — a gone client needs cleanup either way)."""
        try:
            head = await reader.readexactly(_HEAD.size)
            header_len, blob_len = _HEAD.unpack(head)
            if header_len + blob_len > MAX_FRAME_BYTES:
                raise WireError(f"frame too large: {header_len + blob_len} "
                                "bytes (corrupt length prefix?)")
            payload = await reader.readexactly(header_len)
            blob = await reader.readexactly(blob_len) if blob_len else b""
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        try:
            header = json.loads(payload.decode())
            type_ = header.pop("type")
        except (ValueError, KeyError) as err:
            raise WireError(f"bad frame header: {err}") from err
        return Message(type_, header, blob)

    class _Session:
        """One client connection's write side: a framed, drain-serialised
        sender shared by the session loop and its SUBMIT tasks."""

        def __init__(self, writer: asyncio.StreamWriter) -> None:
            self.writer = writer
            self.lock = asyncio.Lock()

        async def send(self, type_: str, fields: "dict | None" = None,
                       blob: bytes = b"") -> None:
            header = dict(fields or {})
            header["type"] = type_
            payload = json.dumps(header, separators=(",", ":"),
                                 sort_keys=True).encode()
            async with self.lock:
                self.writer.write(_HEAD.pack(len(payload), len(blob))
                                  + payload + blob)
                await self.writer.drain()

    @staticmethod
    def _echo(msg: Message, fields: "dict | None" = None) -> dict:
        """Reply fields for ``msg``, echoing its channel id (if any) so
        a multiplexing client routes the reply to the right waiter."""
        fields = dict(fields or {})
        if "channel" in msg.fields:
            fields["channel"] = msg.fields["channel"]
        return fields

    # -- connections -------------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        session = self._Session(writer)
        try:
            first = await self._read_frame(reader)
            if first is None:
                return
            if first.type == "ANNOUNCE":
                await self._handle_announce(session, first)
            elif first.type == "HELLO":
                await self._client_loop(session, reader, first)
            else:
                await session.send("ERROR", {
                    "error": f"expected HELLO or ANNOUNCE, got {first.type!r}"})
        except (WireError, OSError):
            pass  # a half-broken peer gets dropped, not a traceback
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):  # pragma: no cover
                pass

    async def _handle_announce(self, session: "Gateway._Session",
                               msg: Message) -> None:
        """An agent dialed in to join the fleet; the gateway dials back
        on the advertised address when jobs need it."""
        spec = HostSpec(str(msg.fields["host"]), int(msg.fields["port"]))
        rejoin = any(h.spec == spec for h in self.pool.hosts)
        self.pool.add_host(spec)
        self._log("rejoin" if rejoin else "announce", host=str(spec),
                  pid=msg.fields.get("pid"), store=msg.fields.get("store"))
        await session.send("WELCOME", {"pid": os.getpid(),
                                       "fleet": len(self.pool)})

    # -- one client --------------------------------------------------------

    async def _client_loop(self, session: "Gateway._Session",
                           reader: asyncio.StreamReader,
                           hello: Message) -> None:
        try:
            effective = negotiate_version(hello.fields.get("version"),
                                          hello.fields.get("min_version"))
        except WireVersionError as err:
            await session.send("ERROR", {"error": str(err)})
            return
        await session.send("HELLO", {"version": effective, "pid": os.getpid(),
                                     "store": str(self.store.root)})
        while True:
            msg = await self._read_frame(reader)
            if msg is None or msg.type == "GOODBYE":
                return
            if msg.type == "PREPARE":
                # Inline: the client holds its send gate for the whole
                # NEED/BLOB exchange, so the next frames on this socket
                # are the exchange's own (RESULT writes still interleave
                # safely — the session lock serialises the write side).
                await self._handle_prepare(session, reader, msg)
            elif msg.type == "SUBMIT":
                task = asyncio.ensure_future(
                    self._handle_submit(session, msg))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
            else:
                await session.send("ERROR", self._echo(
                    msg, {"error": f"unexpected {msg.type!r}"}))
                return

    async def _handle_prepare(self, session: "Gateway._Session",
                              reader: asyncio.StreamReader,
                              msg: Message) -> None:
        """Take custody of one template: pull every blob our store
        misses (the delta chain included, exactly like an agent), keep
        the PREPARE ingredients for relaying, reply READY."""
        fields = msg.fields
        snapshot = fields["snapshot"]
        wire_key = template_key(snapshot, fields.get("scripts", []),
                                fields["default_user"],
                                fields.get("install_shill", True))
        with self._templates_lock:
            known = wire_key in self._templates
        source = "memory" if known else "store"
        payload = self.store.get(snapshot)
        if payload is None:
            payload = await self._pull_blob(session, reader, msg, snapshot)
            source = "wire"
        probe = payload
        while is_delta(probe):
            base = delta_base_digest(probe)
            probe = self.store.get(base)
            if probe is None:
                probe = await self._pull_blob(session, reader, msg, base)
                source = "wire"
        relay = {k: v for k, v in fields.items() if k != "channel"}
        with self._templates_lock:
            self._templates[wire_key] = (relay, msg.blob)
        self._log("template", key=wire_key[:16], snapshot=snapshot[:16],
                  source=source)
        # build_ops is empty by construction: the gateway relays, it
        # never boots a kernel — agents report their own boot work.
        await session.send("READY", self._echo(
            msg, {"source": source, "build_ops": {}}))

    async def _pull_blob(self, session: "Gateway._Session",
                         reader: asyncio.StreamReader, msg: Message,
                         digest: str) -> bytes:
        await session.send("NEED", self._echo(msg, {"snapshot": digest}))
        reply = await self._read_frame(reader)
        if reply is None:
            raise WireClosed("client vanished mid-PREPARE")
        reply.expect("BLOB")
        imported = self.store.import_blob(reply.blob)
        if imported != digest:
            raise WireError(f"BLOB carried {imported[:12]}…, "
                            f"NEED named {digest[:12]}…")
        return self.store.load(digest)

    # -- SUBMIT: admission, then relay -------------------------------------

    async def _handle_submit(self, session: "Gateway._Session",
                             msg: Message) -> None:
        fields = msg.fields
        user = fields.get("requester") or fields.get("user") or "anonymous"
        cached = self._cache_lookup(fields)
        if cached is not None:
            # A cache hit is exempt from admission control: it consumes
            # no agent slot and no dispatch worker, so throttling it
            # would only turn free answers into BUSY frames.
            reply_fields, blob = cached
            reply_fields = dict(reply_fields)
            reply_fields["index"] = fields.get("index")
            self._log("cache_hit", user=user, name=fields.get("name"),
                      verdict="hit",
                      template=str(fields.get("template", ""))[:16])
            await self._safe_send(session, "RESULT",
                                  self._echo(msg, reply_fields), blob)
            return
        wait = self.admission.admit(user)
        if wait is not None:
            self._log("busy", user=user, name=fields.get("name"),
                      retry_after=round(wait, 4),
                      pending=self.admission.pending)
            await self._safe_send(session, "BUSY", self._echo(
                msg, {"retry_after": round(wait, 4)}))
            return
        try:
            loop = asyncio.get_running_loop()
            reply_fields, blob = await loop.run_in_executor(
                self._dispatch, self._dispatch_job, dict(fields), msg.blob)
        finally:
            self.admission.release()
        self._cache_store(fields, reply_fields, blob)
        await self._safe_send(session, "RESULT", self._echo(msg, reply_fields),
                              blob)

    def _cache_key(self, fields: dict) -> "tuple | None":
        """Per-user cache key, or None for uncacheable SUBMITs: callable
        jobs (their pickled fn is opaque) and sourceless frames."""
        if (self._result_cache is None or fields.get("has_fn")
                or fields.get("source") is None):
            return None
        return (fields.get("requester") or fields.get("user") or "anonymous",
                fields.get("template", ""), fields.get("user"),
                fields.get("source"))

    def _cache_lookup(self, fields: dict) -> "tuple[dict, bytes] | None":
        key = self._cache_key(fields)
        return self._result_cache.get(key) if key is not None else None

    def _cache_store(self, fields: dict, reply_fields: dict,
                     blob: bytes) -> None:
        """Keep a successful RESULT for replay; errors (crashed fleets,
        unknown templates) must re-dispatch, never replay."""
        key = self._cache_key(fields)
        if key is None or reply_fields.get("status") == "error":
            return
        self._result_cache.put(key, (dict(reply_fields), blob))

    async def _safe_send(self, session: "Gateway._Session", type_: str,
                         fields: dict, blob: bytes = b"") -> None:
        """A reply to a client that may already be gone — which is its
        problem, not the fleet's; the job result is simply dropped."""
        try:
            await session.send(type_, fields, blob)
        except (OSError, ConnectionError, RuntimeError):
            self._log("client_gone", name=fields.get("name"))

    def _dispatch_job(self, fields: dict, blob: bytes
                      ) -> "tuple[dict, bytes]":
        """Relay one SUBMIT to an agent (sync; runs on the dispatch
        pool).  Mirrors ``RemoteExecutor._run_remote``'s health
        taxonomy: crash → strike + retry on survivors, clean GOODBYE →
        retire + retry, exhaustion → an error RESULT (never a dead
        connection)."""
        index = fields.get("index")
        name, user = fields.get("name"), fields.get("user")
        wire_key = fields.get("template", "")
        with self._templates_lock:
            have_template = wire_key in self._templates
        if not have_template:
            return {"index": index, "status": "error", "name": name,
                    "user": user,
                    "traceback": "gateway: SUBMIT names a template no "
                                 "client has PREPAREd here (gateway "
                                 "restarted? re-open the executor)"}, b""
        relay = {k: v for k, v in fields.items()
                 if k not in ("channel", "requester")}
        tried: list[str] = []
        excluded: "set[HostSpec]" = set()
        while True:
            try:
                host = self._pick(fields, wire_key, excluded)
            except LookupError:
                self._log("exhausted", name=name, tried=tried)
                detail = (f" (agents tried: {', '.join(tried)})" if tried
                          else f" ({self.pool.describe() or 'fleet is empty'})")
                return {"index": index, "status": "error", "name": name,
                        "user": user,
                        "traceback": "gateway: no live agents left"
                                     + detail}, b""
            with self._slot(host.spec):
                try:
                    link = self.pool.link_for(host)
                    self._ensure_agent_prepared(host, link, wire_key)
                    with self.pool.lease(host):
                        self._log("dispatch", name=name, user=user,
                                  verdict="miss", host=str(host.spec))
                        reply = link.request("SUBMIT", relay, blob)
                    reply.expect("RESULT")
                except (WireError, OSError) as err:
                    if host.retired:
                        self._log("retired", host=str(host.spec), name=name)
                        excluded.add(host.spec)
                        tried.append(f"{host.spec} (retired)")
                        continue
                    self.pool.mark_dead(host, err)
                    self._log("dead", host=str(host.spec), name=name,
                              error=str(err))
                    excluded.add(host.spec)
                    tried.append(f"{host.spec} ({type(err).__name__})")
                    continue
            out = {k: v for k, v in reply.fields.items() if k != "channel"}
            self._log("result", name=name, host=str(host.spec),
                      status=out.get("status", "ok"))
            return out, reply.blob

    def _pick(self, fields: dict, wire_key: str,
              excluded: "set[HostSpec]") -> HostState:
        """Policy pick; before giving up on an empty ring, re-dial dead
        agents — a restarted agent that never re-announced (or whose
        ANNOUNCE is still in flight) rejoins here."""
        try:
            return self.pool.pick(excluded=excluded, job=fields,
                                  wire_key=wire_key)
        except LookupError:
            revived = self.pool.try_revive(excluded=excluded)
            if not revived:
                raise
            self._log("revived", hosts=[str(h.spec) for h in revived])
            return self.pool.pick(excluded=excluded, job=fields,
                                  wire_key=wire_key)

    def _slot(self, spec: HostSpec) -> threading.Semaphore:
        with self._slots_lock:
            sem = self._host_slots.get(spec)
            if sem is None:
                sem = self._host_slots[spec] = threading.Semaphore(
                    self.concurrency)
            return sem

    def _ensure_agent_prepared(self, host: HostState, link,
                               wire_key: str) -> None:
        """Relay PREPARE (and any NEED/BLOB pulls, served from the
        gateway's store) to one agent, once per template."""
        if wire_key in host.prepared:
            return
        with self._templates_lock:
            prepare_fields, fixtures = self._templates[wire_key]
        with host.lock:
            if wire_key in host.prepared:
                return
            with link.converse() as conv:
                reply = conv.request("PREPARE", prepare_fields, fixtures)
                while reply.type == "NEED":
                    needed = reply.fields["snapshot"]
                    reply = conv.request("BLOB", {"snapshot": needed},
                                         self.store.export_blob(needed))
            reply.expect("READY")
            host.prepared.add(wire_key)
            self._log("prepared", host=str(host.spec), key=wire_key[:16],
                      source=reply.fields.get("source"))

    # -- the request log ---------------------------------------------------

    def _log(self, event: str, **fields: Any) -> None:
        record = {"ts": round(time.time(), 3), "event": event, **fields}
        with self._log_lock:
            self.events.append(record)
            if self._log_path is not None:
                with self._log_path.open("a") as fh:
                    fh.write(json.dumps(record, sort_keys=True) + "\n")

    def __repr__(self) -> str:
        where = (f"{self.address[0]}:{self.address[1]}" if self.address
                 else "unbound")
        return (f"<Gateway {where} fleet={len(self.pool)} "
                f"{self.admission!r}>")


def serve_main(argv: "list[str] | None" = None) -> int:
    """The ``python -m repro serve`` entrypoint."""
    from repro.api.scheduling import LEGACY_POLICY_STRINGS

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="serve a long-lived batch gateway over a dynamic "
                    "agent fleet (agents join with "
                    "`python -m repro agent --announce HOST:PORT`)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="gateway snapshot store root (default: "
                             "$REPRO_STORE, else the user cache dir)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="listen port (0 = ephemeral, reported on stdout)")
    parser.add_argument("--hosts", default=None, metavar="HOST:PORT[,...]",
                        help="seed the fleet with static agent addresses "
                             "(agents may also announce themselves)")
    parser.add_argument("--policy", choices=list(LEGACY_POLICY_STRINGS),
                        default=None,
                        help="scheduling policy for the fleet "
                             "(default: round-robin)")
    parser.add_argument("--concurrency", type=int, default=4,
                        help="jobs in flight per agent (default: 4)")
    parser.add_argument("--rate", type=float, default=None,
                        help="per-user admission rate, requests/second "
                             "(default: unlimited)")
    parser.add_argument("--burst", type=float, default=None,
                        help="per-user burst allowance (default: max(1, rate))")
    parser.add_argument("--max-pending", type=int, default=256,
                        help="global bound on admitted-but-unfinished jobs "
                             "(default: 256)")
    parser.add_argument("--request-log", default=None, metavar="FILE",
                        help="append one JSON line per gateway event "
                             "(admissions, dispatches, agent health)")
    parser.add_argument("--result-cache", type=int, default=1024,
                        metavar="N",
                        help="per-user result cache entries; repeat "
                             "SUBMITs answer without dispatch "
                             "(default: 1024, 0 disables)")
    args = parser.parse_args(argv)
    # The CLI's policy strings are its native interface, not the
    # deprecated API spelling — resolve them without a warning.
    policy = LEGACY_POLICY_STRINGS[args.policy]() if args.policy else None
    gateway = Gateway(
        store=args.store, host=args.host, port=args.port,
        hosts=[spec for spec in (args.hosts or "").split(",") if spec],
        policy=policy, concurrency=args.concurrency, rate=args.rate,
        burst=args.burst, max_pending=args.max_pending,
        request_log=args.request_log, result_cache=args.result_cache)
    try:
        asyncio.run(gateway.run())
    except KeyboardInterrupt:  # pragma: no cover - handled via signal
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via `-m repro serve`
    raise SystemExit(serve_main())
