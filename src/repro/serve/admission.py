"""Admission control for the gateway: who gets in, who waits.

Two independent gates, both answered *before* a job touches the fleet:

* a **global pending bound** — at most ``max_pending`` admitted jobs at
  once, so a burst cannot queue unbounded work inside the gateway (the
  bounded-queue half of backpressure);
* a **per-user token bucket** — ``rate`` requests/second with ``burst``
  of headroom per requester, so one noisy user cannot starve the rest.

A refusal is *typed*, not dropped: :meth:`AdmissionController.admit`
returns the number of seconds the caller should wait, the gateway turns
that into a ``BUSY {retry_after}`` frame, and the client sleeps exactly
that hint before retrying.  ``rate=None`` (the default) disables the
per-user gate — a private gateway behaves like a plain executor unless
limits are asked for.

The clock is injectable so every branch is unit-testable with a fake
clock and zero sleeps (``tests/serve/test_admission.py``).
"""

from __future__ import annotations

import threading
import time
from typing import Callable


class AdmissionController:
    """The gateway's front door: bounded queue + per-user rate limits.

    ``rate`` is sustained requests/second per user (``None`` = no
    per-user limit); ``burst`` is the bucket depth (defaults to
    ``max(1, rate)``); ``max_pending`` bounds concurrently admitted
    jobs across all users.  ``clock`` is a monotonic-seconds callable,
    injectable for tests.

    Example::

        from repro.serve import AdmissionController

        gate = AdmissionController(rate=2.0, burst=2, max_pending=8)
        assert gate.admit("alice") is None          # admitted
        assert gate.admit("alice") is None          # burst headroom
        wait = gate.admit("alice")                  # bucket empty
        assert wait is not None and wait > 0
        gate.release()                              # a job finished
    """

    def __init__(self, rate: "float | None" = None,
                 burst: "float | None" = None,
                 max_pending: int = 256,
                 clock: "Callable[[], float]" = time.monotonic) -> None:
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None for unlimited)")
        if max_pending < 1:
            raise ValueError("max_pending must be positive")
        self.rate = rate
        self.burst = float(burst if burst is not None
                           else max(1.0, rate or 1.0))
        if self.burst < 1:
            raise ValueError("burst must allow at least one request")
        self.max_pending = max_pending
        self._clock = clock
        self._lock = threading.Lock()
        self._pending = 0
        #: user -> (tokens, last refill time)
        self._buckets: "dict[str, tuple[float, float]]" = {}

    @property
    def pending(self) -> int:
        """Jobs currently admitted and not yet released."""
        with self._lock:
            return self._pending

    def admit(self, user: str = "anonymous") -> "float | None":
        """Try to admit one request for ``user``.

        Returns ``None`` when admitted — the caller **must** pair this
        with :meth:`release` when the job finishes — or the suggested
        retry-after interval in seconds when refused (nothing to
        release; no token was spent)."""
        with self._lock:
            if self._pending >= self.max_pending:
                # The queue bound refuses *before* the bucket spends a
                # token: a refused request should not also burn budget.
                return self._queue_hint()
            if self.rate is not None:
                now = self._clock()
                tokens, last = self._buckets.get(user, (self.burst, now))
                tokens = min(self.burst, tokens + (now - last) * self.rate)
                if tokens < 1.0:
                    self._buckets[user] = (tokens, now)
                    return (1.0 - tokens) / self.rate
                self._buckets[user] = (tokens - 1.0, now)
            self._pending += 1
            return None

    def release(self) -> None:
        """One admitted job finished (or was abandoned)."""
        with self._lock:
            if self._pending > 0:
                self._pending -= 1

    def _queue_hint(self) -> float:
        # No completion signal to predict from; suggest a short, bounded
        # backoff proportional to how over-subscribed the gate is.
        return max(0.05, min(1.0, self._pending / (self.max_pending * 10.0)))

    def __repr__(self) -> str:
        limit = f"{self.rate}/s burst={self.burst}" if self.rate else "unlimited"
        return (f"<AdmissionController {limit} "
                f"pending={self.pending}/{self.max_pending}>")
