"""Abstract syntax for SHILL scripts (both dialects) and contract syntax."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

# ---------------------------------------------------------------------------
# source positions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Span:
    """A (line, col) source position, 1-based.  Line 0 means "unknown"
    (nodes built programmatically rather than by the parser)."""

    line: int = 0
    col: int = 0

    def __bool__(self) -> bool:
        return self.line > 0

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"


#: The unknown position, shared by every node a parser did not stamp.
NO_SPAN = Span()


# ---------------------------------------------------------------------------
# expressions and statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Node:
    """Base of every AST node.  ``span`` is carried for diagnostics only:
    it is keyword-only (so subclass positional fields stay positional)
    and excluded from equality/repr (two nodes spelling the same program
    are equal wherever they were written)."""

    span: Span = field(default=NO_SPAN, kw_only=True, compare=False, repr=False)


@dataclass(frozen=True)
class Lit(Node):
    value: object  # str | int | float | bool


@dataclass(frozen=True)
class Var(Node):
    name: str


@dataclass(frozen=True)
class ListLit(Node):
    items: tuple["Expr", ...]


@dataclass(frozen=True)
class Call(Node):
    fn: "Expr"
    args: tuple["Expr", ...]
    kwargs: tuple[tuple[str, "Expr"], ...] = ()


@dataclass(frozen=True)
class UnOp(Node):
    op: str  # "!" | "-"
    operand: "Expr"


@dataclass(frozen=True)
class BinOp(Node):
    op: str  # && || == != < > <= >= + - * / %
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class If(Node):
    cond: "Expr"
    then: "Stmt"
    otherwise: Optional["Stmt"] = None


@dataclass(frozen=True)
class For(Node):
    var: str
    iterable: "Expr"
    body: "Block"


@dataclass(frozen=True)
class Fun(Node):
    params: tuple[str, ...]
    body: "Block"
    name: str = ""


@dataclass(frozen=True)
class Block(Node):
    stmts: tuple["Stmt", ...]


@dataclass(frozen=True)
class Def(Node):
    name: str
    expr: "Expr"


@dataclass(frozen=True)
class ExprStmt(Node):
    expr: "Expr"


Expr = Union[Lit, Var, ListLit, Call, UnOp, BinOp, Fun, If, Block]
Stmt = Union[Def, ExprStmt, If, For, Block]

# ---------------------------------------------------------------------------
# contract syntax
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CtcNode(Node):
    pass


@dataclass(frozen=True)
class CtcName(CtcNode):
    """A contract referenced by name: a predicate (is_file), a named
    abbreviation (readonly), a wallet kind (native_wallet), or a
    polymorphic variable in scope."""

    name: str


@dataclass(frozen=True)
class CtcPrivItem(CtcNode):
    """``+priv`` with an optional ``with { ... }`` modifier; the modifier
    may also be the identifier ``full_privs`` ("with full privileges")."""

    priv: str
    modifier: Optional[tuple[str, ...]] = None
    modifier_full: bool = False


@dataclass(frozen=True)
class CtcCap(CtcNode):
    """``file(+a, +b)`` / ``dir(...)`` / ``pipe(...)`` / ``cap(...)``."""

    kind: str
    items: tuple[CtcPrivItem, ...]


@dataclass(frozen=True)
class CtcOr(CtcNode):
    parts: tuple["Ctc", ...]


@dataclass(frozen=True)
class CtcAnd(CtcNode):
    parts: tuple["Ctc", ...]


@dataclass(frozen=True)
class CtcFun(CtcNode):
    """``{x : C, ...} -> R`` or anonymous ``C -> R``."""

    params: tuple[tuple[str, "Ctc"], ...]
    result: "Ctc"


@dataclass(frozen=True)
class CtcForall(CtcNode):
    var: str
    bound: tuple[str, ...]
    body: CtcFun


Ctc = Union[CtcName, CtcCap, CtcOr, CtcAnd, CtcFun, CtcForall]

# ---------------------------------------------------------------------------
# module structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Require(Node):
    """``require shill/native;`` or ``require "script.cap";``"""

    target: str
    is_path: bool  # True for quoted file targets


@dataclass(frozen=True)
class Provide(Node):
    """``provide name : contract;``"""

    name: str
    contract: Ctc


@dataclass(frozen=True)
class Module(Node):
    lang: str  # "shill/cap" | "shill/ambient"
    requires: tuple[Require, ...] = ()
    provides: tuple[Provide, ...] = ()
    body: tuple[Stmt, ...] = ()
    filename: str = "<script>"

    @property
    def is_ambient(self) -> bool:
        return self.lang == "shill/ambient"
