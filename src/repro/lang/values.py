"""Runtime values of the SHILL language.

Most values are plain Python objects (str, int/float, bool, list), which
keeps builtins simple.  Language-specific values:

* :data:`VOID` — the unit value ("no value is returned");
* :class:`SysErrorVal` — a *value* representing a failed resource
  operation.  SHILL scripts branch on these (``if !is_syserror(child)``)
  rather than unwinding, so builtins catch :class:`SysError` and return
  one;
* :class:`Closure` — a user function.  SHILL has no mutable variables, so
  closures capture an immutable environment (recursion is tied via a
  dedicated self-reference slot rather than mutation of the frame);
* :class:`BuiltinFunction` — a Python-implemented primitive.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:
    from repro.lang.ast_ import Block
    from repro.lang.env import Env


class Void:
    _instance: "Void | None" = None

    def __new__(cls) -> "Void":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "void"

    def __bool__(self) -> bool:
        return False


VOID = Void()


class SysErrorVal:
    """A system error as a first-class value."""

    def __init__(self, name: str, message: str = "") -> None:
        self.name = name
        self.message = message

    def __repr__(self) -> str:
        return f"syserror({self.name})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SysErrorVal) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("syserror", self.name))


class Closure:
    """A user-defined function value."""

    __slots__ = ("name", "params", "body", "env")

    def __init__(self, name: str, params: list[str], body: "Block", env: "Env") -> None:
        self.name = name
        self.params = params
        self.body = body
        self.env = env

    @property
    def display_name(self) -> str:
        return self.name or "<anonymous fun>"

    def __repr__(self) -> str:
        return f"<fun {self.display_name}({', '.join(self.params)})>"


class BuiltinFunction:
    """A primitive implemented in Python.

    ``fn(*args, **kwargs)`` receives already-evaluated SHILL values and
    returns one.  ``name`` is the identifier scripts call it by.
    """

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[..., Any]) -> None:
        self.name = name
        self.fn = fn

    @property
    def display_name(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"<builtin {self.name}>"


def truthy(value: Any) -> bool:
    """SHILL truth: booleans only — other types in conditions are errors,
    except that this helper is also used by `&&`/`||` shortcuts."""
    from repro.errors import ShillRuntimeError

    if isinstance(value, bool):
        return value
    raise ShillRuntimeError(f"condition must be a boolean, got {value!r}")


def shill_repr(value: Any) -> str:
    """Display form used by error messages and the `show` builtin."""
    if value is VOID:
        return "void"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return value
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(shill_repr(v) for v in value) + "]"
    return repr(value)
