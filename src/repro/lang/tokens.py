"""Token definitions for the SHILL concrete syntax."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class T(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    PRIV = "priv"  # +read, +create-file, ...

    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMI = ";"
    COLON = ":"
    DOT = "."
    ASSIGN = "="

    ARROW = "->"
    OR_CTC = "\\/"  # contract disjunction
    AND_CTC = "/\\"  # contract conjunction
    AND = "&&"
    OR = "||"
    EQ = "=="
    NE = "!="
    LE = "<="
    GE = ">="
    LT = "<"
    GT = ">"
    NOT = "!"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"

    EOF = "eof"


KEYWORDS = {
    "fun",
    "if",
    "then",
    "else",
    "for",
    "in",
    "provide",
    "require",
    "forall",
    "with",
    "true",
    "false",
}


@dataclass(frozen=True)
class Token:
    type: T
    value: str
    line: int
    col: int

    @property
    def is_keyword(self) -> bool:
        return self.type is T.IDENT and self.value in KEYWORDS

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.col})"
