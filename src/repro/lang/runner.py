"""The SHILL runtime: ties the language to the simulated kernel.

A :class:`ShillRuntime` is what the paper calls "the SHILL runtime": it
holds the (unsandboxed) interpreter process, mints capabilities for
ambient scripts, builds sandboxes for ``exec``, and keeps the profiling
accumulators behind Figure 10's breakdown (startup / sandbox setup /
sandboxed execution / remaining).

Ambient capability minting follows section 2.5: "The capability has all
privileges that the invoking user is allowed for this file" — privileges
are derived from the DAC bits the user's credential passes.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Iterable

from repro.errors import ContractViolation, ShillRuntimeError, SysError
from repro.capability.caps import FsCap, PipeFactoryCap, SocketFactoryCap
from repro.kernel import errno_
from repro.kernel.cred import R_OK, W_OK, X_OK, dac_check
from repro.kernel.devices import TtyDevice, null_device
from repro.kernel.fdesc import OpenFile
from repro.kernel.proc import Process
from repro.kernel.syscalls import O_APPEND, O_RDONLY, O_WRONLY
from repro.kernel.vfs import Vnode, VType
from repro.lang.builtins import make_base_builtins
from repro.lang.env import Env
from repro.lang.interp import Interp
from repro.lang.modules import ModuleLoader
from repro.lang.values import BuiltinFunction
from repro.sandbox.privileges import Priv, PrivSet
from repro.stdlib.wallet import Wallet

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel

READ_PRIVS = (Priv.READ, Priv.CONTENTS, Priv.READ_SYMLINK)
WRITE_PRIVS = (
    Priv.WRITE,
    Priv.APPEND,
    Priv.TRUNCATE,
    Priv.CREATE_FILE,
    Priv.CREATE_DIR,
    Priv.CREATE_PIPE,
    Priv.CREATE_SYMLINK,
    Priv.UNLINK_FILE,
    Priv.UNLINK_DIR,
    Priv.RENAME,
    Priv.LINK,
    Priv.UTIMES,
)
EXEC_PRIVS = (Priv.EXEC, Priv.LOOKUP, Priv.CHDIR)


def ambient_privs(cred, vp: Vnode) -> PrivSet:
    """Privileges the invoking user's ambient (DAC) authority justifies."""
    privs: list[Priv] = [Priv.STAT, Priv.PATH]
    if dac_check(cred, mode=vp.mode, uid=vp.uid, gid=vp.gid, want=R_OK):
        privs.extend(READ_PRIVS)
    if dac_check(cred, mode=vp.mode, uid=vp.uid, gid=vp.gid, want=W_OK):
        privs.extend(WRITE_PRIVS)
    if dac_check(cred, mode=vp.mode, uid=vp.uid, gid=vp.gid, want=X_OK):
        privs.extend(EXEC_PRIVS)
    if cred.is_root or cred.uid == vp.uid:
        privs.extend((Priv.CHMOD, Priv.CHFLAGS, Priv.IOCTL))
    if cred.is_root:
        privs.append(Priv.CHOWN)
    return PrivSet.of(*privs)


class ShillRuntime:
    """One SHILL invocation: an interpreter process plus module loader."""

    def __init__(
        self,
        kernel: "Kernel",
        user: str = "root",
        cwd: str = "/",
        scripts: dict[str, str] | None = None,
        engine=None,
    ) -> None:
        t0 = time.perf_counter()
        self.kernel = kernel
        # Per-runtime policy engine (see repro.policy): bound to every
        # sandbox session this runtime's exec builtin creates.
        self.engine = engine
        self.proc = kernel.spawn_process(user, cwd)
        self.sys = kernel.syscalls(self.proc)
        self.interp = Interp(self)
        self.scripts: dict[str, str] = dict(scripts or {})
        self.loader = ModuleLoader(self)
        self._base_builtins = make_base_builtins(self)
        self._dev_vid_count = 0
        self.tty = TtyDevice()
        self.tty_err = TtyDevice("stderr")
        self._tty_vnode = self._device_vnode("ttyv0", self.tty)
        self._tty_err_vnode = self._device_vnode("stderr", self.tty_err)
        self._null_vnode = self._device_vnode("null", null_device())
        self.profile: dict[str, float] = {
            "startup": 0.0,
            "sandbox_setup": 0.0,
            "sandbox_exec": 0.0,
            "sandbox_count": 0.0,
            "total": 0.0,
        }
        self.profile["startup"] = time.perf_counter() - t0

    # ------------------------------------------------------------------
    # environments
    # ------------------------------------------------------------------

    def cap_env(self) -> Env:
        env = Env()
        for name, builtin in self._base_builtins.items():
            env.define(name, builtin)
        return env

    def ambient_env(self) -> Env:
        env = self.cap_env()
        env.define("open_file", BuiltinFunction("open_file", self.open_file))
        env.define("open_dir", BuiltinFunction("open_dir", self.open_dir))
        env.define("stdout", self.stdout_cap())
        env.define("stderr", self.stderr_cap())
        env.define("pipe_factory", PipeFactoryCap(self.sys))
        env.define("socket_factory", SocketFactoryCap())
        return env

    # ------------------------------------------------------------------
    # ambient capability minting
    # ------------------------------------------------------------------

    def _mint(self, path: str, want_dir: bool | None) -> FsCap:
        _, _, vp = self.sys._resolve(path)
        if vp is None:
            raise SysError(errno_.ENOENT, path)
        if want_dir is True and not vp.is_dir:
            raise SysError(errno_.ENOTDIR, path)
        if want_dir is False and vp.is_dir:
            raise SysError(errno_.EISDIR, path)
        privs = ambient_privs(self.proc.cred, vp)
        return FsCap(self.sys, vp, privs, last_known_path=self.sys.kernel.vfs.path_of(vp))

    def open_file(self, path: str) -> FsCap:
        """Ambient builtin ``open_file`` (the paper's ``open-file``)."""
        return self._mint(self._expand(path), want_dir=False)

    def open_dir(self, path: str) -> FsCap:
        return self._mint(self._expand(path), want_dir=True)

    def _expand(self, path: str) -> str:
        if path == "~" or path.startswith("~/"):
            return self.proc.cred.home + path[1:]
        return path

    def stdout_cap(self) -> FsCap:
        return FsCap(
            self.sys,
            self._tty_vnode,
            PrivSet.of(Priv.WRITE, Priv.APPEND, Priv.STAT, Priv.PATH),
            last_known_path="/dev/ttyv0",
        )

    def stderr_cap(self) -> FsCap:
        """A distinct device capability for the ambient ``stderr`` — its
        capture buffer (:attr:`tty_err`) is separate from stdout's, so
        diagnostics never interleave with a run's observed output."""
        return FsCap(
            self.sys,
            self._tty_err_vnode,
            PrivSet.of(Priv.WRITE, Priv.APPEND, Priv.STAT, Priv.PATH),
            last_known_path="/dev/stderr",
        )

    def _device_vnode(self, name: str, device) -> Vnode:
        vp = Vnode(VType.VCHR, 0o666, 0, 0)
        # Deterministic vid, derived from the (deterministic) interpreter
        # pid: these vnodes can surface in audit output, and the global
        # fallback counter would make that output depend on how many
        # runtimes the process has ever built (or on thread scheduling
        # under the parallel batch runner).  The 2^33 offset keeps the
        # range disjoint from both tree vids and the global counter.
        self._dev_vid_count += 1
        vp.vid = (1 << 33) + self.proc.pid * 16 + self._dev_vid_count
        vp.device = device
        vp.nc_name = name
        return vp

    # ------------------------------------------------------------------
    # script entry points
    # ------------------------------------------------------------------

    def register_script(self, name: str, source: str) -> None:
        self.scripts[name] = source

    def run_ambient(self, source: str, name: str = "<ambient>") -> Env:
        """Run an ambient script; returns its final environment."""
        t0 = time.perf_counter()
        env = self.loader.run_ambient(source, name)
        self.profile["total"] += time.perf_counter() - t0
        return env

    def load_cap_exports(self, name: str, importer: str = "host") -> dict[str, Any]:
        """Load a capability-safe script and return its contract-wrapped
        exports (for driving scripts from Python tests/benchmarks)."""
        module = self.loader.load(name)
        env = Env()
        self.loader.import_exports(module, env, importer)
        return {export: env.lookup(export) for export in module.provides}

    def call(self, fn: Any, *args: Any, **kwargs: Any) -> Any:
        return self.interp.apply(fn, list(args), kwargs)

    # ------------------------------------------------------------------
    # exec: capability-based sandboxes
    # ------------------------------------------------------------------

    def exec_builtin(
        self,
        execcap: Any,
        argv: Iterable[Any],
        stdin: Any = None,
        stdout: Any = None,
        stderr: Any = None,
        extras: Iterable[Any] | None = None,
        ulimits: dict[str, int] | None = None,
        timeout: Any = None,
        env: dict[str, str] | None = None,
        cwd: Any = None,
        debug: bool = False,
    ) -> int:
        """The ``exec`` builtin (section 2.3): run an executable in a
        capability-based sandbox limited to exactly the given capabilities.
        Returns the exit status.
        """
        if not isinstance(execcap, FsCap) or not execcap.is_file_cap:
            raise ShillRuntimeError("exec expects an executable file capability")
        if not execcap.privs.has(Priv.EXEC):
            raise ContractViolation(
                blame=execcap.blame,
                contract=repr(execcap.privs),
                detail="exec requires the +exec privilege",
            )
        if not isinstance(execcap.obj, Vnode):
            raise ShillRuntimeError("exec target must be a file")

        setup_started = time.perf_counter()
        policy = self.kernel.install_shill_module()
        child = self.kernel.procs.fork(self.proc)
        session = policy.sessions.shill_init(child, debug=debug, engine=self.engine)

        argv = list(argv)
        grant_list: list[Any] = [execcap]
        # Capabilities passed as *arguments* are granted to the sandbox
        # (Figure 4's jpeginfo receives `arg` as a path and must be able
        # to open it).
        grant_list.extend(a for a in argv if isinstance(a, FsCap))
        grant_list.extend(self._flatten(extras or []))
        for value in grant_list:
            self._grant_value(policy, session, value)

        self._wire_stdio(policy, session, child, stdin, stdout, stderr)
        if cwd is not None:
            if not isinstance(cwd, FsCap) or not cwd.is_dir_cap:
                raise ShillRuntimeError("exec cwd must be a directory capability")
            self._grant_value(policy, session, cwd)
            assert isinstance(cwd.obj, Vnode)
            child.cwd = cwd.obj
        if ulimits:
            child.ulimits = child.ulimits.merged_with(ulimits)
        # Executables designate resources by *path*, so the session needs
        # traversal privileges along each granted capability's ancestor
        # chain.  Grant bare lookup (empty derive modifier: resolution may
        # pass through, nothing propagates) on every ancestor directory —
        # the automated version of what native wallets package for
        # libraries.  Done last so explicit grants always win merges.
        seen_caps = [v for v in grant_list if isinstance(v, FsCap)]
        for fd_cap in (stdin, stdout, stderr, cwd):
            if isinstance(fd_cap, FsCap):
                seen_caps.append(fd_cap)
        self._grant_traversal_chains(policy, session, seen_caps)
        self.kernel.syscalls(child).shill_enter()
        self.profile["sandbox_setup"] += time.perf_counter() - setup_started
        self.profile["sandbox_count"] += 1

        argv_strings = [self._argv_string(a) for a in argv]
        exec_started = time.perf_counter()
        # Kept for post-mortem inspection (audit log / auto-grant review).
        self.last_session = session
        status = self.kernel.exec_file(child, execcap.obj, argv_strings, env)
        self.profile["sandbox_exec"] += time.perf_counter() - exec_started
        return status

    _TRAVERSE_ONLY = PrivSet.of(Priv.LOOKUP).with_modifier(Priv.LOOKUP, ())

    def _grant_traversal_chains(self, policy, session, caps: list[FsCap]) -> None:
        granted: set[int] = set()
        for cap in caps:
            node = cap.obj if isinstance(cap.obj, Vnode) else None
            if node is None:
                continue
            parent = node.nc_parent
            while parent is not None and parent.vid not in granted:
                granted.add(parent.vid)
                policy.sessions.grant(session, parent, self._TRAVERSE_ONLY)
                parent = parent.nc_parent
            root = self.kernel.vfs.root
            if root.vid not in granted:
                granted.add(root.vid)
                policy.sessions.grant(session, root, self._TRAVERSE_ONLY)

    def _flatten(self, values: Iterable[Any]) -> list[Any]:
        out: list[Any] = []
        for value in values:
            if isinstance(value, Wallet):
                out.extend(self._flatten(value.all_values()))
            elif isinstance(value, (list, tuple)):
                out.extend(self._flatten(value))
            else:
                out.append(value)
        return out

    def _grant_value(self, policy, session, value: Any) -> None:
        if isinstance(value, FsCap):
            policy.sessions.grant(session, value.kernel_object, value.privs)
        elif isinstance(value, PipeFactoryCap):
            policy.sessions.grant_pipe_factory(session)
        elif isinstance(value, SocketFactoryCap):
            policy.sessions.grant_socket_factory(session, value.perms)
        elif value is None:
            pass
        else:
            raise ShillRuntimeError(f"cannot grant non-capability {value!r} to a sandbox")

    def _wire_stdio(self, policy, session, child: Process, stdin, stdout, stderr) -> None:
        for fd, cap, flags in (
            (0, stdin, O_RDONLY),
            (1, stdout, O_WRONLY | O_APPEND),
            (2, stderr, O_WRONLY | O_APPEND),
        ):
            if cap is None:
                # /dev/null stand-in; granted explicitly so the sandbox
                # keeps working when device interposition is enabled.
                policy.sessions.grant(
                    session, self._null_vnode,
                    PrivSet.of(Priv.READ, Priv.WRITE, Priv.APPEND),
                )
                child.fdtable.install(fd, OpenFile(self._null_vnode, flags))
                continue
            if not isinstance(cap, FsCap):
                raise ShillRuntimeError(f"std fd {fd} must be a file capability")
            self._grant_value(policy, session, cap)
            child.fdtable.install(fd, OpenFile(cap.obj, flags))

    def _argv_string(self, arg: Any) -> str:
        """Capability arguments are passed to executables as paths, via
        the ``path`` syscall with last-known-path fallback (section 3.1.3).
        """
        if isinstance(arg, FsCap):
            return arg.path()
        if isinstance(arg, str):
            return arg
        from repro.lang.values import shill_repr

        return shill_repr(arg)
