"""Pretty-printer for SHILL ASTs.

Used for diagnostics (showing the contract or expression a violation
points at) and by the parser round-trip property tests: for any AST,
``parse(pprint(ast))`` re-produces the AST.
"""

from __future__ import annotations

from repro.lang import ast_ as A


def pprint_expr(expr: A.Expr) -> str:
    if isinstance(expr, A.Lit):
        value = expr.value
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, str):
            escaped = value.replace("\\", "\\\\").replace('"', '\\"')
            escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
            return f'"{escaped}"'
        return repr(value)
    if isinstance(expr, A.Var):
        return expr.name
    if isinstance(expr, A.ListLit):
        return "[" + ", ".join(pprint_expr(item) for item in expr.items) + "]"
    if isinstance(expr, A.Call):
        args = [pprint_expr(a) for a in expr.args]
        args += [f"{key} = {pprint_expr(val)}" for key, val in expr.kwargs]
        return f"{pprint_expr(expr.fn)}({', '.join(args)})"
    if isinstance(expr, A.UnOp):
        return f"{expr.op}({pprint_expr(expr.operand)})"
    if isinstance(expr, A.BinOp):
        return f"({pprint_expr(expr.left)} {expr.op} {pprint_expr(expr.right)})"
    if isinstance(expr, A.Fun):
        return f"fun({', '.join(expr.params)}) {pprint_block(expr.body)}"
    if isinstance(expr, A.If):
        return pprint_stmt(expr).rstrip()
    if isinstance(expr, A.Block):
        return pprint_block(expr)
    raise TypeError(f"cannot print {expr!r}")


def pprint_stmt(stmt: A.Stmt) -> str:
    if isinstance(stmt, A.Def):
        body = pprint_expr(stmt.expr)
        suffix = "" if isinstance(stmt.expr, A.Fun) else ";"
        return f"{stmt.name} = {body}{suffix}\n"
    if isinstance(stmt, A.ExprStmt):
        return f"{pprint_expr(stmt.expr)};\n"
    if isinstance(stmt, A.If):
        out = f"if {pprint_expr(stmt.cond)} then {pprint_stmt(stmt.then).rstrip()}"
        if stmt.otherwise is not None:
            out += f" else {pprint_stmt(stmt.otherwise).rstrip()}"
        return out + "\n"
    if isinstance(stmt, A.For):
        return f"for {stmt.var} in {pprint_expr(stmt.iterable)} {pprint_block(stmt.body)}\n"
    if isinstance(stmt, A.Block):
        return pprint_block(stmt) + "\n"
    raise TypeError(f"cannot print {stmt!r}")


def pprint_block(block: A.Block) -> str:
    inner = "".join("  " + pprint_stmt(s) for s in block.stmts)
    return "{\n" + inner + "}"


def pprint_ctc(ctc: A.Ctc) -> str:
    if isinstance(ctc, A.CtcName):
        return ctc.name
    if isinstance(ctc, A.CtcCap):
        items = []
        for item in ctc.items:
            text = f"+{item.priv}"
            if item.modifier_full:
                text += " with full_privs"
            elif item.modifier is not None:
                text += " with {" + ", ".join(f"+{m}" for m in item.modifier) + "}"
            items.append(text)
        return f"{ctc.kind}({', '.join(items)})"
    if isinstance(ctc, A.CtcOr):
        return " \\/ ".join(_ctc_atom(p) for p in ctc.parts)
    if isinstance(ctc, A.CtcAnd):
        return " && ".join(_ctc_atom(p) for p in ctc.parts)
    if isinstance(ctc, A.CtcFun):
        params = ", ".join(f"{name} : {pprint_ctc(c)}" for name, c in ctc.params)
        return f"{{{params}}} -> {pprint_ctc(ctc.result)}"
    if isinstance(ctc, A.CtcForall):
        bound = ", ".join(f"+{p}" for p in ctc.bound)
        return f"forall {ctc.var} with {{{bound}}} . {pprint_ctc(ctc.body)}"
    raise TypeError(f"cannot print {ctc!r}")


def _ctc_atom(ctc: A.Ctc) -> str:
    text = pprint_ctc(ctc)
    if isinstance(ctc, (A.CtcOr, A.CtcAnd, A.CtcFun, A.CtcForall)):
        return f"({text})"
    return text


def pprint_module(module: A.Module) -> str:
    parts = [f"#lang {module.lang}\n"]
    for req in module.requires:
        target = f'"{req.target}"' if req.is_path else req.target
        parts.append(f"require {target};\n")
    for prov in module.provides:
        parts.append(f"provide {prov.name} : {pprint_ctc(prov.contract)};\n")
    for stmt in module.body:
        parts.append(pprint_stmt(stmt))
    return "".join(parts)
