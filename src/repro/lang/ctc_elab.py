"""Elaboration of contract syntax into contract values.

Name resolution order for ``CtcName``:

1. polymorphic variables in scope (``forall X . ... X ...``);
2. bindings in the module environment whose value is a contract — this
   is how "users can define their own contracts by creating contract
   combinators and user-defined predicates written in SHILL itself"
   (section 2.4.2): a SHILL closure bound to a name becomes a flat
   predicate contract;
3. the standard contract library (``readonly``, ``is_file``, ...).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ShillRuntimeError
from repro.contracts.capctc import CapContract, SocketFactoryContract
from repro.contracts.core import AndContract, Contract, OrContract, PredicateContract
from repro.contracts.functionctc import FunctionContract
from repro.contracts.polyctc import ContractVar, PolyContract
from repro.contracts.library import EXPORTS as LIBRARY
from repro.contracts.walletctc import WalletContract
from repro.lang import ast_ as A
from repro.lang.values import Closure
from repro.sandbox.privileges import (
    ALL_PRIVS,
    PrivSet,
    SocketPerms,
    priv_from_name,
    sock_priv_from_name,
)

if TYPE_CHECKING:
    from repro.lang.env import Env
    from repro.lang.interp import Interp


def elaborate(
    ctc: A.Ctc,
    env: "Env",
    interp: "Interp",
    poly_vars: frozenset[str] = frozenset(),
) -> Contract:
    if isinstance(ctc, A.CtcName):
        return _resolve_name(ctc.name, env, interp, poly_vars)
    if isinstance(ctc, A.CtcCap):
        return _elaborate_cap(ctc)
    if isinstance(ctc, A.CtcOr):
        return OrContract(*[elaborate(p, env, interp, poly_vars) for p in ctc.parts])
    if isinstance(ctc, A.CtcAnd):
        return AndContract(*[elaborate(p, env, interp, poly_vars) for p in ctc.parts])
    if isinstance(ctc, A.CtcFun):
        params = [(name, elaborate(c, env, interp, poly_vars)) for name, c in ctc.params]
        result = elaborate(ctc.result, env, interp, poly_vars)
        return FunctionContract(params, result)
    if isinstance(ctc, A.CtcForall):
        bound = PrivSet.of(*[priv_from_name(p) for p in ctc.bound])
        inner_vars = poly_vars | {ctc.var}
        body = elaborate(ctc.body, env, interp, inner_vars)
        assert isinstance(body, FunctionContract)
        return PolyContract(ctc.var, bound, body)
    raise ShillRuntimeError(f"unknown contract form {ctc!r}")


def _resolve_name(
    name: str, env: "Env", interp: "Interp", poly_vars: frozenset[str]
) -> Contract:
    if name in poly_vars:
        return ContractVar(name)
    if env is not None and env.bound(name):
        from repro.lang.values import BuiltinFunction

        value = env.lookup(name)
        if isinstance(value, Contract):
            return value
        if isinstance(value, Closure):
            # A user-defined predicate written in SHILL.
            return PredicateContract(
                lambda v, _c=value, _i=interp: _i.apply(_c, [v]) is True, name
            )
        if isinstance(value, BuiltinFunction):
            # A builtin predicate shadows nothing: prefer the library's
            # contract of the same name (is_file the contract vs is_file
            # the builtin), falling back to predicate wrapping.
            if name in LIBRARY:
                return LIBRARY[name]
            return PredicateContract(
                lambda v, _b=value, _i=interp: _i.apply(_b, [v]) is True, name
            )
        raise ShillRuntimeError(f"{name!r} is bound but is not a contract")
    if name.endswith("_wallet") and name not in LIBRARY:
        # Wallet kinds are open-ended: `ocaml_wallet` checks kind "ocaml".
        return WalletContract(kind=name[: -len("_wallet")])
    if name in LIBRARY:
        return LIBRARY[name]
    raise ShillRuntimeError(f"unknown contract {name!r}")


def _elaborate_cap(ctc: A.CtcCap) -> Contract:
    if ctc.kind == "socket_factory":
        if not ctc.items:
            return SocketFactoryContract()
        perms = SocketPerms({sock_priv_from_name(item.priv) for item in ctc.items})
        return SocketFactoryContract(perms)
    privs = _privset_from_items(ctc.items)
    kind = "file" if ctc.kind == "pipe" else ctc.kind
    return CapContract(kind, privs)


def _privset_from_items(items: tuple[A.CtcPrivItem, ...]) -> PrivSet:
    mapping: dict = {}
    for item in items:
        priv = priv_from_name(item.priv)
        if item.modifier_full:
            # "with full privileges": derived capabilities may carry every
            # privilege (bounded, as always, by what the supplied
            # capability can actually derive).
            mapping[priv] = frozenset(ALL_PRIVS)
        elif item.modifier is not None:
            mapping[priv] = frozenset(priv_from_name(m) for m in item.modifier)
        else:
            mapping[priv] = None
    return PrivSet(mapping)
