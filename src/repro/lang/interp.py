"""The capability-safe evaluator.

A small strict evaluator with no mutable variables and no ambient
authority: every resource the script touches arrives as a capability
argument or is derived from one.  The evaluator also owns **value
application** — closures, builtins, and contract-guarded functions all
funnel through :meth:`Interp.apply`, which is where function contracts
interpose.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.errors import ShillRuntimeError
from repro.contracts.functionctc import GuardedFunction
from repro.lang import ast_ as A
from repro.lang.env import Env
from repro.lang.values import VOID, BuiltinFunction, Closure, truthy

_PENDING = object()


class Interp:
    """Evaluator shared by both dialects (the ambient dialect is the same
    machine over a restricted AST plus ambient builtins)."""

    def __init__(self, runtime=None) -> None:
        self.runtime = runtime

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------

    def apply(self, fn: Any, args: Sequence[Any], kwargs: Mapping[str, Any] | None = None) -> Any:
        kwargs = kwargs or {}
        if isinstance(fn, GuardedFunction):
            return fn.invoke(self._apply_raw, args, kwargs)
        return self._apply_raw(fn, args, kwargs)

    def _apply_raw(self, fn: Any, args: Sequence[Any], kwargs: Mapping[str, Any]) -> Any:
        if isinstance(fn, GuardedFunction):
            # A guarded function reached through another contract layer.
            return fn.invoke(self._apply_raw, args, kwargs)
        if isinstance(fn, Closure):
            if kwargs:
                raise ShillRuntimeError(
                    f"{fn.display_name} does not accept keyword arguments"
                )
            if len(args) != len(fn.params):
                raise ShillRuntimeError(
                    f"{fn.display_name} expects {len(fn.params)} argument(s), got {len(args)}"
                )
            env = fn.env.child()
            for name, value in zip(fn.params, args):
                env.define(name, value)
            return self.exec_block(fn.body, env)
        if isinstance(fn, BuiltinFunction):
            return fn.fn(*args, **kwargs)
        if callable(fn):
            return fn(*args, **kwargs)
        raise ShillRuntimeError(f"not a function: {fn!r}")

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def exec_stmts(self, stmts: Sequence[A.Stmt], env: Env) -> Any:
        result: Any = VOID
        for stmt in stmts:
            result = self.exec_stmt(stmt, env)
        return result

    def exec_stmt(self, stmt: A.Stmt, env: Env) -> Any:
        if isinstance(stmt, A.Def):
            env.define(stmt.name, _PENDING)
            value = self.eval(stmt.expr, env)
            if isinstance(value, Closure) and not value.name:
                value.name = stmt.name
            env.complete_definition(stmt.name, value)
            return VOID
        if isinstance(stmt, A.ExprStmt):
            return self.eval(stmt.expr, env)
        if isinstance(stmt, A.If):
            if truthy(self.eval(stmt.cond, env)):
                return self.exec_stmt(stmt.then, env)
            if stmt.otherwise is not None:
                return self.exec_stmt(stmt.otherwise, env)
            return VOID
        if isinstance(stmt, A.For):
            iterable = self.eval(stmt.iterable, env)
            if not isinstance(iterable, (list, tuple)):
                raise ShillRuntimeError(f"for expects a list, got {iterable!r}")
            for item in iterable:
                body_env = env.child()
                body_env.define(stmt.var, item)
                self.exec_stmts(stmt.body.stmts, body_env)
            return VOID
        if isinstance(stmt, A.Block):
            return self.exec_block(stmt, env)
        raise ShillRuntimeError(f"unknown statement {stmt!r}")

    def exec_block(self, block: A.Block, env: Env) -> Any:
        return self.exec_stmts(block.stmts, env.child())

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def eval(self, expr: A.Expr, env: Env) -> Any:
        if isinstance(expr, A.Lit):
            return expr.value
        if isinstance(expr, A.Var):
            value = env.lookup(expr.name)
            if value is _PENDING:
                raise ShillRuntimeError(
                    f"variable {expr.name!r} used before its definition completed"
                )
            return value
        if isinstance(expr, A.ListLit):
            return [self.eval(item, env) for item in expr.items]
        if isinstance(expr, A.Fun):
            return Closure(expr.name, list(expr.params), expr.body, env)
        if isinstance(expr, A.Call):
            fn = self.eval(expr.fn, env)
            args = [self.eval(arg, env) for arg in expr.args]
            kwargs = {key: self.eval(val, env) for key, val in expr.kwargs}
            return self.apply(fn, args, kwargs)
        if isinstance(expr, A.UnOp):
            return self._unop(expr, env)
        if isinstance(expr, A.BinOp):
            return self._binop(expr, env)
        if isinstance(expr, A.If):
            if truthy(self.eval(expr.cond, env)):
                return self.exec_stmt(expr.then, env)
            if expr.otherwise is not None:
                return self.exec_stmt(expr.otherwise, env)
            return VOID
        if isinstance(expr, A.Block):
            return self.exec_block(expr, env)
        raise ShillRuntimeError(f"unknown expression {expr!r}")

    def _unop(self, expr: A.UnOp, env: Env) -> Any:
        value = self.eval(expr.operand, env)
        if expr.op == "!":
            return not truthy(value)
        if expr.op == "-":
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ShillRuntimeError(f"unary - on non-number {value!r}")
            return -value
        raise ShillRuntimeError(f"unknown unary operator {expr.op!r}")

    def _binop(self, expr: A.BinOp, env: Env) -> Any:
        op = expr.op
        if op == "&&":
            return truthy(self.eval(expr.left, env)) and truthy(self.eval(expr.right, env))
        if op == "||":
            return truthy(self.eval(expr.left, env)) or truthy(self.eval(expr.right, env))
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "+":
            if isinstance(left, str) and isinstance(right, str):
                return left + right
            return self._arith(op, left, right)
        if op in ("-", "*", "/", "%"):
            return self._arith(op, left, right)
        if op in ("<", ">", "<=", ">="):
            self._require_num(left, op)
            self._require_num(right, op)
            return {"<": left < right, ">": left > right, "<=": left <= right, ">=": left >= right}[op]
        raise ShillRuntimeError(f"unknown operator {op!r}")

    def _arith(self, op: str, left: Any, right: Any) -> Any:
        self._require_num(left, op)
        self._require_num(right, op)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise ShillRuntimeError("division by zero")
            result = left / right
            if isinstance(left, int) and isinstance(right, int) and left % right == 0:
                return int(result)
            return result
        if op == "%":
            if right == 0:
                raise ShillRuntimeError("modulo by zero")
            return left % right
        raise AssertionError(op)

    @staticmethod
    def _require_num(value: Any, op: str) -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ShillRuntimeError(f"operator {op!r} expects numbers, got {value!r}")
