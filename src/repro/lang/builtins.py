"""Built-in functions of the SHILL language.

"Conceptually, SHILL capabilities correspond to operating system
representations of resources, such as file descriptors, and built-in
functions such as append and lookup are wrappers for the corresponding
system calls" (section 2.1).

Failed resource operations surface as :class:`SysErrorVal` *values* —
scripts branch on them (``if !is_syserror(child) then ...``) instead of
unwinding.  Contract violations, by design, are not catchable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import SysError
from repro.capability.caps import FsCap, PipeFactoryCap
from repro.contracts import library as ctclib
from repro.lang.values import VOID, BuiltinFunction, SysErrorVal, shill_repr

if TYPE_CHECKING:
    from repro.lang.runner import ShillRuntime


def _syserrors(fn):
    """Convert SysError into a SysErrorVal result."""

    def wrapper(*args, **kwargs):
        try:
            return fn(*args, **kwargs)
        except SysError as err:
            return SysErrorVal(err.name, str(err))

    return wrapper


def _as_bytes(value: Any) -> bytes:
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode()
    return shill_repr(value).encode()


def _require_cap(value: Any, op: str) -> FsCap:
    from repro.errors import ShillRuntimeError

    if not isinstance(value, FsCap):
        raise ShillRuntimeError(f"{op} expects a capability, got {shill_repr(value)}")
    return value


# ---------------------------------------------------------------------------
# capability operations
# ---------------------------------------------------------------------------


def b_is_file(v: Any) -> bool:
    return ctclib.is_file_value(v)


def b_is_dir(v: Any) -> bool:
    return ctclib.is_dir_value(v)


def b_is_syserror(v: Any) -> bool:
    return isinstance(v, SysErrorVal)


@_syserrors
def b_path(cap: Any) -> Any:
    return _require_cap(cap, "path").path()


@_syserrors
def b_size(cap: Any) -> Any:
    return _require_cap(cap, "size").stat().size


@_syserrors
def b_mtime(cap: Any) -> Any:
    return _require_cap(cap, "mtime").stat().mtime


@_syserrors
def b_read(cap: Any) -> Any:
    return _require_cap(cap, "read").read().decode(errors="replace")


@_syserrors
def b_write(cap: Any, data: Any) -> Any:
    _require_cap(cap, "write").write(_as_bytes(data))
    return VOID


@_syserrors
def b_append(cap: Any, data: Any) -> Any:
    _require_cap(cap, "append").append(_as_bytes(data))
    return VOID


@_syserrors
def b_contents(cap: Any) -> Any:
    return _require_cap(cap, "contents").contents()


@_syserrors
def b_lookup(cap: Any, name: str) -> Any:
    return _require_cap(cap, "lookup").lookup(name)


@_syserrors
def b_create_file(cap: Any, name: str) -> Any:
    return _require_cap(cap, "create-file").create_file(name)


@_syserrors
def b_create_dir(cap: Any, name: str) -> Any:
    return _require_cap(cap, "create-dir").create_dir(name)


@_syserrors
def b_unlink(cap: Any, name: str) -> Any:
    _require_cap(cap, "unlink").unlink(name)
    return VOID


@_syserrors
def b_read_symlink(cap: Any, name: str) -> Any:
    return _require_cap(cap, "read-symlink").read_symlink(name)


_SOCKET_DOMAINS = {"inet": 2, "unix": 1}
_SOCKET_TYPES = {"stream": 1, "dgram": 2}


def make_socket_builtins(runtime: "ShillRuntime") -> dict[str, Any]:
    """EXTENSION: socket built-ins (the paper notes direct socket
    manipulation "can be addressed by adding built-in functions ... to
    the language").  Every operation requires a socket factory (or a
    socket derived from one) — capability safety is preserved."""
    from repro.errors import ShillRuntimeError
    from repro.capability.caps import SocketCap, SocketFactoryCap
    from repro.kernel.sockets import AddressFamily, SocketType

    def _sock(value: Any, op: str) -> SocketCap:
        if not isinstance(value, SocketCap):
            raise ShillRuntimeError(f"{op} expects a socket capability")
        return value

    @_syserrors
    def create_socket(factory: Any, domain: str = "inet", stype: str = "stream") -> Any:
        if not isinstance(factory, SocketFactoryCap):
            raise ShillRuntimeError("create_socket expects a socket factory")
        dom = AddressFamily(_SOCKET_DOMAINS.get(domain, 2))
        typ = SocketType(_SOCKET_TYPES.get(stype, 1))
        return factory.create(runtime.sys, dom, typ)

    @_syserrors
    def socket_connect(sock: Any, host: str, port: int) -> Any:
        _sock(sock, "socket_connect").connect(host, port)
        return VOID

    @_syserrors
    def socket_bind(sock: Any, host: str, port: int) -> Any:
        _sock(sock, "socket_bind").bind(host, port)
        return VOID

    @_syserrors
    def socket_listen(sock: Any) -> Any:
        _sock(sock, "socket_listen").listen()
        return VOID

    @_syserrors
    def socket_accept(sock: Any) -> Any:
        return _sock(sock, "socket_accept").accept()

    @_syserrors
    def socket_send(sock: Any, data: Any) -> Any:
        _sock(sock, "socket_send").send(_as_bytes(data))
        return VOID

    @_syserrors
    def socket_recv(sock: Any) -> Any:
        return _sock(sock, "socket_recv").recv().decode(errors="replace")

    @_syserrors
    def socket_close(sock: Any) -> Any:
        _sock(sock, "socket_close").close()
        return VOID

    return {
        "create_socket": create_socket,
        "socket_connect": socket_connect,
        "socket_bind": socket_bind,
        "socket_listen": socket_listen,
        "socket_accept": socket_accept,
        "socket_send": socket_send,
        "socket_recv": socket_recv,
        "socket_close": socket_close,
    }


def b_create_pipe(factory: Any) -> list:
    from repro.errors import ShillRuntimeError

    if not isinstance(factory, PipeFactoryCap):
        raise ShillRuntimeError("create_pipe expects a pipe factory")
    read_cap, write_cap = factory.create()
    return [read_cap, write_cap]


def b_has_ext(cap: Any, ext: str) -> bool:
    """Library helper from Figure 3 ("The library function has_ext also
    uses path")."""
    path = b_path(cap)
    if isinstance(path, SysErrorVal):
        return False
    return path.endswith("." + ext.lstrip("."))


def b_name(cap: Any) -> Any:
    path = b_path(cap)
    if isinstance(path, SysErrorVal):
        return path
    return path.rsplit("/", 1)[-1]


# ---------------------------------------------------------------------------
# strings and lists (pure helpers, no authority involved)
# ---------------------------------------------------------------------------


def b_strcat(*parts: Any) -> str:
    return "".join(p if isinstance(p, str) else shill_repr(p) for p in parts)


def b_to_string(v: Any) -> str:
    return shill_repr(v)


def b_length(v: Any) -> int:
    from repro.errors import ShillRuntimeError

    if isinstance(v, (str, list, tuple)):
        return len(v)
    raise ShillRuntimeError(f"length expects a string or list, got {shill_repr(v)}")


def b_contains(haystack: str, needle: str) -> bool:
    return needle in haystack


def b_split(s: str, sep: str) -> list[str]:
    return s.split(sep)


def b_lines(s: str) -> list[str]:
    return s.splitlines()


def b_starts_with(s: str, prefix: str) -> bool:
    return s.startswith(prefix)


def b_ends_with(s: str, suffix: str) -> bool:
    return s.endswith(suffix)


def b_concat(a: list, b: list) -> list:
    return list(a) + list(b)


def b_push(lst: list, value: Any) -> list:
    return list(lst) + [value]


def b_nth(lst: list, index: int) -> Any:
    from repro.errors import ShillRuntimeError

    if not isinstance(lst, (list, tuple)) or not 0 <= index < len(lst):
        raise ShillRuntimeError(f"nth: bad index {index}")
    return lst[index]


def b_range(n: int) -> list[int]:
    return list(range(int(n)))


# ---------------------------------------------------------------------------
# environment construction
# ---------------------------------------------------------------------------


def make_base_builtins(runtime: "ShillRuntime | None") -> dict[str, Any]:
    """Builtins available to capability-safe scripts."""
    table: dict[str, Any] = {
        # predicates (value versions of the contract predicates)
        "is_file": b_is_file,
        "is_dir": b_is_dir,
        "is_syserror": b_is_syserror,
        "is_bool": ctclib.is_bool_value,
        "is_string": ctclib.is_string_value,
        "is_num": ctclib.is_num_value,
        "is_list": ctclib.is_list_value,
        "is_void": ctclib.is_void_value,
        # capability operations
        "path": b_path,
        "size": b_size,
        "mtime": b_mtime,
        "read": b_read,
        "write": b_write,
        "append": b_append,
        "contents": b_contents,
        "lookup": b_lookup,
        "create_file": b_create_file,
        "create_dir": b_create_dir,
        "unlink": b_unlink,
        "read_symlink": b_read_symlink,
        "create_pipe": b_create_pipe,
        "has_ext": b_has_ext,
        "name": b_name,
        # pure helpers
        "strcat": b_strcat,
        "to_string": b_to_string,
        "length": b_length,
        "contains": b_contains,
        "split": b_split,
        "lines": b_lines,
        "starts_with": b_starts_with,
        "ends_with": b_ends_with,
        "concat": b_concat,
        "push": b_push,
        "nth": b_nth,
        "range": b_range,
    }
    if runtime is not None:
        table["exec"] = runtime.exec_builtin
        table.update(make_socket_builtins(runtime))
    return {name: BuiltinFunction(name, fn) for name, fn in table.items()}
