"""Module loading: ``#lang`` dispatch, require/provide linking.

Security properties enforced here (section 2.5 / 3.1.2):

* capability-safe scripts may require only other capability-safe scripts
  and the (capability-safe) standard library — "capability-safe scripts
  cannot import ambient scripts";
* every exported function crosses the module boundary wrapped in its
  ``provide`` contract, with blame assigned to (provider, importer);
* ambient scripts are parsed under the straight-line restriction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import CapabilitySafetyError, ShillRuntimeError
from repro.contracts.blame import Blame
from repro.lang import ast_ as A
from repro.lang.ctc_elab import elaborate
from repro.lang.env import Env
from repro.lang.parser import check_ambient_restrictions, parse_source
from repro.lang.values import BuiltinFunction

if TYPE_CHECKING:
    from repro.lang.runner import ShillRuntime

CAP_LANG = "shill/cap"
AMBIENT_LANG = "shill/ambient"


def read_lang(source: str, default: str = CAP_LANG) -> tuple[str, str]:
    """Split off the ``#lang`` directive; returns (lang, remaining source)."""
    lines = source.splitlines(keepends=True)
    for i, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#lang"):
            lang = stripped[len("#lang"):].strip()
            rest = "".join(lines[:i]) + "\n" + "".join(lines[i + 1 :])
            return lang, rest
        break
    return default, source


@dataclass
class LoadedModule:
    name: str
    lang: str
    env: Env
    provides: dict[str, A.Ctc] = field(default_factory=dict)


class ModuleLoader:
    def __init__(self, runtime: "ShillRuntime") -> None:
        self.runtime = runtime
        self._cache: dict[str, LoadedModule] = {}
        self._loading: list[str] = []

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------

    def load(self, target: str) -> LoadedModule:
        if target in self._cache:
            return self._cache[target]
        if target in self._loading:
            cycle = " -> ".join(self._loading + [target])
            raise ShillRuntimeError(f"require cycle: {cycle}")
        source = self.runtime.scripts.get(target)
        if source is None:
            raise ShillRuntimeError(f"no such script: {target!r}")
        self._loading.append(target)
        try:
            module = self._eval_module(target, source)
        finally:
            self._loading.pop()
        self._cache[target] = module
        return module

    def _eval_module(self, name: str, source: str) -> LoadedModule:
        lang, body_source = read_lang(source)
        if lang not in (CAP_LANG, AMBIENT_LANG):
            raise ShillRuntimeError(f"unknown #lang {lang!r} in {name}")
        if lang == AMBIENT_LANG:
            raise CapabilitySafetyError(
                f"capability-safe scripts cannot import ambient scripts ({name})"
            )
        module_ast = parse_source(body_source, lang, name)
        env = self.runtime.cap_env()
        self._process_requires(module_ast, env, importer_name=name)
        self.runtime.interp.exec_stmts(module_ast.body, env)
        provides = {p.name: p.contract for p in module_ast.provides}
        for export in provides:
            if not env.bound(export):
                raise ShillRuntimeError(f"{name} provides {export!r} but never defines it")
        return LoadedModule(name=name, lang=lang, env=env, provides=provides)

    # ------------------------------------------------------------------
    # linking
    # ------------------------------------------------------------------

    def _process_requires(self, module_ast: A.Module, env: Env, importer_name: str) -> None:
        for req in module_ast.requires:
            if not req.is_path:
                self._import_builtin(req.target, env, importer_name)
            else:
                loaded = self.load(req.target)
                self.import_exports(loaded, env, importer_name)

    def import_exports(self, module: LoadedModule, env: Env, importer_name: str) -> None:
        """Bind each provided name, wrapped in its contract with blame
        (provider=module, consumer=importer)."""
        for export_name, ctc_ast in module.provides.items():
            value = module.env.lookup(export_name)
            contract = elaborate(ctc_ast, module.env, self.runtime.interp)
            blame = Blame(module.name, importer_name, export_name)
            env.define(export_name, contract.check(value, blame))

    def _import_builtin(self, target: str, env: Env, importer_name: str) -> None:
        exports = self.builtin_exports(target)
        if exports is None:
            raise ShillRuntimeError(f"unknown library {target!r} (required by {importer_name})")
        for name, value in exports.items():
            if callable(value) and not isinstance(value, BuiltinFunction):
                value = BuiltinFunction(name, value)
            if not env.bound(name):
                env.define(name, value)

    def builtin_exports(self, target: str) -> dict[str, Any] | None:
        from repro.contracts.library import EXPORTS as CONTRACTS_EXPORTS
        from repro.stdlib.filesys import EXPORTS as FILESYS_EXPORTS
        from repro.stdlib.io_ import EXPORTS as IO_EXPORTS
        from repro.stdlib.native import make_exports as native_exports

        if target == "shill/contracts":
            return dict(CONTRACTS_EXPORTS)
        if target == "shill/filesys":
            return dict(FILESYS_EXPORTS)
        if target == "shill/io":
            return dict(IO_EXPORTS)
        if target == "shill/native":
            return native_exports(self.runtime)
        return None

    # ------------------------------------------------------------------
    # ambient entry point
    # ------------------------------------------------------------------

    def run_ambient(self, source: str, name: str = "<ambient>") -> Env:
        lang, body_source = read_lang(source, default=AMBIENT_LANG)
        if lang != AMBIENT_LANG:
            raise ShillRuntimeError(f"run_ambient got a {lang} script")
        module_ast = parse_source(body_source, lang, name)
        check_ambient_restrictions(module_ast)
        env = self.runtime.ambient_env()
        self._process_requires(module_ast, env, importer_name=name)
        self.runtime.interp.exec_stmts(module_ast.body, env)
        return env
