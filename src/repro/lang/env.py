"""Lexical environments.

SHILL "does not have mutable variables" (section 2.1), so environments
are write-once: ``define`` adds a fresh binding to the innermost frame
and redefinition is an error.  There is deliberately no ``set``.

Recursive functions still work: module- and block-level definitions
evaluate their right-hand side in an environment where the name is
already reserved, and the closure's captured frame receives the binding
when the definition completes (single assignment, never re-assignment).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import ShillRuntimeError

_MISSING = object()


class Env:
    __slots__ = ("_frame", "_parent")

    def __init__(self, parent: Optional["Env"] = None) -> None:
        self._frame: dict[str, Any] = {}
        self._parent = parent

    def child(self) -> "Env":
        return Env(self)

    def define(self, name: str, value: Any) -> None:
        if name in self._frame:
            raise ShillRuntimeError(
                f"duplicate definition of {name!r} (SHILL has no mutable variables)"
            )
        self._frame[name] = value

    def complete_definition(self, name: str, value: Any) -> None:
        """Tie the knot for recursive definitions: replace the reserved
        placeholder installed before evaluating the right-hand side."""
        self._frame[name] = value

    def lookup(self, name: str) -> Any:
        env: Env | None = self
        while env is not None:
            value = env._frame.get(name, _MISSING)
            if value is not _MISSING:
                return value
            env = env._parent
        raise ShillRuntimeError(f"unbound variable {name!r}")

    def bound(self, name: str) -> bool:
        env: Env | None = self
        while env is not None:
            if name in env._frame:
                return True
            env = env._parent
        return False

    def names(self) -> list[str]:
        out: set[str] = set()
        env: Env | None = self
        while env is not None:
            out.update(env._frame)
            env = env._parent
        return sorted(out)
