"""The SHILL language: lexer, parser, evaluator, modules, runtime."""

from repro.lang.env import Env
from repro.lang.interp import Interp
from repro.lang.lexer import lex
from repro.lang.modules import AMBIENT_LANG, CAP_LANG, ModuleLoader, read_lang
from repro.lang.parser import parse_source
from repro.lang.runner import ShillRuntime, ambient_privs
from repro.lang.values import VOID, BuiltinFunction, Closure, SysErrorVal

__all__ = [
    "Env",
    "Interp",
    "lex",
    "parse_source",
    "ModuleLoader",
    "read_lang",
    "CAP_LANG",
    "AMBIENT_LANG",
    "ShillRuntime",
    "ambient_privs",
    "VOID",
    "BuiltinFunction",
    "Closure",
    "SysErrorVal",
]
