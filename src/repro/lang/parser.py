"""Recursive-descent parser for SHILL scripts and their contracts.

Handles both dialects (the ``#lang`` line is stripped by the module
reader and passed in as ``lang``).  The ambient dialect's restrictions
("straight line code", no functions/conditionals/loops) are enforced
post-parse by :func:`check_ambient_restrictions` so the error messages
can be precise.
"""

from __future__ import annotations

from repro.errors import ShillSyntaxError
from repro.lang import ast_ as A
from repro.lang.lexer import lex
from repro.lang.tokens import T, Token

_CAP_KINDS = {"file", "dir", "cap", "pipe"}


class Parser:
    def __init__(self, tokens: list[Token], filename: str) -> None:
        self.tokens = tokens
        self.pos = 0
        self.filename = filename

    # -- token plumbing -----------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def at(self, ttype: T, value: str | None = None) -> bool:
        tok = self.peek()
        return tok.type is ttype and (value is None or tok.value == value)

    def at_keyword(self, word: str) -> bool:
        return self.at(T.IDENT, word)

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.type is not T.EOF:
            self.pos += 1
        return tok

    def expect(self, ttype: T, value: str | None = None) -> Token:
        tok = self.peek()
        if tok.type is not ttype or (value is not None and tok.value != value):
            want = value or ttype.value
            raise self.error(f"expected {want!r}, found {tok.value!r}", tok)
        return self.advance()

    def error(self, msg: str, tok: Token | None = None) -> ShillSyntaxError:
        tok = tok or self.peek()
        return ShillSyntaxError(msg, tok.line, tok.col, self.filename)

    @staticmethod
    def span_of(tok: Token) -> A.Span:
        return A.Span(tok.line, tok.col)

    # -- module -------------------------------------------------------------------

    def parse_module(self, lang: str) -> A.Module:
        start = self.span_of(self.peek())
        requires: list[A.Require] = []
        provides: list[A.Provide] = []
        body: list[A.Stmt] = []
        while not self.at(T.EOF):
            if self.at_keyword("require"):
                requires.append(self.parse_require())
            elif self.at_keyword("provide"):
                provides.append(self.parse_provide())
            else:
                body.append(self.parse_stmt())
        return A.Module(
            lang=lang,
            requires=tuple(requires),
            provides=tuple(provides),
            body=tuple(body),
            filename=self.filename,
            span=start,
        )

    def parse_require(self) -> A.Require:
        start = self.span_of(self.expect(T.IDENT, "require"))
        if self.at(T.STRING):
            target = self.advance().value
            self.expect(T.SEMI)
            return A.Require(target, is_path=True, span=start)
        parts = [self.expect(T.IDENT).value]
        while self.at(T.SLASH):
            self.advance()
            parts.append(self.expect(T.IDENT).value)
        self.expect(T.SEMI)
        return A.Require("/".join(parts), is_path=False, span=start)

    def parse_provide(self) -> A.Provide:
        start = self.span_of(self.expect(T.IDENT, "provide"))
        name = self.expect(T.IDENT).value
        self.expect(T.COLON)
        contract = self.parse_contract()
        self.expect(T.SEMI)
        return A.Provide(name, contract, span=start)

    # -- statements ------------------------------------------------------------------

    def parse_stmt(self) -> A.Stmt:
        if self.at_keyword("if"):
            return self.parse_if()
        if self.at_keyword("for"):
            return self.parse_for()
        if self.at(T.LBRACE):
            return self.parse_block()
        # definition: IDENT '=' ... (but not '==')
        if self.at(T.IDENT) and not self.peek().is_keyword and self.peek(1).type is T.ASSIGN:
            start = self.span_of(self.peek())
            name = self.advance().value
            self.advance()  # '='
            expr = self.parse_expr()
            self._end_stmt(expr)
            return A.Def(name, expr, span=start)
        expr = self.parse_expr()
        self._end_stmt(expr)
        return A.ExprStmt(expr, span=expr.span)

    def _end_stmt(self, expr: A.Expr) -> None:
        """Statements end with ';' — optional after a brace-closed form
        (function literals), matching the paper's listings."""
        if self.at(T.SEMI):
            self.advance()
        elif not isinstance(expr, A.Fun):
            self.expect(T.SEMI)

    def parse_if(self) -> A.If:
        start = self.span_of(self.peek())
        self.expect(T.IDENT, "if")
        cond = self.parse_expr()
        self.expect(T.IDENT, "then")
        then = self._parse_branch()
        otherwise = None
        if self.at_keyword("else"):
            self.advance()
            otherwise = self._parse_branch()
        return A.If(cond, then, otherwise, span=start)

    def _parse_branch(self) -> A.Stmt:
        """An if/else branch: a nested if/for/block, or a bare expression.
        A trailing ';' is consumed when present, but is not required before
        'else' (``if n <= 1 then 1 else n * fact(n - 1);``)."""
        if self.at_keyword("if"):
            return self.parse_if()
        if self.at_keyword("for"):
            return self.parse_for()
        if self.at(T.LBRACE):
            return self.parse_block()
        expr = self.parse_expr()
        if self.at(T.SEMI):
            self.advance()
        return A.ExprStmt(expr, span=expr.span)

    def parse_for(self) -> A.For:
        start = self.span_of(self.peek())
        self.expect(T.IDENT, "for")
        var = self.expect(T.IDENT).value
        self.expect(T.IDENT, "in")
        iterable = self.parse_expr()
        body = self.parse_block()
        return A.For(var, iterable, body, span=start)

    def parse_block(self) -> A.Block:
        start = self.span_of(self.expect(T.LBRACE))
        stmts: list[A.Stmt] = []
        while not self.at(T.RBRACE):
            if self.at(T.EOF):
                raise self.error("unterminated block")
            stmts.append(self.parse_stmt())
        self.expect(T.RBRACE)
        return A.Block(tuple(stmts), span=start)

    # -- expressions -------------------------------------------------------------------

    def parse_expr(self) -> A.Expr:
        return self.parse_or()

    def parse_or(self) -> A.Expr:
        left = self.parse_and()
        while self.at(T.OR):
            self.advance()
            left = A.BinOp("||", left, self.parse_and(), span=left.span)
        return left

    def parse_and(self) -> A.Expr:
        left = self.parse_cmp()
        while self.at(T.AND):
            self.advance()
            left = A.BinOp("&&", left, self.parse_cmp(), span=left.span)
        return left

    _CMP = {T.EQ: "==", T.NE: "!=", T.LT: "<", T.GT: ">", T.LE: "<=", T.GE: ">="}

    def parse_cmp(self) -> A.Expr:
        left = self.parse_add()
        if self.peek().type in self._CMP:
            op = self._CMP[self.advance().type]
            return A.BinOp(op, left, self.parse_add(), span=left.span)
        return left

    def parse_add(self) -> A.Expr:
        left = self.parse_mul()
        while self.peek().type in (T.PLUS, T.MINUS):
            op = "+" if self.advance().type is T.PLUS else "-"
            left = A.BinOp(op, left, self.parse_mul(), span=left.span)
        return left

    def parse_mul(self) -> A.Expr:
        left = self.parse_unary()
        while self.peek().type in (T.STAR, T.SLASH, T.PERCENT):
            tok = self.advance()
            op = {"*": "*", "/": "/", "%": "%"}[tok.value]
            left = A.BinOp(op, left, self.parse_unary(), span=left.span)
        return left

    def parse_unary(self) -> A.Expr:
        if self.at(T.NOT):
            start = self.span_of(self.advance())
            return A.UnOp("!", self.parse_unary(), span=start)
        if self.at(T.MINUS):
            start = self.span_of(self.advance())
            return A.UnOp("-", self.parse_unary(), span=start)
        return self.parse_postfix()

    def parse_postfix(self) -> A.Expr:
        expr = self.parse_primary()
        while self.at(T.LPAREN):
            args, kwargs = self.parse_call_args()
            expr = A.Call(expr, tuple(args), tuple(kwargs), span=expr.span)
        return expr

    def parse_call_args(self) -> tuple[list[A.Expr], list[tuple[str, A.Expr]]]:
        self.expect(T.LPAREN)
        args: list[A.Expr] = []
        kwargs: list[tuple[str, A.Expr]] = []
        while not self.at(T.RPAREN):
            # keyword argument: IDENT '=' expr
            if self.at(T.IDENT) and not self.peek().is_keyword and self.peek(1).type is T.ASSIGN:
                key = self.advance().value
                self.advance()
                kwargs.append((key, self.parse_expr()))
            else:
                if kwargs:
                    raise self.error("positional argument after keyword argument")
                args.append(self.parse_expr())
            if not self.at(T.RPAREN):
                self.expect(T.COMMA)
        self.expect(T.RPAREN)
        return args, kwargs

    def parse_primary(self) -> A.Expr:
        tok = self.peek()
        if tok.type is T.NUMBER:
            self.advance()
            value: object = float(tok.value) if "." in tok.value else int(tok.value)
            return A.Lit(value, span=self.span_of(tok))
        if tok.type is T.STRING:
            self.advance()
            return A.Lit(tok.value, span=self.span_of(tok))
        if self.at_keyword("true"):
            self.advance()
            return A.Lit(True, span=self.span_of(tok))
        if self.at_keyword("false"):
            self.advance()
            return A.Lit(False, span=self.span_of(tok))
        if self.at_keyword("fun"):
            return self.parse_fun()
        if tok.type is T.IDENT:
            if tok.is_keyword:
                raise self.error(f"unexpected keyword {tok.value!r}")
            self.advance()
            return A.Var(tok.value, span=self.span_of(tok))
        if tok.type is T.LBRACKET:
            return self.parse_list()
        if tok.type is T.LBRACE:
            # A block expression: its value is the last statement's value.
            return self.parse_block()
        if tok.type is T.LPAREN:
            self.advance()
            expr = self.parse_expr()
            self.expect(T.RPAREN)
            return expr
        raise self.error(f"unexpected token {tok.value!r}")

    def parse_fun(self) -> A.Fun:
        start = self.span_of(self.peek())
        self.expect(T.IDENT, "fun")
        self.expect(T.LPAREN)
        params: list[str] = []
        while not self.at(T.RPAREN):
            params.append(self.expect(T.IDENT).value)
            if not self.at(T.RPAREN):
                self.expect(T.COMMA)
        self.expect(T.RPAREN)
        body = self.parse_block()
        return A.Fun(tuple(params), body, span=start)

    def parse_list(self) -> A.ListLit:
        start = self.span_of(self.peek())
        self.expect(T.LBRACKET)
        items: list[A.Expr] = []
        while not self.at(T.RBRACKET):
            items.append(self.parse_expr())
            if not self.at(T.RBRACKET):
                self.expect(T.COMMA)
        self.expect(T.RBRACKET)
        return A.ListLit(tuple(items), span=start)

    # -- contracts ------------------------------------------------------------------------

    def parse_contract(self) -> A.Ctc:
        if self.at_keyword("forall"):
            return self.parse_forall()
        return self.parse_ctc_arrow()

    def parse_forall(self) -> A.CtcForall:
        start = self.span_of(self.peek())
        self.expect(T.IDENT, "forall")
        var = self.expect(T.IDENT).value
        self.expect(T.IDENT, "with")
        self.expect(T.LBRACE)
        bound: list[str] = []
        while not self.at(T.RBRACE):
            bound.append(self.expect(T.PRIV).value)
            if not self.at(T.RBRACE):
                self.expect(T.COMMA)
        self.expect(T.RBRACE)
        self.expect(T.DOT)
        body = self.parse_ctc_arrow()
        if not isinstance(body, A.CtcFun):
            raise self.error("forall body must be a function contract")
        return A.CtcForall(var, tuple(bound), body, span=start)

    def parse_ctc_arrow(self) -> A.Ctc:
        """Either a named-parameter function contract, or ``C [-> R]``."""
        if self.at(T.LBRACE):
            return self.parse_ctc_fun_named()
        left = self.parse_ctc_or()
        if self.at(T.ARROW):
            self.advance()
            result = self.parse_ctc_arrow()
            return A.CtcFun((("arg", left),), result, span=left.span)
        return left

    def parse_ctc_fun_named(self) -> A.CtcFun:
        start = self.span_of(self.expect(T.LBRACE))
        params: list[tuple[str, A.Ctc]] = []
        while not self.at(T.RBRACE):
            name = self.expect(T.IDENT).value
            self.expect(T.COLON)
            params.append((name, self.parse_contract()))
            if not self.at(T.RBRACE):
                self.expect(T.COMMA)
        self.expect(T.RBRACE)
        self.expect(T.ARROW)
        result = self.parse_ctc_arrow()
        return A.CtcFun(tuple(params), result, span=start)

    def parse_ctc_or(self) -> A.Ctc:
        parts = [self.parse_ctc_and()]
        while self.at(T.OR_CTC) or self.at(T.OR):
            self.advance()
            parts.append(self.parse_ctc_and())
        return parts[0] if len(parts) == 1 else A.CtcOr(tuple(parts), span=parts[0].span)

    def parse_ctc_and(self) -> A.Ctc:
        parts = [self.parse_ctc_atom()]
        while self.at(T.AND_CTC) or self.at(T.AND):
            self.advance()
            parts.append(self.parse_ctc_atom())
        return parts[0] if len(parts) == 1 else A.CtcAnd(tuple(parts), span=parts[0].span)

    def parse_ctc_atom(self) -> A.Ctc:
        if self.at(T.LPAREN):
            self.advance()
            inner = self.parse_contract()
            self.expect(T.RPAREN)
            return inner
        if self.at(T.LBRACE):
            return self.parse_ctc_fun_named()
        tok = self.expect(T.IDENT)
        name = tok.value
        if self.at(T.LPAREN) and (name in _CAP_KINDS or name == "socket_factory"):
            return self.parse_ctc_cap(name, self.span_of(tok))
        return A.CtcName(name, span=self.span_of(tok))

    def parse_ctc_cap(self, kind: str, start: A.Span) -> A.CtcCap:
        self.expect(T.LPAREN)
        items: list[A.CtcPrivItem] = []
        while not self.at(T.RPAREN):
            priv_tok = self.expect(T.PRIV)
            priv = priv_tok.value
            modifier: tuple[str, ...] | None = None
            modifier_full = False
            if self.at_keyword("with"):
                self.advance()
                if self.at(T.LBRACE):
                    self.advance()
                    mods: list[str] = []
                    while not self.at(T.RBRACE):
                        mods.append(self.expect(T.PRIV).value)
                        if not self.at(T.RBRACE):
                            self.expect(T.COMMA)
                    self.expect(T.RBRACE)
                    modifier = tuple(mods)
                else:
                    word = self.expect(T.IDENT).value
                    if word not in ("full_privs", "full_priv"):
                        raise self.error(f"expected privilege set or full_privs, got {word!r}")
                    modifier_full = True
            items.append(A.CtcPrivItem(priv, modifier, modifier_full,
                                       span=self.span_of(priv_tok)))
            if not self.at(T.RPAREN):
                self.expect(T.COMMA)
        self.expect(T.RPAREN)
        return A.CtcCap(kind, tuple(items), span=start)


def parse_source(source: str, lang: str, filename: str = "<script>") -> A.Module:
    tokens = lex(source, filename)
    return Parser(tokens, filename).parse_module(lang)


def check_ambient_restrictions(module: A.Module) -> None:
    """Enforce section 2.5: "ambient scripts contain straight line code
    that can import capability-safe scripts, create capabilities ... and
    call functions exported by capability-safe scripts."  No function
    definitions, conditionals, or loops."""
    for stmt in module.body:
        _check_ambient_stmt(stmt, module.filename)
    if module.provides:
        raise ShillSyntaxError(
            "ambient scripts cannot provide functions", filename=module.filename
        )


def _check_ambient_stmt(stmt: A.Stmt, filename: str) -> None:
    if isinstance(stmt, (A.If, A.For, A.Block)):
        raise ShillSyntaxError(
            "ambient scripts are straight-line: no if/for/blocks", filename=filename
        )
    expr = stmt.expr if isinstance(stmt, (A.Def, A.ExprStmt)) else None
    if expr is not None:
        _check_ambient_expr(expr, filename)


def _check_ambient_expr(expr: A.Expr, filename: str) -> None:
    if isinstance(expr, A.Fun):
        raise ShillSyntaxError(
            "ambient scripts cannot define functions", filename=filename
        )
    for child in getattr(expr, "args", ()) or ():
        _check_ambient_expr(child, filename)
    for _, child in getattr(expr, "kwargs", ()) or ():
        _check_ambient_expr(child, filename)
    if isinstance(expr, A.Call):
        _check_ambient_expr(expr.fn, filename)
    if isinstance(expr, A.ListLit):
        for child in expr.items:
            _check_ambient_expr(child, filename)
    if isinstance(expr, A.BinOp):
        _check_ambient_expr(expr.left, filename)
        _check_ambient_expr(expr.right, filename)
    if isinstance(expr, A.UnOp):
        _check_ambient_expr(expr.operand, filename)
