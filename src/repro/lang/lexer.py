r"""Lexer for SHILL's concrete syntax.

Notable rules:

* ``# ...`` comments run to end of line (but the ``#lang`` directive on
  the first line is handled by the module reader before lexing);
* ``+`` immediately followed by a letter lexes as a **privilege literal**
  (``+read``, ``+create-file`` — hyphens allowed inside); addition must
  therefore be written with a space (``a + b``), which matches the
  paper's style;
* ``\/`` and ``/\`` are the contract disjunction/conjunction operators;
* identifiers are ``[A-Za-z_][A-Za-z0-9_]*``.
"""

from __future__ import annotations

from repro.errors import ShillSyntaxError
from repro.lang.tokens import T, Token

def _advance_pos(source: str, start: int, stop: int, line: int, col: int) -> tuple[int, int]:
    """(line, col) after consuming ``source[start:stop]``.  String literals
    may span lines, and a lexer that does not count their newlines reports
    every later token one line short."""
    chunk = source[start:stop]
    newlines = chunk.count("\n")
    if newlines:
        return line + newlines, stop - (source.rfind("\n", start, stop) + 1) + 1
    return line, col + (stop - start)


_SIMPLE = {
    "(": T.LPAREN,
    ")": T.RPAREN,
    "{": T.LBRACE,
    "}": T.RBRACE,
    "[": T.LBRACKET,
    "]": T.RBRACKET,
    ",": T.COMMA,
    ";": T.SEMI,
    ":": T.COLON,
    ".": T.DOT,
    "*": T.STAR,
    "%": T.PERCENT,
}


def lex(source: str, filename: str = "<script>") -> list[Token]:
    tokens: list[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def error(msg: str) -> ShillSyntaxError:
        return ShillSyntaxError(msg, line, col, filename)

    def push(ttype: T, value: str) -> None:
        tokens.append(Token(ttype, value, line, col))

    while i < n:
        ch = source[i]
        # whitespace
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        # comments
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        # strings (double quotes; '' ... '' also accepted as in the paper's listings)
        if ch == '"':
            j = i + 1
            out: list[str] = []
            while j < n and source[j] != '"':
                if source[j] == "\\" and j + 1 < n:
                    esc = source[j + 1]
                    out.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, "\\" + esc))
                    j += 2
                else:
                    out.append(source[j])
                    j += 1
            if j >= n:
                raise error("unterminated string literal")
            push(T.STRING, "".join(out))
            line, col = _advance_pos(source, i, j + 1, line, col)
            i = j + 1
            continue
        if source.startswith("''", i):
            end = source.find("''", i + 2)
            if end == -1:
                raise error("unterminated string literal")
            push(T.STRING, source[i + 2 : end])
            line, col = _advance_pos(source, i, end + 2, line, col)
            i = end + 2
            continue
        # numbers
        if ch.isdigit():
            j = i
            while j < n and (source[j].isdigit() or source[j] == "."):
                j += 1
            push(T.NUMBER, source[i:j])
            col += j - i
            i = j
            continue
        # identifiers
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            push(T.IDENT, source[i:j])
            col += j - i
            i = j
            continue
        # privilege literal: '+' immediately followed by a letter
        if ch == "+" and i + 1 < n and (source[i + 1].isalpha()):
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] in "-_"):
                j += 1
            push(T.PRIV, source[i + 1 : j])
            col += j - i
            i = j
            continue
        # multi-character operators (longest match first)
        for text, ttype in (
            ("->", T.ARROW),
            ("\\/", T.OR_CTC),
            ("/\\", T.AND_CTC),
            ("&&", T.AND),
            ("||", T.OR),
            ("==", T.EQ),
            ("!=", T.NE),
            ("<=", T.LE),
            (">=", T.GE),
        ):
            if source.startswith(text, i):
                push(ttype, text)
                col += len(text)
                i += len(text)
                break
        else:
            if ch in _SIMPLE:
                push(_SIMPLE[ch], ch)
            elif ch == "=":
                push(T.ASSIGN, ch)
            elif ch == "<":
                push(T.LT, ch)
            elif ch == ">":
                push(T.GT, ch)
            elif ch == "!":
                push(T.NOT, ch)
            elif ch == "+":
                push(T.PLUS, ch)
            elif ch == "-":
                push(T.MINUS, ch)
            elif ch == "/":
                push(T.SLASH, ch)
            else:
                raise error(f"unexpected character {ch!r}")
            i += 1
            col += 1

    tokens.append(Token(T.EOF, "", line, col))
    return tokens
