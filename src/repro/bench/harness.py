"""Timing harness: mean ± 95% CI and significance testing.

Follows the paper's methodology (section 4.2): "We ran each configuration
of each benchmark 50 times and computed the mean time to completion along
with a 95% confidence interval. ... We compare performance with
'Baseline' using a two-sided t-test on the difference in mean run time.
Statistical significance was determined at the 0.05 level after a
Bonferroni correction for multiple hypothesis testing within each
benchmark."  Run counts are scaled down by default so the whole suite
finishes in minutes; pass ``runs=50`` for the full treatment.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable

from scipy import stats


@dataclass
class Sample:
    """Timing samples for one (benchmark, configuration) cell.

    Alongside wall-clock, the harness records a **deterministic kernel
    op-count delta** per run (total syscalls, vnode ops, MAC checks,
    sandboxes created, …) whenever the task exposes the kernel it runs
    on.  Wall-clock means are noisy under load; the op counts are exact,
    so qualitative shape assertions gate on them instead.
    """

    name: str
    seconds: list[float] = field(default_factory=list)
    ops: list[dict[str, int]] = field(default_factory=list)
    traces: list[dict[str, dict[str, int]]] = field(default_factory=list)

    @property
    def op_counts(self) -> dict[str, int]:
        """The per-run op-count delta (empty if the task exposed no
        kernel).  Runs of a deterministic workload are identical; the
        last run is reported."""
        return dict(self.ops[-1]) if self.ops else {}

    @property
    def op_trace(self) -> dict[str, dict[str, int]]:
        """The per-run per-operation-name delta — the full trace behind
        :attr:`op_counts`' aggregates."""
        return self.traces[-1] if self.traces else {}

    @property
    def mean(self) -> float:
        return sum(self.seconds) / len(self.seconds)

    @property
    def ci95(self) -> float:
        n = len(self.seconds)
        if n < 2:
            return 0.0
        sd = math.sqrt(sum((x - self.mean) ** 2 for x in self.seconds) / (n - 1))
        t_crit = stats.t.ppf(0.975, df=n - 1)
        return float(t_crit * sd / math.sqrt(n))

    def ratio_to(self, base: "Sample") -> float:
        return self.mean / base.mean if base.mean else float("inf")


def measure(make_task: Callable[[], Callable[[], None]], runs: int = 5, warmup: int = 1,
            name: str = "") -> Sample:
    """Time ``runs`` executions.  ``make_task`` builds a fresh closure per
    run (workload state is reconstructed outside the timed region — cheap
    now that world boots fork a cached template).  Tasks carrying a
    ``kernel`` attribute additionally get their kernel-op delta recorded.
    """
    for _ in range(warmup):
        make_task()()
    sample = Sample(name)
    for _ in range(runs):
        task = make_task()
        kernel = getattr(task, "kernel", None)
        before = kernel.stats.snapshot() if kernel is not None else None
        before_trace = kernel.stats.trace() if kernel is not None else None
        start = time.perf_counter()
        task()
        sample.seconds.append(time.perf_counter() - start)
        if before is not None:
            from repro.kernel.kernel import KernelStats

            sample.ops.append(KernelStats.delta(before, kernel.stats.snapshot()))
            sample.traces.append(
                KernelStats.trace_delta(before_trace, kernel.stats.trace()))
    return sample


def significant_vs_baseline(base: Sample, other: Sample, comparisons: int = 1,
                            alpha: float = 0.05) -> bool:
    """Two-sided Welch t-test with Bonferroni correction, as in the paper."""
    if len(base.seconds) < 2 or len(other.seconds) < 2:
        return False
    if base.seconds == other.seconds:
        return False
    result = stats.ttest_ind(base.seconds, other.seconds, equal_var=False)
    return bool(result.pvalue < alpha / max(comparisons, 1))


def format_row(bench: str, cells: dict[str, Sample], baseline_key: str = "baseline") -> str:
    """One Figure 9 row: every configuration's mean ± CI, its ratio to
    baseline, and a '*' when the difference is significant."""
    base = cells[baseline_key]
    comparisons = max(len(cells) - 1, 1)
    parts = [f"{bench:12s}"]
    for key, sample in cells.items():
        mark = ""
        if key != baseline_key and significant_vs_baseline(base, sample, comparisons):
            mark = "*"
        parts.append(
            f"{key}={sample.mean * 1000:8.2f}±{sample.ci95 * 1000:5.2f}ms"
            f" ({sample.ratio_to(base):4.2f}x{mark})"
        )
    return "  ".join(parts)
