"""The four benchmark configurations of Figure 9, per workload.

* **baseline** — the command runs on a kernel *without* the SHILL module
  loaded;
* **installed** — the module is loaded but the command runs unsandboxed
  ("SHILL installed (but not active)");
* **sandboxed** — a SHILL script creates a capability-based sandbox for
  the command;
* **shill** — the task is re-implemented as a pure SHILL script
  (available for Grading, Emacs, and Find, as in the paper).

Workload sizes are scaled down from the paper's (documented in
DESIGN.md §4); override the ``Scale`` to change them.  Every timed task
runs against a fresh world so configurations always see identical state
— since the migration onto the world fork engine this is a copy-on-write
fork of a cached boot image, not a rebuild, so reconstructing state per
run is cheap.  Tasks expose the kernel they run on, letting the harness
record deterministic op counts next to the wall-clock samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.casestudies.apache import apache_bench, baseline_bench, web_world
from repro.casestudies.findgrep import run_baseline as find_baseline
from repro.casestudies.findgrep import run_fine, run_simple, usr_src_world
from repro.casestudies.grading import (
    grading_world,
    run_baseline_grading,
    run_shill_grading,
)
from repro.casestudies.package_mgmt import PackageManager, emacs_world
from repro.kernel.kernel import Kernel

Task = Callable[[], None]
MakeTask = Callable[[], Task]


@dataclass
class Scale:
    """Workload sizes (paper-scale values in comments)."""

    grading_students: int = 8      # paper: a whole course
    grading_tests: int = 3
    src_subsystems: int = 6       # paper: 57,817 files / 15,376 .c
    src_files_per_dir: int = 12
    apache_requests: int = 12     # paper: 5,000 requests x 50MB
    apache_file_kb: int = 256
    emacs_sources: int = 6


SCALE = Scale()

EMACS_PHASES = ("download", "untar", "configure", "make", "install", "uninstall")


# ---------------------------------------------------------------------------
# world preparation (untimed; each call forks a cached boot image)
# ---------------------------------------------------------------------------


def _grading_kernel(install_shill: bool) -> Kernel:
    return grading_world(
        install_shill,
        students=SCALE.grading_students,
        tests=SCALE.grading_tests,
        malicious_reader=False,
        malicious_writer=False,
    ).boot().kernel


def _find_kernel(install_shill: bool) -> Kernel:
    return usr_src_world(
        install_shill,
        subsystems=SCALE.src_subsystems, files_per_dir=SCALE.src_files_per_dir,
    ).boot().kernel


def _apache_kernel(install_shill: bool) -> Kernel:
    return web_world(
        install_shill, file_kb=SCALE.apache_file_kb, small_files=2,
    ).boot().kernel


def _emacs_kernel(phase: str, install_shill: bool) -> Kernel:
    """A world prepared (with direct commands) up to — excluding — ``phase``."""
    kernel = emacs_world(install_shill).boot().kernel
    order = EMACS_PHASES
    for previous in order[: order.index(phase)]:
        _DIRECT_EMACS[previous](kernel)
    return kernel


# ---------------------------------------------------------------------------
# direct (baseline / installed) command runners
# ---------------------------------------------------------------------------


def _spawn(kernel: Kernel, argv: list[str], cwd: str = "/root") -> None:
    launcher = kernel.spawn_process("root", cwd)
    sys = kernel.syscalls(launcher)
    status = sys.spawn(argv[0], argv)
    if status != 0:
        raise RuntimeError(f"{argv[0]} exited {status}")


SRCDIR = "/root/downloads/emacs-24.3"
ARCHIVE = "/root/downloads/emacs-24.3.tar.gz"
PREFIX = "/usr/local/emacs"
REMOVABLE = [f"{PREFIX}/bin/emacs", f"{PREFIX}/share/DOC", f"{PREFIX}/share/COPYING"]


def _direct_download(kernel: Kernel) -> None:
    _spawn(kernel, ["/usr/local/bin/curl", "-o", ARCHIVE,
                    "http://ftp.gnu.org/gnu/emacs/emacs-24.3.tar.gz"])


def _direct_untar(kernel: Kernel) -> None:
    _spawn(kernel, ["/usr/bin/tar", "xzf", ARCHIVE, "-C", "/root/downloads"])


def _direct_configure(kernel: Kernel) -> None:
    _spawn(kernel, [f"{SRCDIR}/configure"], cwd=SRCDIR)


def _direct_make(kernel: Kernel) -> None:
    _spawn(kernel, ["/usr/local/bin/gmake", "-C", SRCDIR], cwd=SRCDIR)


def _direct_install(kernel: Kernel) -> None:
    _spawn(kernel, ["/usr/local/bin/gmake", "-C", SRCDIR, "install"], cwd=SRCDIR)


def _direct_uninstall(kernel: Kernel) -> None:
    _spawn(kernel, ["/bin/rm", "-f"] + REMOVABLE)


_DIRECT_EMACS = {
    "download": _direct_download,
    "untar": _direct_untar,
    "configure": _direct_configure,
    "make": _direct_make,
    "install": _direct_install,
    "uninstall": _direct_uninstall,
}

_PM_PHASE = {
    "download": lambda pm: pm.download(),
    "untar": lambda pm: pm.unpack(),
    "configure": lambda pm: pm.configure(),
    "make": lambda pm: pm.build(),
    "install": lambda pm: pm.install(),
    "uninstall": lambda pm: pm.uninstall(),
}


def _direct_emacs_pipeline(kernel: Kernel) -> None:
    for phase in EMACS_PHASES:
        _DIRECT_EMACS[phase](kernel)


# ---------------------------------------------------------------------------
# the workload registry
# ---------------------------------------------------------------------------


def _workloads() -> dict[str, dict[str, MakeTask]]:
    reg: dict[str, dict[str, MakeTask]] = {}

    from repro.casestudies.grading import run_shellscript_grading

    reg["Grading"] = {
        # Baseline and installed run the grading *shell script* directly;
        # "sandboxed" secures that same script in one SHILL sandbox; the
        # SHILL version is the fine-grained rewrite.  Exactly the paper's
        # four Grading configurations.
        "baseline": lambda: _task_grading_direct(False),
        "installed": lambda: _task_grading_direct(True),
        "sandboxed": lambda: _task(lambda k: run_shellscript_grading(k), _grading_kernel(True)),
        "shill": lambda: _task(lambda k: run_shill_grading(k), _grading_kernel(True)),
    }

    reg["Emacs"] = {
        "baseline": lambda: _task(_direct_emacs_pipeline, _emacs_kernel("download", False)),
        "installed": lambda: _task(_direct_emacs_pipeline, _emacs_kernel("download", True)),
        "shill": lambda: _task(lambda k: PackageManager(k).full_cycle(), _emacs_kernel("download", True)),
    }

    for phase in EMACS_PHASES:
        title = phase.capitalize()
        reg[title] = {
            "baseline": _make_emacs_direct(phase, False),
            "installed": _make_emacs_direct(phase, True),
            "sandboxed": _make_emacs_sandboxed(phase),
        }

    reg["Apache"] = {
        "baseline": lambda: _task(
            lambda k: baseline_bench(k, requests=SCALE.apache_requests), _apache_kernel(False)),
        "installed": lambda: _task(
            lambda k: baseline_bench(k, requests=SCALE.apache_requests), _apache_kernel(True)),
        "sandboxed": lambda: _task(
            lambda k: apache_bench(k, requests=SCALE.apache_requests), _apache_kernel(True)),
    }

    reg["Find"] = {
        "baseline": lambda: _task(lambda k: find_baseline(k), _find_kernel(False)),
        "installed": lambda: _task(lambda k: find_baseline(k), _find_kernel(True)),
        "sandboxed": lambda: _task(lambda k: run_simple(k), _find_kernel(True)),
        "shill": lambda: _task(lambda k: run_fine(k), _find_kernel(True)),
    }
    return reg


class _Cell:
    """A timed task bound to the kernel it runs on; the harness uses the
    ``kernel`` attribute to snapshot deterministic op counts around the
    timed region."""

    __slots__ = ("_fn", "kernel")

    def __init__(self, fn: Callable[[Kernel], object], kernel: Kernel) -> None:
        self._fn = fn
        self.kernel = kernel

    def __call__(self) -> None:
        self._fn(self.kernel)


def _task(fn: Callable[[Kernel], object], kernel: Kernel) -> Task:
    return _Cell(fn, kernel)


def _task_grading_direct(install_shill: bool) -> Task:
    return _Cell(run_baseline_grading, _grading_kernel(install_shill))


def _make_emacs_direct(phase: str, install_shill: bool) -> MakeTask:
    def make() -> Task:
        return _Cell(_DIRECT_EMACS[phase], _emacs_kernel(phase, install_shill))

    return make


def _make_emacs_sandboxed(phase: str) -> MakeTask:
    def make() -> Task:
        return _Cell(lambda k: _PM_PHASE[phase](PackageManager(k)),
                     _emacs_kernel(phase, True))

    return make


#: benchmark name -> config name -> MakeTask (call once per run).
WORKLOADS: dict[str, dict[str, MakeTask]] = _workloads()

#: the Figure 9 row order.
FIG9_BENCHMARKS = [
    "Grading", "Emacs", "Download", "Untar", "Configure",
    "Make", "Install", "Uninstall", "Apache", "Find",
]
