"""Figure 10: performance breakdown of the SHILL-side benchmarks.

"We inserted instrumentation to measure the total execution time, Racket
startup (which includes script compilation, and starting the runtime),
setup of sandboxes, and sandboxed execution for each benchmark. ...
Remaining time (i.e., time not spent on Racket startup, sandbox setup, or
sandboxed execution) is time spent executing SHILL scripts, including
contract checking."

The accumulators live on the runtime engine; :class:`repro.api.Session`
snapshots them into :class:`repro.api.RunResult` records, and this
module packages those into the Figure 10 table for the four profiled
benchmarks: Uninstall, Download, Grading, Find.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.api import RunResult
from repro.casestudies.findgrep import run_fine
from repro.casestudies.grading import run_shill_grading
from repro.casestudies.package_mgmt import PackageManager


@dataclass
class Breakdown:
    benchmark: str
    total: float
    startup: float
    sandbox_setup: float
    sandbox_exec: float
    sandbox_count: int

    @property
    def remaining(self) -> float:
        return max(self.total - self.startup - self.sandbox_setup - self.sandbox_exec, 0.0)

    def row(self) -> str:
        return (
            f"{self.benchmark:10s} total={self.total * 1000:9.2f}ms "
            f"startup={self.startup * 1000:7.2f}ms "
            f"setup={self.sandbox_setup * 1000:7.2f}ms "
            f"exec={self.sandbox_exec * 1000:8.2f}ms "
            f"remaining={self.remaining * 1000:7.2f}ms "
            f"sandboxes={self.sandbox_count}"
        )


def _from_run(benchmark: str, run: RunResult, total: float) -> Breakdown:
    profile = run.profile
    return Breakdown(
        benchmark=benchmark,
        total=total,
        startup=profile["startup"],
        sandbox_setup=profile["sandbox_setup"],
        sandbox_exec=profile["sandbox_exec"],
        sandbox_count=run.sandbox_count,
    )


def breakdown_grading(kernel) -> Breakdown:
    start = time.perf_counter()
    result = run_shill_grading(kernel)
    return _from_run("Grading", result.run, time.perf_counter() - start)


def breakdown_find(kernel) -> Breakdown:
    start = time.perf_counter()
    result = run_fine(kernel)
    return _from_run("Find", result.run, time.perf_counter() - start)


def breakdown_download(kernel) -> Breakdown:
    start = time.perf_counter()
    pm = PackageManager(kernel)
    pm.download()
    return _from_run("Download", pm.session.result(), time.perf_counter() - start)


def breakdown_uninstall(kernel) -> Breakdown:
    """Requires a kernel prepared through the install phase."""
    pm = PackageManager(kernel)
    pm.download()
    pm.unpack()
    pm.configure()
    pm.build()
    pm.install()
    # A fresh PackageManager (hence fresh session) mirrors invoking a
    # fresh shill process for the task, so only uninstall is profiled.
    start = time.perf_counter()
    pm2 = PackageManager(kernel)
    pm2.uninstall()
    return _from_run("Uninstall", pm2.session.result(), time.perf_counter() - start)
