"""Benchmark harness reproducing the paper's evaluation (section 4.2)."""

from repro.bench.configs import FIG9_BENCHMARKS, SCALE, WORKLOADS
from repro.bench.harness import Sample, format_row, measure, significant_vs_baseline

__all__ = [
    "WORKLOADS",
    "FIG9_BENCHMARKS",
    "SCALE",
    "Sample",
    "measure",
    "format_row",
    "significant_vs_baseline",
]
