"""Per-cell kernel-op attribution: where a fig9 cell spends its ops.

``repro bench profile BENCH CONFIG`` runs one Figure 9 cell
(:data:`repro.bench.configs.WORKLOADS`) and reports exactly which
syscalls, vnode operations, and MAC hooks the timed region executed —
the numbers ``benchmarks/baseline_ops.json`` aggregates, broken out per
operation name so a perf regression (or win) is attributable to the
path that caused it.  Alongside the op attribution it measures the
**dispatch payload** the executors would ship for this cell's machine:
the full snapshot before the run, the full snapshot after, and the
delta frame encoding only the run's divergence — the bytes a
store/remote worker boots from when the template has mutated.

The profile is deterministic except for wall-clock; ``--json`` emits
the machine-readable form the CI smoke step checks.
"""

from __future__ import annotations

import time
from typing import Any

from repro.bench.configs import FIG9_BENCHMARKS, WORKLOADS


def profile_cell(bench: str, config: str) -> dict[str, Any]:
    """Run one fig9 cell and attribute its kernel work.

    Returns a plain-data report: per-name ``syscalls`` / ``vnode_ops`` /
    ``mac_hooks`` deltas for the timed region, aggregate ``ops`` (the
    baseline_ops.json counters), ``dcache`` hit/miss counts, wall-clock
    ``seconds``, and ``payload`` sizes (full-before, full-after, delta)
    in bytes.
    """
    from repro.kernel.serialize import (
        restore_kernel,
        snapshot_digest,
        snapshot_kernel,
        snapshot_kernel_delta,
    )

    try:
        make = WORKLOADS[bench][config]
    except KeyError:
        known = ", ".join(
            f"{b}/{c}" for b in FIG9_BENCHMARKS for c in WORKLOADS.get(b, ()))
        raise KeyError(f"no fig9 cell {bench}/{config}; cells: {known}") from None
    task = make()
    kernel = getattr(task, "kernel", None)
    if kernel is None:
        raise RuntimeError(f"cell {bench}/{config} exposes no kernel to profile")

    # The pre-run snapshot is both the payload baseline and the delta
    # base: what a store/remote worker would boot from today, and what
    # the post-run delta diverges against.
    pre_payload = snapshot_kernel(kernel)
    pre_digest = snapshot_digest(kernel)
    base = restore_kernel(pre_payload)

    before_trace = kernel.stats.trace()
    before_ops = kernel.stats.snapshot()
    start = time.perf_counter()
    task()
    seconds = time.perf_counter() - start
    after_trace = kernel.stats.trace()
    after_ops = kernel.stats.snapshot()

    post_payload = snapshot_kernel(kernel)
    delta_payload = snapshot_kernel_delta(kernel, base, pre_digest)

    trace = type(kernel.stats).trace_delta(before_trace, after_trace)
    ops = type(kernel.stats).delta(before_ops, after_ops)
    return {
        "benchmark": bench,
        "config": config,
        "seconds": seconds,
        "ops": ops,
        "syscalls": dict(sorted(trace["syscalls"].items())),
        "vnode_ops": dict(sorted(trace["vnode_ops"].items())),
        "mac_hooks": dict(sorted(trace["mac_hooks"].items())),
        "dcache": {
            "hits": ops.get("dcache_hits", 0),
            "misses": ops.get("dcache_misses", 0),
        },
        "payload": {
            "full_before": len(pre_payload),
            "full_after": len(post_payload),
            "delta": len(delta_payload),
        },
    }


def render_profile(report: dict[str, Any]) -> str:
    """The human-readable table for one :func:`profile_cell` report."""
    lines = [
        f"== {report['benchmark']} / {report['config']} ==",
        f"wall-clock      {report['seconds'] * 1000:.2f} ms",
    ]
    for section in ("syscalls", "vnode_ops", "mac_hooks"):
        counts = report[section]
        total = sum(counts.values())
        lines.append(f"{section:15s} {total} total")
        width = max((len(name) for name in counts), default=0)
        for name, count in sorted(counts.items(), key=lambda kv: -kv[1]):
            lines.append(f"    {name:{width}s}  {count}")
    dcache = report["dcache"]
    lines.append(f"{'dcache':15s} hits={dcache['hits']} misses={dcache['misses']}")
    payload = report["payload"]
    full = payload["full_after"]
    delta = payload["delta"]
    saved = (1 - delta / full) * 100 if full else 0.0
    lines.append(
        f"{'payload':15s} full={full} B  delta={delta} B "
        f"({saved:.1f}% smaller; pre-run full={payload['full_before']} B)")
    return "\n".join(lines)


def list_cells() -> list[str]:
    """Every profileable ``BENCH/CONFIG`` cell, in fig9 row order."""
    return [f"{bench}/{config}"
            for bench in FIG9_BENCHMARKS
            for config in WORKLOADS.get(bench, ())]
