"""Bounded parametric-polymorphic contracts: ``forall X with {privs} . FC``.

Figure 5's contract for ``find``::

    provide find :
      forall X with {+lookup, +contents} .
      {cur : X, filter : X -> is_bool, cmd : X -> void} -> void;

Semantics (section 2.4.2): "the contract of find dynamically seals the
argument cur as it flows into the body of the function through contract
X, and unseals it as it flows out to the functions filter and cmd."  The
bound restricts the *body*: "find can use only the +lookup and +contents
privileges of the cur argument or derived capabilities, even though
contract X may specify more privileges."

Implementation: at **each application** a fresh seal key is minted and
every occurrence of ``X`` becomes a :class:`SealContract` for that key.

* an unsealed capability crossing ``X`` is sealed: the body receives a
  :class:`SealedCap` restricted to the bound — and capabilities *derived*
  from it stay sealed with the same key (so the restriction is deep);
* a sealed capability crossing ``X`` again (into ``filter``/``cmd``,
  whose argument contracts contain ``X``) is unsealed back to the
  original, full-privilege capability.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.capability.caps import FsCap
from repro.contracts.blame import Blame
from repro.contracts.core import Contract
from repro.contracts.functionctc import FunctionContract, GuardedFunction
from repro.sandbox.privileges import Priv, PrivSet

_seal_keys = itertools.count(1)


class SealedCap(FsCap):
    """A capability sealed under a polymorphic contract variable.

    Operations are limited to ``bound ∩ original`` — and capabilities
    derived via lookup/create are sealed under the same key so the body
    cannot launder privileges through derivation.
    """

    def __init__(self, orig: FsCap, bound: PrivSet, key: int, blame: str) -> None:
        super().__init__(
            orig._sys,
            orig.obj,
            orig.privs.restricted_to(bound),
            orig.last_known_path,
            blame=blame,
        )
        self.seal_orig = orig
        self.seal_bound = bound
        self.seal_key = key

    def _reseal(self, derived_orig: FsCap) -> "SealedCap":
        return SealedCap(derived_orig, self.seal_bound, self.seal_key, self.blame)

    def lookup(self, name: str) -> FsCap:
        self._need(Priv.LOOKUP, "lookup")
        return self._reseal(self.seal_orig.lookup(name))

    def create_file(self, name: str, mode: int = 0o644) -> FsCap:
        self._need(Priv.CREATE_FILE, "create-file")
        return self._reseal(self.seal_orig.create_file(name, mode))

    def create_dir(self, name: str, mode: int = 0o755) -> FsCap:
        self._need(Priv.CREATE_DIR, "create-dir")
        return self._reseal(self.seal_orig.create_dir(name, mode))

    def describe(self) -> str:
        return f"<sealed {super().describe()[1:]}"


class ContractVar(Contract):
    """An occurrence of the quantified variable inside the body contract."""

    def __init__(self, var: str) -> None:
        self.var = var
        self.name = var

    def check(self, value: Any, blame: Blame) -> Any:
        raise RuntimeError(
            f"uninstantiated contract variable {self.var!r} — "
            "polymorphic contracts must be applied through PolyContract"
        )

    def instantiate(self, mapping: dict[str, Contract]) -> Contract:
        return mapping.get(self.var, self)


class SealContract(Contract):
    """The per-application instantiation of a contract variable."""

    def __init__(self, var: str, bound: PrivSet, key: int) -> None:
        self.var = var
        self.bound = bound
        self.key = key
        self.name = var

    def check(self, value: Any, blame: Blame) -> Any:
        blame = blame.named(self.var)
        if isinstance(value, SealedCap) and value.seal_key == self.key:
            return value.seal_orig  # unseal on the way out to filter/cmd
        if not isinstance(value, FsCap):
            raise blame.blame_positive(
                f"expected a capability for {self.var}, got {type(value).__name__}"
            )
        # The bound is a *lower bound on the argument*: the supplied
        # capability must offer at least the bound's privileges.
        if not self.bound.subset_of(value.privs):
            missing = sorted(f"+{p.value}" for p in self.bound.privs() - value.privs.privs())
            raise blame.blame_positive(
                f"capability bound to {self.var} lacks {', '.join(missing)}"
            )
        return SealedCap(value, self.bound, self.key, blame=blame.negative)


def instantiate(contract: Contract, mapping: dict[str, Contract]) -> Contract:
    """Structurally replace contract variables; pure on shared subtrees."""
    from repro.contracts.core import AndContract, NamedContract, OrContract

    if isinstance(contract, ContractVar):
        return contract.instantiate(mapping)
    if isinstance(contract, AndContract):
        return AndContract(*[instantiate(p, mapping) for p in contract.parts])
    if isinstance(contract, OrContract):
        return OrContract(*[instantiate(p, mapping) for p in contract.parts])
    if isinstance(contract, NamedContract):
        return NamedContract(contract.name, instantiate(contract.inner, mapping))
    if isinstance(contract, FunctionContract):
        return FunctionContract(
            [(n, instantiate(c, mapping)) for n, c in contract.params],
            instantiate(contract.result, mapping),
            {k: instantiate(c, mapping) for k, c in contract.kwparams.items()},
        )
    return contract


class PolyContract(Contract):
    """``forall X with {bound} . {…} -> …``"""

    def __init__(self, var: str, bound: PrivSet, body: FunctionContract) -> None:
        self.var = var
        self.bound = bound
        self.body = body

    def describe(self) -> str:
        return f"forall {self.var} with {self.bound!r} . {self.body.describe()}"

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.describe()

    def check(self, value: Any, blame: Blame) -> Any:
        return PolyGuardedFunction(value, self, blame.named(self.describe()))


class PolyGuardedFunction(GuardedFunction):
    """Guard that instantiates the quantifier freshly at each application."""

    def __init__(self, target: Any, poly: PolyContract, blame: Blame) -> None:
        super().__init__(target, poly.body, blame)
        self.poly = poly

    def _instantiated(self) -> FunctionContract:
        key = next(_seal_keys)
        seal = SealContract(self.poly.var, self.poly.bound, key)
        contract = instantiate(self.poly.body, {self.poly.var: seal})
        assert isinstance(contract, FunctionContract)
        return contract
