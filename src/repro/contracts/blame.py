"""Blame tracking for contracts.

"Each contract establishes an agreement between two parties: the provider
of the value with the contract and the value's consumer" (section 2.2).
When the runtime detects a violation it must "indicate[] which part of
the script failed to meet its obligations" — that is blame assignment, in
the Findler–Felleisen style the Racket prototype inherits.

``positive`` is the party that *provided* the contracted value (and owes
the guarantee); ``negative`` is the party *consuming* it (and owes
correct use).  Function contracts swap the parties for argument
positions: the caller provides arguments, the function consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ContractViolation


@dataclass(frozen=True)
class Blame:
    """The two parties to a contract, plus the contract's display name."""

    positive: str
    negative: str
    contract_name: str = ""

    def swap(self) -> "Blame":
        """Swap parties when descending into a contravariant (argument)
        position."""
        return Blame(self.negative, self.positive, self.contract_name)

    def named(self, contract_name: str) -> "Blame":
        return Blame(self.positive, self.negative, contract_name)

    def blame_positive(self, detail: str) -> "ContractViolation":
        return ContractViolation(self.positive, self.contract_name, detail)

    def blame_negative(self, detail: str) -> "ContractViolation":
        return ContractViolation(self.negative, self.contract_name, detail)


def root_blame(provider: str, consumer: str, contract_name: str = "") -> Blame:
    """Blame for a module boundary: provider = the exporting script,
    consumer = the importing script or user."""
    return Blame(provider, consumer, contract_name)
