"""Function contracts: preconditions on arguments, postcondition on the result.

"Each function contract has two parts: the precondition and the
postcondition. ... the consumer's obligations are to supply function
arguments that satisfy the precondition, and the provider must produce a
result that satisfies the postcondition" (section 2.2).

A :class:`GuardedFunction` is the proxy a function contract wraps around
a closure: at every application it projects the arguments through the
parameter contracts (with blame swapped — the *caller* provides
arguments) and the result through the result contract.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.contracts.blame import Blame
from repro.contracts.core import AnyContract, Contract

ApplyFn = Callable[[Any, Sequence[Any], Mapping[str, Any]], Any]


class FunctionContract(Contract):
    """``{x : C1, y : C2} -> R`` (or anonymous ``C -> R``)."""

    def __init__(
        self,
        params: Sequence[tuple[str, Contract]],
        result: Contract,
        kwparams: Mapping[str, Contract] | None = None,
    ) -> None:
        self.params = list(params)
        self.result = result
        self.kwparams = dict(kwparams or {})

    def describe(self) -> str:
        pre = ", ".join(f"{n} : {c.describe()}" for n, c in self.params)
        return f"{{{pre}}} -> {self.result.describe()}"

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.describe()

    def check(self, value: Any, blame: Blame) -> Any:
        if not _is_callable_value(value):
            raise blame.named(self.describe()).blame_positive(
                f"expected a function, got {type(value).__name__}"
            )
        return GuardedFunction(value, self, blame.named(self.describe()))

    # -- application-time projection ------------------------------------------------

    def project_args(
        self, args: Sequence[Any], kwargs: Mapping[str, Any], blame: Blame
    ) -> tuple[list[Any], dict[str, Any]]:
        if len(args) != len(self.params):
            raise blame.blame_negative(
                f"arity mismatch: expected {len(self.params)} argument(s), got {len(args)}"
            )
        arg_blame = blame.swap()
        checked = [
            contract.check(arg, arg_blame)
            for (name, contract), arg in zip(self.params, args)
        ]
        checked_kwargs: dict[str, Any] = {}
        for key, val in kwargs.items():
            contract = self.kwparams.get(key, AnyContract())
            checked_kwargs[key] = contract.check(val, arg_blame)
        return checked, checked_kwargs

    def project_result(self, value: Any, blame: Blame) -> Any:
        return self.result.check(value, blame)


class GuardedFunction:
    """A contract proxy around a callable value.

    The interpreter applies it via :meth:`invoke`, passing its own
    application procedure — contracts stay independent of the evaluator.
    """

    def __init__(self, target: Any, contract: FunctionContract, blame: Blame) -> None:
        self.target = target
        self.contract = contract
        self.blame = blame

    def invoke(self, apply_fn: ApplyFn, args: Sequence[Any], kwargs: Mapping[str, Any]) -> Any:
        contract = self._instantiated()
        checked_args, checked_kwargs = contract.project_args(args, kwargs, self.blame)
        result = apply_fn(self.target, checked_args, checked_kwargs)
        return contract.project_result(result, self.blame)

    def _instantiated(self) -> FunctionContract:
        """Hook for polymorphic wrappers; plain contracts are returned as-is."""
        return self.contract

    @property
    def display_name(self) -> str:
        return getattr(self.target, "display_name", getattr(self.target, "name", "<function>"))

    def __repr__(self) -> str:
        return f"<guarded {self.display_name} : {self.contract.describe()}>"


def _is_callable_value(value: Any) -> bool:
    """Callable SHILL values: closures, builtins, guarded functions, or
    plain Python callables used by the stdlib."""
    if isinstance(value, GuardedFunction):
        return True
    if callable(value):
        return True
    return hasattr(value, "params") and hasattr(value, "body")
