"""The contract protocol, flat contracts, and the and/or combinators.

A contract is a *projection*: ``check(value, blame)`` either returns the
(possibly proxied) value or raises :class:`ContractViolation` blaming the
appropriate party.  "SHILL's contract system is rich and expressive ...
users can define their own contracts by creating contract combinators and
user-defined predicates written in SHILL itself" (section 2.4.2) —
:class:`PredicateContract` wraps any callable (including SHILL closures
via the interpreter's bridge) into a flat contract.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.contracts.blame import Blame


class Contract:
    """Base contract; subclasses override :meth:`check`."""

    name = "contract"

    def check(self, value: Any, blame: Blame) -> Any:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"<contract {self.describe()}>"


class AnyContract(Contract):
    """Accepts anything; the identity projection."""

    name = "any"

    def check(self, value: Any, blame: Blame) -> Any:
        return value


class VoidContract(Contract):
    """The ``void`` postcondition: "no value is returned"."""

    name = "void"

    def check(self, value: Any, blame: Blame) -> Any:
        from repro.lang.values import VOID

        if value is not VOID and value is not None:
            raise blame.named(self.name).blame_positive(
                f"expected void, got {type(value).__name__}"
            )
        return VOID


class PredicateContract(Contract):
    """A flat (first-order) contract from a predicate."""

    def __init__(self, pred: Callable[[Any], bool], name: str) -> None:
        self._pred = pred
        self.name = name

    def check(self, value: Any, blame: Blame) -> Any:
        ok = self._pred(value)
        if not ok:
            raise blame.named(self.name).blame_positive(
                f"predicate {self.name!r} rejected {_brief(value)}"
            )
        return value


class AndContract(Contract):
    """Conjunction: the value must pass every conjunct; projections
    compose left to right (``is_file && readonly``)."""

    def __init__(self, *parts: Contract) -> None:
        self.parts = parts

    @property
    def name(self) -> str:  # type: ignore[override]
        return " && ".join(p.describe() for p in self.parts)

    def check(self, value: Any, blame: Blame) -> Any:
        for part in self.parts:
            value = part.check(value, blame)
        return value


class OrContract(Contract):
    r"""Disjunction (``is_dir \/ is_file``): the first branch that accepts
    the value wins.  Higher-order branches are attempted in order; a
    branch "accepts" if its check does not raise."""

    def __init__(self, *parts: Contract) -> None:
        self.parts = parts

    @property
    def name(self) -> str:  # type: ignore[override]
        return " \\/ ".join(p.describe() for p in self.parts)

    def check(self, value: Any, blame: Blame) -> Any:
        from repro.errors import ContractViolation

        errors: list[str] = []
        for part in self.parts:
            try:
                return part.check(value, blame)
            except ContractViolation as err:
                errors.append(err.detail)
        raise blame.named(self.name).blame_positive(
            f"no disjunct accepted {_brief(value)}: " + "; ".join(errors)
        )


class NamedContract(Contract):
    """A contract with a user-facing abbreviation (e.g. ``readonly``)."""

    def __init__(self, name: str, inner: Contract) -> None:
        self.name = name
        self.inner = inner

    def check(self, value: Any, blame: Blame) -> Any:
        return self.inner.check(value, blame.named(self.name))


def _brief(value: Any) -> str:
    text = repr(value)
    return text if len(text) <= 64 else text[:61] + "..."
