"""SHILL contracts: declarative, enforceable security interfaces."""

from repro.contracts.blame import Blame, root_blame
from repro.contracts.capctc import CapContract, PipeFactoryContract, SocketFactoryContract
from repro.contracts.core import (
    AndContract,
    AnyContract,
    Contract,
    NamedContract,
    OrContract,
    PredicateContract,
    VoidContract,
)
from repro.contracts.functionctc import FunctionContract, GuardedFunction
from repro.contracts.polyctc import (
    ContractVar,
    PolyContract,
    PolyGuardedFunction,
    SealContract,
    SealedCap,
    instantiate,
)
from repro.contracts.walletctc import WalletContract

__all__ = [
    "Blame",
    "root_blame",
    "Contract",
    "AnyContract",
    "VoidContract",
    "PredicateContract",
    "AndContract",
    "OrContract",
    "NamedContract",
    "CapContract",
    "PipeFactoryContract",
    "SocketFactoryContract",
    "FunctionContract",
    "GuardedFunction",
    "PolyContract",
    "PolyGuardedFunction",
    "ContractVar",
    "SealContract",
    "SealedCap",
    "instantiate",
    "WalletContract",
]
