"""Wallet contracts.

Section 2.4.1: "SHILL provides wallet contracts, which describe contracts
for the capabilities associated with individual keys or groups of keys."
A wallet contract checks the wallet's kind, that required keys are
populated, and projects each key's capabilities through a per-key
contract.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.contracts.blame import Blame
from repro.contracts.core import Contract
from repro.stdlib.wallet import Wallet


class WalletContract(Contract):
    """``native_wallet``-style contracts.

    Parameters
    ----------
    kind:
        Required wallet kind ("native", "ocaml", ...) or "" for any.
    key_contracts:
        Per-key contracts applied to each capability stored under the key.
    required_keys:
        Keys that must be present and non-empty.
    """

    def __init__(
        self,
        kind: str = "",
        key_contracts: Mapping[str, Contract] | None = None,
        required_keys: tuple[str, ...] = (),
    ) -> None:
        self.kind = kind
        self.key_contracts = dict(key_contracts or {})
        self.required_keys = tuple(required_keys)

    def describe(self) -> str:
        return f"{self.kind or 'any'}_wallet"

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.describe()

    def check(self, value: Any, blame: Blame) -> Any:
        blame = blame.named(self.describe())
        if not isinstance(value, Wallet):
            raise blame.blame_positive(f"expected a wallet, got {type(value).__name__}")
        if self.kind and value.kind != self.kind:
            raise blame.blame_positive(
                f"expected a {self.kind!r} wallet, got kind {value.kind!r}"
            )
        for key in self.required_keys:
            if not value.has(key):
                raise blame.blame_positive(f"wallet is missing required key {key!r}")
        if not self.key_contracts:
            return value
        projected = Wallet(value.kind)
        for key in value.keys():
            contract = self.key_contracts.get(key)
            entries = value.get(key)
            if contract is not None:
                entries = [contract.check(entry, blame) for entry in entries]
            projected.put(key, entries)
        return projected
