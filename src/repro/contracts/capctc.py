"""Capability contracts: kind + privilege set + derive modifiers.

Section 2.2: "For capability contracts, the provider agrees to provide a
capability of the appropriate kind with at least the specified privileges
while the consumer promises to use the capability as if it has at most
the specified privileges."

Both obligations are enforced here:

* at check time the supplied capability must be of the right kind and
  hold **at least** the contract's privileges, else the *provider* is
  blamed;
* the returned value is a proxy attenuated to **exactly** the contract's
  privileges, whose later misuse blames the *consumer*.
"""

from __future__ import annotations

from typing import Any

from repro.capability.caps import FsCap, PipeFactoryCap, SocketFactoryCap
from repro.contracts.blame import Blame
from repro.contracts.core import Contract
from repro.sandbox.privileges import PrivSet, SocketPerms


class CapContract(Contract):
    """``file(+read, +path)`` / ``dir(+lookup with {+stat}, ...)``.

    ``kind`` is ``"file"`` (files, pipes, devices), ``"dir"``, or
    ``"cap"`` (either).
    """

    def __init__(self, kind: str, privs: PrivSet) -> None:
        if kind not in ("file", "dir", "cap"):
            raise ValueError(f"unknown capability kind {kind!r}")
        self.kind = kind
        self.privs = privs

    def describe(self) -> str:
        inner = repr(self.privs)
        return f"{self.kind}({inner[1:-1]})" if len(self.privs) else self.kind

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.describe()

    def check(self, value: Any, blame: Blame) -> Any:
        blame = blame.named(self.describe())
        if not isinstance(value, FsCap):
            raise blame.blame_positive(f"expected a {self.kind} capability, got {type(value).__name__}")
        if self.kind == "dir" and not value.is_dir_cap:
            raise blame.blame_positive("expected a directory capability, got a file capability")
        if self.kind == "file" and not value.is_file_cap:
            raise blame.blame_positive("expected a file capability, got a directory capability")
        # Provider obligation: at least the specified privileges must be
        # *present*.  Modifiers are attenuation instructions for the
        # consumer side — `+create-dir with full_privs` asks that derived
        # capabilities keep everything the supplied capability can give,
        # not that the provider hold literally every privilege.
        if not self.privs.privs() <= value.privs.privs():
            missing = sorted(
                f"+{p.value}" for p in self.privs.privs() - value.privs.privs()
            )
            raise blame.blame_positive(
                f"capability lacks required privileges: {', '.join(missing)}"
            )
        # Consumer obligation: at most the specified privileges — enforce
        # via an attenuating proxy that blames the consumer on misuse.
        return value.attenuated(self.privs, blame=blame.negative)


class PipeFactoryContract(Contract):
    name = "pipe_factory"

    def check(self, value: Any, blame: Blame) -> Any:
        if not isinstance(value, PipeFactoryCap):
            raise blame.named(self.name).blame_positive(
                f"expected a pipe factory, got {type(value).__name__}"
            )
        return value


class SocketFactoryContract(Contract):
    """``socket_factory(...)`` with an optional permission refinement."""

    def __init__(self, perms: SocketPerms | None = None) -> None:
        self.perms = perms

    name = "socket_factory"

    def check(self, value: Any, blame: Blame) -> Any:
        blame = blame.named(self.name)
        if not isinstance(value, SocketFactoryCap):
            raise blame.blame_positive(f"expected a socket factory, got {type(value).__name__}")
        if self.perms is None:
            return value
        if not self.perms.subset_of(value.perms):
            raise blame.blame_positive("socket factory lacks required permissions")
        return SocketFactoryCap(self.perms)
