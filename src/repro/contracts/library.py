"""Named contract abbreviations and base predicates.

Section 3.1.4: "The contracts script provides abbreviated definitions of
common contracts.  For example, a programmer can specify the contract
``readonly`` rather than the more verbose ::

    dir(+read-symlink, +contents, +lookup, +stat, +read, +path)
      \\/ file(+stat, +read, +path)
"""

from __future__ import annotations

from typing import Any

from repro.capability.caps import FsCap
from repro.contracts.capctc import CapContract, PipeFactoryContract, SocketFactoryContract
from repro.contracts.core import (
    AnyContract,
    Contract,
    NamedContract,
    OrContract,
    PredicateContract,
    VoidContract,
)
from repro.contracts.walletctc import WalletContract
from repro.sandbox.privileges import Priv, PrivSet


# -- base predicates (shared with the language's builtins) ----------------------------

def is_file_value(v: Any) -> bool:
    return isinstance(v, FsCap) and v.is_file_cap


def is_dir_value(v: Any) -> bool:
    return isinstance(v, FsCap) and v.is_dir_cap


def is_cap_value(v: Any) -> bool:
    return isinstance(v, FsCap)


def is_bool_value(v: Any) -> bool:
    return isinstance(v, bool)


def is_string_value(v: Any) -> bool:
    return isinstance(v, str)


def is_num_value(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def is_list_value(v: Any) -> bool:
    return isinstance(v, (list, tuple))


def is_syserror_value(v: Any) -> bool:
    from repro.lang.values import SysErrorVal

    return isinstance(v, SysErrorVal)


def is_void_value(v: Any) -> bool:
    from repro.lang.values import VOID

    return v is VOID


# -- flat contracts ----------------------------------------------------------------

is_file = PredicateContract(is_file_value, "is_file")
is_dir = PredicateContract(is_dir_value, "is_dir")
is_cap = PredicateContract(is_cap_value, "is_cap")
is_bool = PredicateContract(is_bool_value, "is_bool")
is_string = PredicateContract(is_string_value, "is_string")
is_num = PredicateContract(is_num_value, "is_num")
is_list = PredicateContract(is_list_value, "is_list")
is_syserror = PredicateContract(is_syserror_value, "is_syserror")
void = VoidContract()
any_c = AnyContract()

# -- privilege bundles ---------------------------------------------------------------

READONLY_DIR_PRIVS = PrivSet.of(
    Priv.READ_SYMLINK, Priv.CONTENTS, Priv.LOOKUP, Priv.STAT, Priv.READ, Priv.PATH
)
READONLY_FILE_PRIVS = PrivSet.of(Priv.STAT, Priv.READ, Priv.PATH)
WRITEABLE_FILE_PRIVS = PrivSet.of(Priv.WRITE, Priv.APPEND, Priv.STAT, Priv.PATH)
EXEC_FILE_PRIVS = PrivSet.of(Priv.EXEC, Priv.READ, Priv.STAT, Priv.PATH)

# -- named contracts -------------------------------------------------------------------

readonly = NamedContract(
    "readonly",
    OrContract(
        CapContract("dir", READONLY_DIR_PRIVS),
        CapContract("file", READONLY_FILE_PRIVS),
    ),
)

writeable = NamedContract("writeable", CapContract("file", WRITEABLE_FILE_PRIVS))

executable = NamedContract("executable", CapContract("file", EXEC_FILE_PRIVS))

full_privs = NamedContract("full_privs", CapContract("cap", PrivSet.full()))

pipe_factory = PipeFactoryContract()
socket_factory = SocketFactoryContract()
# A native wallet is only useful once populated: demand the PATH key.
native_wallet = WalletContract(kind="native", required_keys=("PATH",))


#: The contracts script's export table (what ``require shill/contracts``
#: brings into scope).
EXPORTS: dict[str, Contract] = {
    "is_file": is_file,
    "is_dir": is_dir,
    "is_cap": is_cap,
    "is_bool": is_bool,
    "is_string": is_string,
    "is_num": is_num,
    "is_list": is_list,
    "is_syserror": is_syserror,
    "void": void,
    "any": any_c,
    "readonly": readonly,
    "writeable": writeable,
    "executable": executable,
    "full_privs": full_privs,
    "pipe_factory": pipe_factory,
    "socket_factory": socket_factory,
    "native_wallet": native_wallet,
}
