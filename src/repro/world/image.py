"""The world image: a deterministic FreeBSD-flavoured filesystem.

``build_world`` boots a kernel and populates everything the case studies
and benchmarks need: shared libraries, /etc configuration, the installed
binaries (pseudo-ELF images wired to registered programs), user homes,
and /tmp.  Workload-specific content (student submissions, the emacs
mirror, /usr/src, web content) is added by :mod:`repro.world.fixtures`.
"""

from __future__ import annotations

from repro.kernel.kernel import Kernel
from repro.kernel.vfs import Vnode, VType
from repro.programs.base import elf_image
from repro.programs.registry import INSTALL_LOCATIONS, register_all

LIBRARIES = {
    "/lib/libc.so.7": 640,
    "/lib/libm.so.5": 120,
    "/lib/libz.so.6": 96,
    "/lib/libcrypt.so.5": 64,
    "/usr/lib/libssl.so.8": 256,
    "/usr/lib/libcurl.so.4": 192,
    "/usr/lib/libjpeg.so.11": 128,
    "/usr/lib/libpcre.so.1": 112,
    "/usr/lib/libocaml.so.1": 300,
    "/usr/lib/libapr.so.1": 144,
    "/usr/lib/crt1.o": 8,
    "/libexec/ld-elf.so.1": 96,
}

ETC_FILES = {
    "/etc/passwd": "root:0:0\nalice:1001:1001\ntester:1002:1002\nwww:880:880\n",
    "/etc/locale.conf": "LANG=C.UTF-8\n",
    "/etc/resolv.conf": "nameserver 10.0.0.1\n",
    "/etc/ssl/cert.pem": "-----BEGIN SIMULATED CERT BUNDLE-----\n",
    "/etc/apache/httpd.conf": (
        "Listen 8080\n"
        "DocumentRoot /var/www\n"
        "AccessLog /var/log/httpd-access.log\n"
    ),
}

HEADERS = ["stdio.h", "stdlib.h", "string.h", "unistd.h", "sys/types.h", "sys/mac.h"]

OCAML_STDLIB = ["stdlib.cma", "pervasives.cmi", "list.cmi", "string.cmi", "arg.cmi"]

#: path -> mode.  Modes are set at creation time (ensure_dir only
#: re-chmods an existing directory on an explicit request), so special
#: modes live here: /tmp and /var/log are sticky-world-writable.
BASE_DIRS = {
    "/bin": 0o755, "/usr": 0o755, "/usr/bin": 0o755, "/usr/local": 0o755,
    "/usr/local/bin": 0o755, "/usr/local/lib": 0o755,
    "/usr/local/lib/ocaml": 0o755, "/usr/lib": 0o755, "/usr/include": 0o755,
    "/usr/include/sys": 0o755, "/usr/src": 0o755, "/lib": 0o755,
    "/libexec": 0o755, "/etc": 0o755, "/etc/ssl": 0o755, "/etc/apache": 0o755,
    "/home": 0o755, "/tmp": 0o777, "/var": 0o755, "/var/log": 0o777,
    "/var/www": 0o755, "/root": 0o755, "/dev": 0o755,
}

#: The paper's baseline grading task, as an actual shell script run by the
#: simulated /bin/sh (the "61-line Bash script" of section 4.1).
GRADE_SH_SCRIPT = """\
#!/bin/sh
# grade-sh SUBMISSIONS TESTS WORKING GRADES
# Compile every student's submission, run it against the test suite,
# and record one score file per student.
submissions=$1
tests=$2
working=$3
grades=$4

for subdir in $submissions/*
do
  student=$(basename $subdir)
  work=$working/$student
  mkdir $work
  score=0
  total=0
  ocamlc -o $work/main.byte $subdir/main.ml 2> $work/compile.log
  for input in $tests/*.in
  do
    t=$(basename $input .in)
    total=$(expr $total + 1)
    if ocamlrun $work/main.byte < $input > $work/$t.out 2> $work/$t.err
    then
      if diff $work/$t.out $tests/$t.expected > /dev/null
      then
        score=$(expr $score + 1)
      fi
    fi
  done
  echo $student: $score/$total >> $grades/$student
done
"""

USERS = [("alice", 1001, 1001), ("tester", 1002, 1002), ("www", 880, 880)]


class WorldBuilder:
    """Mechanical helpers for populating a kernel's VFS as root."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel

    def ensure_dir(self, path: str, mode: int | None = None,
                   uid: int | None = None, gid: int | None = None) -> Vnode:
        """Create ``path`` with the given attributes.

        Missing *ancestors* are created root-owned 0o755 (a restrictive
        leaf request must not lock everyone out of the parents).  The
        requested attributes apply to the leaf — also when it already
        exists, but only if they were passed explicitly: re-ensuring
        ``/tmp`` with default arguments must not reset the sticky
        0o777/owner the boot image gave it."""
        leaf_mode = 0o755 if mode is None else mode
        leaf_uid = 0 if uid is None else uid
        leaf_gid = 0 if gid is None else gid
        node = self.kernel.vfs.root
        components = [p for p in path.split("/") if p]
        if not components and (mode, uid, gid) != (None, None, None):
            # ensure_dir("/", ...) has no component loop to apply the
            # requested attributes — do it here rather than no-op.
            self.kernel.vfs.set_meta(node, mode=mode, uid=uid, gid=gid)
        for i, comp in enumerate(components):
            last = i == len(components) - 1
            if self.kernel.vfs.exists(node, comp):
                node = self.kernel.vfs.lookup(node, comp)
                if last and (mode, uid, gid) != (None, None, None):
                    # Only the explicitly requested attributes change.
                    self.kernel.vfs.set_meta(node, mode=mode, uid=uid, gid=gid)
            elif last:
                node = self.kernel.vfs.create(node, comp, VType.VDIR,
                                              leaf_mode, leaf_uid, leaf_gid)
            else:
                node = self.kernel.vfs.create(node, comp, VType.VDIR, 0o755, 0, 0)
        return node

    def write_file(self, path: str, data: bytes, mode: int = 0o644, uid: int = 0, gid: int = 0) -> Vnode:
        directory, _, name = path.rpartition("/")
        parent = self.ensure_dir(directory or "/")
        if self.kernel.vfs.exists(parent, name):
            # Overwrite through the VFS data ops so the COW buffer is
            # unshared and the mutation generation advances.
            vp = self.kernel.vfs.lookup(parent, name)
            self.kernel.vfs.truncate_file(vp, 0)
            self.kernel.vfs.write_file(vp, 0, data)
            return vp
        vp = self.kernel.vfs.create(parent, name, VType.VREG, mode, uid, gid)
        assert vp.data is not None
        vp.data.extend(data)
        return vp

    def install_binary(self, path: str, program: str, needed: list[str]) -> Vnode:
        vp = self.write_file(path, elf_image(program, needed), mode=0o755)
        vp.program = program
        vp.needed = list(needed)
        return vp


def build_world(kernel: Kernel | None = None, *, install_shill: bool = True) -> Kernel:
    """Boot a kernel and lay down the base world image.

    ``install_shill=False`` produces the Figure 9 "Baseline" machine —
    the SHILL kernel module is simply not loaded.
    """
    kernel = kernel or Kernel()
    register_all(kernel)
    builder = WorldBuilder(kernel)

    for name, uid, gid in USERS:
        kernel.users.add_user(name, uid, gid)

    for path, mode in BASE_DIRS.items():
        builder.ensure_dir(path, mode=mode)
    # Homes belong to their users.
    for name, uid, gid in USERS:
        builder.ensure_dir(f"/home/{name}", mode=0o755, uid=uid, gid=gid)

    for path, size in LIBRARIES.items():
        builder.write_file(path, b"\x7fSIMLIB" + bytes(size))
    for path, text in ETC_FILES.items():
        builder.write_file(path, text.encode())
    for header in HEADERS:
        builder.write_file(f"/usr/include/{header}", f"/* {header} */\n".encode())
    for member in OCAML_STDLIB:
        builder.write_file(f"/usr/local/lib/ocaml/{member}", b"OCAML-STDLIB\n")

    for program in kernel.programs.values():
        location = INSTALL_LOCATIONS.get(program.name)
        if location is not None:
            builder.install_binary(location, program.name, program.needed)

    # /dev/null: a character device vnode (MAC does not interpose on its
    # read/write unless kernel.interpose_devices is set).
    from repro.kernel.devices import null_device
    from repro.kernel.vfs import VType as _VType

    dev = builder.ensure_dir("/dev")
    null = kernel.vfs.create(dev, "null", _VType.VCHR, 0o666, 0, 0)
    null.device = null_device()

    # The grading shell script (a plain text executable run via shebang).
    builder.write_file("/usr/local/bin/grade-sh", GRADE_SH_SCRIPT.encode(), mode=0o755)

    if install_shill:
        kernel.install_shill_module()
    return kernel
