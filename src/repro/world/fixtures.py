"""Workload fixtures: the data each case study / benchmark runs against.

Everything is deterministic (seeded by simple arithmetic, no RNG) so that
benchmark comparisons across configurations see identical worlds.
"""

from __future__ import annotations

from repro.kernel.kernel import Kernel
from repro.kernel.sockets import Socket
from repro.programs.archive import gzip_compress, tar_create
from repro.programs.base import elf_image
from repro.world.image import WorldBuilder

EMACS_URL = "http://ftp.gnu.org/gnu/emacs/emacs-24.3.tar.gz"
EMACS_HOST = ("ftp.gnu.org", 80)
EMACS_PATH = "/gnu/emacs/emacs-24.3.tar.gz"

GOOD_SUBMISSION = "solve\n"
MALICIOUS_READ = "readfile {target}\nsolve\n"
MALICIOUS_WRITE = "writefile {target} cheated\nsolve\n"


# ---------------------------------------------------------------------------
# grading
# ---------------------------------------------------------------------------


def add_grading_fixture(
    kernel: Kernel,
    students: int = 12,
    tests: int = 4,
    malicious_reader: bool = True,
    malicious_writer: bool = True,
    owner: str = "tester",
) -> dict[str, str]:
    """Student submissions + test suite + empty working/grades dirs.

    Student 0 (when enabled) tries to *read another student's submission*;
    student 1 tries to *overwrite the test suite* — the two attacks the
    grading case study's contracts must stop.
    """
    builder = WorldBuilder(kernel)
    cred = kernel.users.lookup(owner)
    base = f"/home/{owner}"
    paths = {
        "submissions": f"{base}/submissions",
        "tests": f"{base}/tests",
        "working": f"{base}/working",
        "grades": f"{base}/grades",
    }
    for path in paths.values():
        builder.ensure_dir(path, uid=cred.uid, gid=cred.gid)

    for i in range(students):
        subdir = f"{paths['submissions']}/student{i:02d}"
        builder.ensure_dir(subdir, uid=cred.uid, gid=cred.gid)
        if i == 0 and malicious_reader:
            target = f"{paths['submissions']}/student{students - 1:02d}/main.ml"
            source = MALICIOUS_READ.format(target=target)
        elif i == 1 and malicious_writer:
            source = MALICIOUS_WRITE.format(target=f"{paths['tests']}/test0.expected")
        else:
            source = GOOD_SUBMISSION
        builder.write_file(f"{subdir}/main.ml", source.encode(), uid=cred.uid, gid=cred.gid)

    for t in range(tests):
        numbers = [t + 1, t + 2, t + 3]
        builder.write_file(
            f"{paths['tests']}/test{t}.in",
            (" ".join(str(n) for n in numbers) + "\n").encode(),
            uid=cred.uid,
            gid=cred.gid,
        )
        builder.write_file(
            f"{paths['tests']}/test{t}.expected",
            f"{sum(numbers)}\n".encode(),
            uid=cred.uid,
            gid=cred.gid,
        )
    return paths


# ---------------------------------------------------------------------------
# emacs mirror (Download benchmark)
# ---------------------------------------------------------------------------


def emacs_tarball(sources: int = 6, doc_kb: int = 8) -> bytes:
    members: list[tuple[str, bytes]] = [
        ("emacs-24.3/configure", elf_image("emacs-configure", ["libc.so.7"])),
        ("emacs-24.3/README", b"GNU Emacs 24.3 (simulated distribution)\n"),
        ("emacs-24.3/etc/DOC", b"D" * (doc_kb * 1024)),
        ("emacs-24.3/etc/COPYING", b"GPLv3 (simulated)\n"),
    ]
    for i in range(sources):
        body = f'#include <stdio.h>\n/* emacs module {i} */\nint emacs_mod_{i}(void) {{ return {i}; }}\n'
        members.append((f"emacs-24.3/src/mod{i}.c", body.encode()))
    return gzip_compress(tar_create(members))


class MirrorService:
    """The GNU mirror: serves one payload blob to every connection.

    A module-level class (not a closure) so registered services survive
    the kernel snapshot codec: a pickled world with an emacs mirror must
    still serve downloads after crossing a process boundary.
    """

    def __init__(self, blob: bytes) -> None:
        self.blob = blob

    def __call__(self, server_side: Socket) -> None:
        # The service runs synchronously at connect time; the request may
        # not have arrived yet, so respond to the path unconditionally
        # once data shows up — here we simply serve on first read by
        # preloading the response.
        server_side.peer.recv_buffer.extend(b"HTTP/1.0 200 OK\n\n" + self.blob)


def add_emacs_mirror(kernel: Kernel, tarball: bytes | None = None) -> bytes:
    """Register the GNU mirror service the Download benchmark's curl
    fetches from."""
    blob = tarball if tarball is not None else emacs_tarball()
    kernel.network.register_service(EMACS_HOST, MirrorService(blob))
    return blob


# ---------------------------------------------------------------------------
# /usr/src (Find benchmark)
# ---------------------------------------------------------------------------


def add_usr_src(
    kernel: Kernel,
    subsystems: int = 12,
    files_per_dir: int = 16,
    c_ratio: int = 4,
    mac_ratio: int = 5,
) -> dict[str, int]:
    """A scaled-down BSD source tree.

    Every ``c_ratio``-th file is a ``.c`` file (others are headers or
    docs) and every ``mac_ratio``-th ``.c`` file mentions ``mac_`` — the
    string the Find case study greps for.  Returns the counts so
    benchmarks can assert coverage.
    """
    builder = WorldBuilder(kernel)
    total = c_files = mac_files = 0
    for s in range(subsystems):
        subsystem = f"/usr/src/sys{s:02d}"
        builder.ensure_dir(subsystem)
        for d in range(2):
            directory = f"{subsystem}/dir{d}"
            builder.ensure_dir(directory)
            for f in range(files_per_dir):
                total += 1
                index = (s * 100) + (d * 50) + f
                if index % c_ratio == 0:
                    c_files += 1
                    if (c_files % mac_ratio) == 0:
                        mac_files += 1
                        body = f"/* src {index} */\nint mac_check_{index}(void);\n"
                    else:
                        body = f"/* src {index} */\nint fn_{index}(void);\n"
                    builder.write_file(f"{directory}/file{f}.c", body.encode())
                elif index % c_ratio == 1:
                    builder.write_file(f"{directory}/file{f}.h", f"/* hdr {index} */\n".encode())
                else:
                    builder.write_file(f"{directory}/file{f}.txt", f"doc {index}\n".encode())
    return {"total": total, "c_files": c_files, "mac_files": mac_files}


# ---------------------------------------------------------------------------
# web content (Apache benchmark)
# ---------------------------------------------------------------------------


def add_web_content(kernel: Kernel, file_kb: int = 512, small_files: int = 8) -> dict[str, str]:
    builder = WorldBuilder(kernel)
    builder.write_file("/var/www/big.bin", b"W" * (file_kb * 1024))
    for i in range(small_files):
        builder.write_file(f"/var/www/page{i}.html", f"<html>page {i}</html>\n".encode())
    builder.write_file("/var/log/httpd-access.log", b"", mode=0o666)
    return {"big": "/var/www/big.bin", "docroot": "/var/www", "log": "/var/log/httpd-access.log"}


# ---------------------------------------------------------------------------
# vcs repository (policy/fuzz case study)
# ---------------------------------------------------------------------------


def add_vcs_repo(
    kernel: Kernel,
    owner: str = "alice",
    files: int = 4,
    history: int = 2,
) -> dict[str, str]:
    """A git-like repository plus a secret *outside* the worktree.

    ``~/project`` holds a worktree (``README``, ``src/mod*.c``) and a
    ``.vcs`` metadata directory (``objects/`` snapshots, an append-only
    ``log``, and ``HEAD``), pre-seeded with ``history`` commits.  The
    deploy token under ``~/secrets`` is the natural exfiltration target
    the vcs case study's contracts (and declarative policies) must stop.
    """
    builder = WorldBuilder(kernel)
    cred = kernel.users.lookup(owner)
    base = f"{cred.home}/project"
    paths = {
        "project": base,
        "src": f"{base}/src",
        "readme": f"{base}/README",
        "vcs": f"{base}/.vcs",
        "objects": f"{base}/.vcs/objects",
        "log": f"{base}/.vcs/log",
        "head": f"{base}/.vcs/HEAD",
        "secrets": f"{cred.home}/secrets",
        "token": f"{cred.home}/secrets/deploy_token",
    }
    for key in ("project", "src", "vcs", "objects", "secrets"):
        builder.ensure_dir(paths[key], uid=cred.uid, gid=cred.gid)
    builder.write_file(paths["readme"], b"vcs demo project\n", uid=cred.uid, gid=cred.gid)
    for i in range(files):
        body = f"/* module {i} */\nint mod_{i}(void) {{ return {i}; }}\n"
        builder.write_file(f"{paths['src']}/mod{i}.c", body.encode(),
                           uid=cred.uid, gid=cred.gid)
    log_lines = "".join(f"commit {c + 1} seed-commit-{c + 1}\n" for c in range(history))
    builder.write_file(paths["log"], log_lines.encode(), uid=cred.uid, gid=cred.gid)
    builder.write_file(paths["head"], f"{history}\n".encode(), uid=cred.uid, gid=cred.gid)
    builder.write_file(paths["token"], b"hunter2-deploy-token\n",
                       uid=cred.uid, gid=cred.gid, mode=0o600)
    return paths


# ---------------------------------------------------------------------------
# jpeg sample (quickstart)
# ---------------------------------------------------------------------------


def add_jpeg_samples(kernel: Kernel, owner: str = "alice") -> list[str]:
    builder = WorldBuilder(kernel)
    cred = kernel.users.lookup(owner)
    # Samples land in the owner's *actual* home, so `open_dir("~/Documents")`
    # resolves for root sessions too.
    base = f"{cred.home}/Documents"
    builder.ensure_dir(base, uid=cred.uid, gid=cred.gid)
    paths = []
    for name, body in (("dog.jpg", b"JPEG" + b"\xde\xad" * 64), ("notes.txt", b"not a jpeg")):
        builder.write_file(f"{base}/{name}", body, uid=cred.uid, gid=cred.gid)
        paths.append(f"{base}/{name}")
    return paths
