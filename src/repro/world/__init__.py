"""World images: deterministic filesystem + network content for the
case studies and benchmarks."""

from repro.world.fixtures import (
    EMACS_HOST,
    EMACS_PATH,
    EMACS_URL,
    add_emacs_mirror,
    add_grading_fixture,
    add_jpeg_samples,
    add_usr_src,
    add_vcs_repo,
    add_web_content,
    emacs_tarball,
)
from repro.world.image import WorldBuilder, build_world

#: Bumped whenever the world-build code changes what a given
#: configuration materialises to (new base-image content, changed
#: fixture layout).  Persistent snapshot-store links record it, so a
#: store that outlives an upgrade stops serving images built by older
#: build code (the config digest alone cannot see code changes).
WORLD_IMAGE_VERSION = 1

__all__ = [
    "WORLD_IMAGE_VERSION",
    "build_world",
    "WorldBuilder",
    "add_grading_fixture",
    "add_emacs_mirror",
    "add_usr_src",
    "add_vcs_repo",
    "add_web_content",
    "add_jpeg_samples",
    "emacs_tarball",
    "EMACS_URL",
    "EMACS_HOST",
    "EMACS_PATH",
]
