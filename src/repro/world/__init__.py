"""World images: deterministic filesystem + network content for the
case studies and benchmarks."""

from repro.world.fixtures import (
    EMACS_HOST,
    EMACS_PATH,
    EMACS_URL,
    add_emacs_mirror,
    add_grading_fixture,
    add_jpeg_samples,
    add_usr_src,
    add_web_content,
    emacs_tarball,
)
from repro.world.image import WorldBuilder, build_world

__all__ = [
    "build_world",
    "WorldBuilder",
    "add_grading_fixture",
    "add_emacs_mirror",
    "add_usr_src",
    "add_web_content",
    "add_jpeg_samples",
    "emacs_tarball",
    "EMACS_URL",
    "EMACS_HOST",
    "EMACS_PATH",
]
