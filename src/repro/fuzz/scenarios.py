"""Scenario model: one generated (world, policy, script) triple.

Everything here is plain frozen data with a JSON :meth:`Scenario.describe`
— a falsifying example must survive being printed, uploaded as a CI
artifact, and pasted back into a regression test (``tests/fuzz/``).

The world side reuses the composable :class:`repro.api.World` builders,
so specs stay declarative and repeated boots of one spec hit the boot
cache and fork instead of rebuilding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

#: Fixtures scenarios draw worlds from, with the user each runs as.
FIXTURE_USERS = {
    "none": "alice",
    "jpeg": "alice",
    "vcs": "alice",
    "grading": "tester",
}

#: Where generated extra files live (under the scenario user's home).
FUZZ_DIR = "fuzz"


def _home(user: str) -> str:
    return f"/home/{user}"


# ---------------------------------------------------------------------------
# worlds
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorldSpec:
    """A declarative world: a named fixture plus generated extra files."""

    fixture: str = "none"
    extra_files: tuple[tuple[str, str], ...] = ()

    @property
    def user(self) -> str:
        return FIXTURE_USERS[self.fixture]

    @property
    def home(self) -> str:
        return _home(self.user)

    def build(self):
        """A :class:`repro.api.World` for this spec (fully digestible, so
        every build boots through the shared boot-image cache)."""
        from repro.api import World

        world = World().for_user(self.user)
        if self.fixture != "none":
            world = world.with_fixture(self.fixture)
        if self.extra_files:
            world = world.with_dir(f"{self.home}/{FUZZ_DIR}", owner=self.user)
            for name, content in self.extra_files:
                world = world.with_file(f"{self.home}/{FUZZ_DIR}/{name}", content,
                                        owner=self.user)
        return world

    # -- path alphabets ----------------------------------------------------

    def file_paths(self) -> tuple[str, ...]:
        """Existing regular files scenarios may read or append to."""
        home = self.home
        paths = [f"{home}/{FUZZ_DIR}/{name}" for name, _ in self.extra_files]
        if self.fixture == "jpeg":
            paths += [f"{home}/Documents/dog.jpg", f"{home}/Documents/notes.txt"]
        elif self.fixture == "vcs":
            paths += [f"{home}/project/README", f"{home}/project/src/mod0.c",
                      f"{home}/project/.vcs/log", f"{home}/secrets/deploy_token"]
        elif self.fixture == "grading":
            paths += [f"{home}/tests/test0.in",
                      f"{home}/submissions/student00/main.ml"]
        return tuple(paths)

    def dir_paths(self) -> tuple[str, ...]:
        """Existing directories scenarios may list."""
        home = self.home
        paths = [home, "/tmp"]
        if self.extra_files:
            paths.append(f"{home}/{FUZZ_DIR}")
        if self.fixture == "jpeg":
            paths.append(f"{home}/Documents")
        elif self.fixture == "vcs":
            paths += [f"{home}/project", f"{home}/project/src", f"{home}/secrets"]
        elif self.fixture == "grading":
            paths += [f"{home}/submissions", f"{home}/tests"]
        return tuple(paths)

    def missing_path(self) -> str:
        """A path that exists in no scenario world — the "policy grants a
        nonexistent path" edge case."""
        return f"{self.home}/does-not-exist.txt"

    def policy_paths(self) -> tuple[str, ...]:
        """Targets policies may name: everything interesting, existing or
        not, plus the binaries sandboxed commands need."""
        return self.file_paths() + self.dir_paths() + (
            self.missing_path(), "/bin", "/lib")

    def to_json(self) -> dict:
        return {"fixture": self.fixture, "extra_files": [list(p) for p in self.extra_files]}

    @classmethod
    def from_json(cls, data: dict) -> "WorldSpec":
        return cls(fixture=data["fixture"],
                   extra_files=tuple((n, c) for n, c in data["extra_files"]))


# ---------------------------------------------------------------------------
# policies
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RuleSpec:
    """One declarative rule, as frozen generator-friendly data."""

    effect: str = "deny"
    operations: Optional[tuple[str, ...]] = None
    paths: Optional[tuple[str, ...]] = None
    users: Optional[tuple[str, ...]] = None

    def to_json(self) -> dict:
        out: dict[str, Any] = {"effect": self.effect}
        for key in ("operations", "paths", "users"):
            value = getattr(self, key)
            if value is not None:
                out[key] = list(value)
        return out


@dataclass(frozen=True)
class PolicySpec:
    """A declarative policy: rules plus the engine default."""

    rules: tuple[RuleSpec, ...] = ()
    default: str = "defer"

    def engine(self):
        from repro.policy.rules import RuleEngine

        return RuleEngine([rule.to_json() for rule in self.rules],
                          default=self.default, name="fuzz-policy")

    def to_json(self) -> dict:
        return {"default": self.default, "rules": [r.to_json() for r in self.rules]}

    @classmethod
    def from_json(cls, data: dict) -> "PolicySpec":
        rules = tuple(
            RuleSpec(
                effect=r["effect"],
                operations=tuple(r["operations"]) if "operations" in r else None,
                paths=tuple(r["paths"]) if "paths" in r else None,
                users=tuple(r["users"]) if "users" in r else None,
            )
            for r in data["rules"]
        )
        return cls(rules=rules, default=data["default"])


# ---------------------------------------------------------------------------
# the triple
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One (world, policy, script) triple.

    ``commands`` are sandboxed-vs-ambient argv runs (the containment and
    audit invariants); ``ambient_ops`` render into one straight-line
    ambient script (the executor-equivalence and footprint invariants).
    """

    world: WorldSpec = field(default_factory=WorldSpec)
    policy: Optional[PolicySpec] = None
    commands: tuple[tuple[str, ...], ...] = ()
    ambient_ops: tuple[tuple[str, str], ...] = ()

    def build_world(self):
        """The world including its policy engine (policies ride in the
        world digest, so distinct policies never share cached results)."""
        world = self.world.build()
        if self.policy is not None:
            world = world.with_policy_rules([r.to_json() for r in self.policy.rules],
                                            default=self.policy.default)
        return world

    def ambient_script(self) -> str:
        """Render ``ambient_ops`` into one deterministic ambient script."""
        lines = ["#lang shill/ambient"]
        for i, (op, target) in enumerate(self.ambient_ops):
            if op == "list":
                lines.append(f'd{i} = open_dir("{target}");')
                lines.append(f'append(stdout, to_string(length(contents(d{i}))) + "\\n");')
            elif op == "path":
                lines.append(f'd{i} = open_dir("{target}");')
                lines.append(f'append(stdout, path(d{i}) + "\\n");')
            elif op == "read":
                lines.append(f'f{i} = open_file("{target}");')
                lines.append(f'append(stdout, read(f{i}));')
            elif op == "append":
                lines.append(f'f{i} = open_file("{target}");')
                lines.append(f'append(f{i}, "fuzz{i}\\n");')
            else:  # pragma: no cover - generator and renderer move together
                raise ValueError(f"unknown ambient op {op!r}")
        lines.append('append(stdout, "done\\n");')
        return "\n".join(lines) + "\n"

    def describe(self) -> dict:
        """The whole triple as JSON — the falsifying-example artifact."""
        return {
            "world": self.world.to_json(),
            "policy": None if self.policy is None else self.policy.to_json(),
            "commands": [list(c) for c in self.commands],
            "ambient_ops": [list(o) for o in self.ambient_ops],
            "ambient_script": self.ambient_script(),
        }

    @classmethod
    def from_json(cls, data: dict) -> "Scenario":
        """Rebuild a scenario from :meth:`describe` output (regression
        corpus entries are stored this way)."""
        return cls(
            world=WorldSpec.from_json(data["world"]),
            policy=None if data["policy"] is None else PolicySpec.from_json(data["policy"]),
            commands=tuple(tuple(c) for c in data["commands"]),
            ambient_ops=tuple((op, target) for op, target in data["ambient_ops"]),
        )
