"""The cross-checked invariants, each runnable against one scenario.

Every check boots *fresh* worlds from the scenario spec (boots are
copy-on-write forks off the boot-image cache, so this is cheap) — the
sandboxed and ambient legs of the containment check in particular each
start from identical world state, never from each other's leftovers.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Optional

from repro.errors import ReproError, SysError

if TYPE_CHECKING:
    from repro.api import RunResult
    from repro.fuzz.scenarios import Scenario

#: Executors whose result fingerprints must be byte-identical.
EQUIVALENCE_BACKENDS = ("sequential", "thread", "store")

#: A second, fixed batch job so the threaded/store executors always have
#: parallel work to schedule alongside the generated script.
_PROBE = '#lang shill/ambient\nappend(stdout, "probe\\n");\n'


class InvariantViolation(AssertionError):
    """A generated scenario broke a system-level property."""

    def __init__(self, invariant: str, detail: str, scenario: "Scenario") -> None:
        self.invariant = invariant
        self.detail = detail
        self.scenario = scenario
        super().__init__(
            f"[{invariant}] {detail}\nscenario: "
            + json.dumps(scenario.describe(), indent=2, sort_keys=True)
        )


# ---------------------------------------------------------------------------
# running one command, sandboxed and ambient
# ---------------------------------------------------------------------------


def sandboxed_exec(scenario: "Scenario", argv: tuple[str, ...]) -> "Optional[RunResult]":
    """Run ``argv`` under an empty ``shill-run`` policy in a fresh world.
    ``None`` means the launcher itself failed (nothing to contain)."""
    from repro.api.sandboxes import Sandbox

    world = scenario.build_world().boot()
    sandbox = Sandbox(world.kernel, "", user=scenario.world.user,
                      cwd=scenario.world.home)
    try:
        return sandbox.exec(list(argv))
    except SysError:
        return None


def ambient_exec(scenario: "Scenario", argv: tuple[str, ...]) -> tuple[int, str]:
    """Run ``argv`` with full ambient authority in a fresh, identical
    world; returns (status, stdout)."""
    from repro.kernel.pipes import make_pipe
    from repro.sandbox.shilld import _wire_stdio

    world = scenario.build_world().boot()
    kernel = world.kernel
    launcher = kernel.spawn_process(scenario.world.user, scenario.world.home)
    sys_ = kernel.syscalls(launcher)
    try:
        _, _, vp = sys_._resolve(argv[0])
    except SysError:
        vp = None
    if vp is None:
        return 127, ""
    out_r, out_w = make_pipe()
    err_r, err_w = make_pipe()
    child = kernel.procs.fork(launcher)
    _wire_stdio(kernel, child, None, out_w, err_w)
    status = kernel.exec_file(child, vp, list(argv))
    return status, bytes(out_r.pipe.buffer).decode(errors="replace")


# ---------------------------------------------------------------------------
# invariant 1 + 2: containment and audited denials
# ---------------------------------------------------------------------------


def check_containment(scenario: "Scenario") -> None:
    """Sandboxed ⊆ ambient: a command that succeeds inside the sandbox
    must succeed ambient from identical world state — and when the
    sandbox denied nothing (so nothing was attenuated), the observable
    output must match byte for byte."""
    for argv in scenario.commands:
        result = sandboxed_exec(scenario, argv)
        if result is None:
            continue
        if result.status != 0:
            continue
        status, stdout = ambient_exec(scenario, argv)
        if status != 0:
            raise InvariantViolation(
                "containment",
                f"{argv!r} succeeded sandboxed but failed ambient (status {status})",
                scenario)
        if not result.denials and result.stdout != stdout:
            raise InvariantViolation(
                "containment",
                f"{argv!r} ran denial-free sandboxed but its output diverged "
                f"from ambient: {result.stdout!r} != {stdout!r}",
                scenario)


def check_denials_audited(scenario: "Scenario") -> None:
    """Every MAC denial during a sandboxed run leaves an audit record:
    the kernel's ``mac_denials`` op count and the session audit log's
    denial entries agree exactly."""
    for argv in scenario.commands:
        result = sandboxed_exec(scenario, argv)
        if result is None:
            continue
        counted = result.ops.get("mac_denials", 0)
        audited = len(result.denials)
        if counted != audited:
            raise InvariantViolation(
                "denials-audited",
                f"{argv!r}: kernel counted {counted} MAC denial(s) but the "
                f"audit log recorded {audited}",
                scenario)


# ---------------------------------------------------------------------------
# invariant 3: executor equivalence
# ---------------------------------------------------------------------------


def _batch_outcome(scenario: "Scenario", backend: str):
    """The batch's result fingerprints under one executor — or, for a
    crashed batch, the error's shape (which must also be identical)."""
    from repro.api import Batch

    world = scenario.build_world()
    batch = (Batch(world, cache=False)
             .add(scenario.ambient_script(), name="fuzz.ambient")
             .add(_PROBE, name="probe.ambient"))
    try:
        return tuple(result.fingerprint() for result in batch.run(backend=backend))
    except ReproError as err:
        return ("error", type(err).__name__, str(err).splitlines()[0] if str(err) else "")


def check_executor_equivalence(scenario: "Scenario") -> None:
    """One generated batch produces byte-identical result fingerprints on
    the sequential, thread, and snapshot-store executors."""
    outcomes = {backend: _batch_outcome(scenario, backend)
                for backend in EQUIVALENCE_BACKENDS}
    baseline = outcomes[EQUIVALENCE_BACKENDS[0]]
    for backend, outcome in outcomes.items():
        if outcome != baseline:
            raise InvariantViolation(
                "executor-equivalence",
                f"{backend!r} outcome diverged from "
                f"{EQUIVALENCE_BACKENDS[0]!r}: {outcome!r} != {baseline!r}",
                scenario)


# ---------------------------------------------------------------------------
# invariant 4: footprint soundness
# ---------------------------------------------------------------------------


def check_footprint(scenario: "Scenario") -> None:
    """``static ⊇ touched``: every path the generated ambient script
    actually touches is accounted for by its statically inferred
    capability footprint."""
    from repro.analysis.deps import soundness_escapes
    from repro.analysis.infer import analyze_source
    from repro.api import Session

    source = scenario.ambient_script()
    analysis = analyze_source("fuzz.ambient", source)
    if analysis.error is not None or analysis.unresolved:
        return  # no static footprint to hold the run against
    world = scenario.build_world().boot()
    session = Session(world, user=scenario.world.user)
    try:
        result = session.run_ambient(source, "fuzz.ambient")
    except ReproError:
        return  # aborted runs leave no complete touched record
    home = scenario.world.home
    escapes = soundness_escapes(analysis.footprint, result.touched, home=home)
    if escapes:
        raise InvariantViolation(
            "footprint-soundness",
            f"touched paths escaped the static footprint: {', '.join(escapes)}",
            scenario)


# ---------------------------------------------------------------------------
# the whole property
# ---------------------------------------------------------------------------


def check_scenario(scenario: "Scenario") -> None:
    """Cross-check one generated triple against all four invariants."""
    check_containment(scenario)
    check_denials_audited(scenario)
    check_executor_equivalence(scenario)
    check_footprint(scenario)
