"""Hypothesis strategies for (world, policy, script) triples.

The strategies draw every path from the world spec's own alphabet
(:meth:`WorldSpec.policy_paths` and friends), so generated policies and
scripts always talk about the world they run against — including its
deliberately nonexistent path, the "policy grants a path that doesn't
exist" edge case.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.fuzz.scenarios import FIXTURE_USERS, PolicySpec, RuleSpec, Scenario, WorldSpec

#: Operations policy rules may name (a subset of what check sites emit,
#: plus globs — unknown names are legal and simply never match).
RULE_OPERATIONS = ("read", "write", "append", "stat", "readdir", "exec",
                   "lookup *", "create *", "*")


def world_specs() -> st.SearchStrategy[WorldSpec]:
    extra = st.lists(
        st.tuples(
            st.sampled_from(("f0.txt", "f1.txt", "notes.md")),
            st.sampled_from(("alpha\n", "beta beta\n", "")),
        ),
        max_size=2,
        unique_by=lambda pair: pair[0],
    )
    return st.builds(
        WorldSpec,
        fixture=st.sampled_from(tuple(FIXTURE_USERS)),
        extra_files=extra.map(tuple),
    )


def _rule_specs(world: WorldSpec) -> st.SearchStrategy[RuleSpec]:
    maybe_paths = st.one_of(
        st.none(),
        st.lists(st.sampled_from(world.policy_paths()), min_size=1, max_size=2,
                 unique=True).map(tuple),
    )
    maybe_ops = st.one_of(
        st.none(),
        st.lists(st.sampled_from(RULE_OPERATIONS), min_size=1, max_size=2,
                 unique=True).map(tuple),
    )
    maybe_users = st.sampled_from((None, (world.user,), ("nobody",)))
    return st.builds(
        RuleSpec,
        effect=st.sampled_from(("allow", "deny")),
        operations=maybe_ops,
        paths=maybe_paths,
        users=maybe_users,
    )


def policy_specs(world: WorldSpec) -> st.SearchStrategy[PolicySpec]:
    """Declarative policies over ``world``'s path alphabet (including the
    empty policy and deny-by-default)."""
    return st.builds(
        PolicySpec,
        rules=st.lists(_rule_specs(world), max_size=3).map(tuple),
        default=st.sampled_from(("defer", "defer", "allow", "deny")),
    )


def _commands(world: WorldSpec) -> st.SearchStrategy[tuple[tuple[str, ...], ...]]:
    home = world.home
    menu: list[tuple[str, ...]] = [("/bin/echo", "fuzz")]
    menu += [("/bin/cat", path) for path in world.file_paths()]
    menu += [("/bin/ls", path) for path in world.dir_paths()]
    menu += [
        ("/bin/cat", world.missing_path()),
        ("/bin/touch", f"{home}/touched.txt"),
        ("/bin/mkdir", f"{home}/newdir"),
    ]
    return st.lists(st.sampled_from(menu), min_size=1, max_size=2).map(tuple)


def _ambient_ops(world: WorldSpec) -> st.SearchStrategy[tuple[tuple[str, str], ...]]:
    menu: list[tuple[str, str]] = []
    menu += [("list", path) for path in world.dir_paths()]
    menu += [("path", path) for path in world.dir_paths()]
    menu += [("read", path) for path in world.file_paths()]
    menu += [("append", path) for path in world.file_paths()]
    return st.lists(st.sampled_from(menu), max_size=3).map(tuple)


@st.composite
def scenarios(draw) -> Scenario:
    """Full (world, policy, script) triples."""
    world = draw(world_specs())
    policy = draw(st.one_of(st.none(), policy_specs(world)))
    return Scenario(
        world=world,
        policy=policy,
        commands=draw(_commands(world)),
        ambient_ops=draw(_ambient_ops(world)),
    )
