"""repro.fuzz — property-based scenario fuzzing of the sandbox invariants.

In the spirit of model-checking SDN controllers with generated network
events, the repo's determinism makes generated-scenario invariant
checking cheap: :mod:`repro.fuzz.strategies` synthesizes
(world, policy, script) triples — worlds from composable fixture
builders (including the git-like VCS case study), policies from the
declarative :class:`repro.policy.RuleEngine` rule format, scripts as
sandbox commands plus straight-line ambient programs — and
:mod:`repro.fuzz.invariants` cross-checks every triple against the
system-level properties everything else relies on:

1. **Containment** — sandboxed behavior ⊆ ambient behavior: a command
   that succeeds inside a sandbox must succeed with full ambient
   authority from identical world state (and produce the same bytes).
2. **Denials are audited** — every MAC denial during a sandboxed run
   has a matching audit-log denial record.
3. **Executor equivalence** — one batch of generated ambient jobs
   yields byte-identical result fingerprints on the sequential, thread,
   and snapshot-store executors.
4. **Footprint soundness** — the statically inferred capability
   footprint covers every path the run actually touched
   (``static ⊇ touched``).

Entry points: :func:`repro.fuzz.run_fuzz` (used by ``repro fuzz
--runs N --seed S``) and the hypothesis strategies themselves for
direct use in tests (see ``tests/fuzz/``).
"""

from repro.fuzz.invariants import InvariantViolation, check_scenario
from repro.fuzz.runner import FuzzReport, run_fuzz
from repro.fuzz.scenarios import PolicySpec, RuleSpec, Scenario, WorldSpec
from repro.fuzz.strategies import policy_specs, scenarios, world_specs

__all__ = [
    "FuzzReport",
    "InvariantViolation",
    "PolicySpec",
    "RuleSpec",
    "Scenario",
    "WorldSpec",
    "check_scenario",
    "policy_specs",
    "run_fuzz",
    "scenarios",
    "world_specs",
]
