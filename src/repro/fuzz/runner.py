"""The fuzz driver: N hypothesis-generated scenarios, one report.

Deterministic by construction — a fixed ``seed`` pins the generation
sequence (and the example database is disabled, so no state leaks
between runs or machines).  The same (runs, seed) pair therefore checks
the same scenarios everywhere: locally, in tests, and in the CI
``fuzz-smoke`` job.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Callable, Optional

from repro.fuzz.invariants import check_scenario
from repro.fuzz.scenarios import Scenario
from repro.fuzz.strategies import scenarios


@dataclass
class FuzzReport:
    """What one fuzz run did.

    ``ok`` is False when a scenario broke an invariant; ``falsifying``
    then holds the *shrunk* triple (JSON, :meth:`Scenario.describe`
    shape) and ``failure`` the violation text.
    """

    runs: int
    seed: int
    ok: bool
    failure: Optional[str] = None
    falsifying: Optional[dict] = None

    def write_falsifying(self, path: "str | pathlib.Path") -> pathlib.Path:
        """Dump the falsifying example as JSON (the CI artifact)."""
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.falsifying, indent=2, sort_keys=True) + "\n")
        return path


def run_fuzz(runs: int = 50, seed: int = 0,
             on_example: Optional[Callable[[Scenario], None]] = None) -> FuzzReport:
    """Generate ``runs`` scenarios from ``seed`` and cross-check each
    against the sandbox invariants.

    ``on_example`` (optional) observes every generated scenario before
    it is checked — the CLI uses it for progress output.
    """
    from hypothesis import HealthCheck, Phase, given
    from hypothesis import seed as hypothesis_seed
    from hypothesis import settings

    last: list[Scenario] = [None]  # type: ignore[list-item]

    @hypothesis_seed(seed)
    @settings(
        max_examples=runs,
        database=None,
        deadline=None,
        derandomize=False,
        suppress_health_check=list(HealthCheck),
        # generate + shrink only: `explain` would re-run extra examples
        # after shrinking, leaving `last` pointing at a non-falsifying
        # scenario.
        phases=(Phase.generate, Phase.shrink),
        print_blob=False,
    )
    @given(scenarios())
    def property(scenario: Scenario) -> None:
        last[0] = scenario
        if on_example is not None:
            on_example(scenario)
        check_scenario(scenario)

    try:
        property()
    except Exception as err:  # the minimal falsifying example, post-shrink
        scenario = last[0]
        return FuzzReport(
            runs=runs,
            seed=seed,
            ok=False,
            failure=f"{type(err).__name__}: {err}",
            falsifying=None if scenario is None else scenario.describe(),
        )
    return FuzzReport(runs=runs, seed=seed, ok=True)
