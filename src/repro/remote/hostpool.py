"""The coordinator's host registry: who is alive, who gets the next job.

A :class:`HostPool` holds one :class:`HostState` per agent address and
answers one question — *which live host should this job go to?* — under
one of two sharding policies:

* ``"round-robin"`` — rotate through live hosts in registration order;
  fair and predictable when jobs are uniform;
* ``"least-loaded"`` — pick the live host with the fewest in-flight
  jobs (registration order breaks ties); better when job costs vary,
  since a host stuck on a heavy job stops receiving new ones.

Health is observational, not probed: a host is healthy until a wire
operation against it fails, at which point the executor calls
:meth:`HostPool.mark_dead` and the pool stops offering it.  Jobs that
were committed to a dead host retry on the survivors with the dead host
*excluded* (the per-job ``excluded`` set passed to :meth:`pick`), so a
flapping host cannot trap a job in a retry loop against itself; when
every host is dead or excluded, :meth:`pick` raises ``LookupError`` and
the executor surfaces a typed
:class:`~repro.api.executors.base.BatchExecutionError` naming the job
and the hosts it tried.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.remote.wire import Connection, connect

#: The sharding policies :class:`HostPool` (and therefore
#: ``RemoteExecutor(policy=...)`` and the CLI's ``repro batch --policy``
#: flag) accepts.
SHARDING_POLICIES = ("round-robin", "least-loaded")


@dataclass(frozen=True)
class HostSpec:
    """One agent address.

    Constructed directly, or parsed from the ``"host:port"`` spelling
    the CLI's ``--hosts`` flag uses::

        >>> HostSpec.parse("127.0.0.1:7001")
        HostSpec(host='127.0.0.1', port=7001)
    """

    host: str
    port: int

    @classmethod
    def parse(cls, spec: "HostSpec | str | tuple[str, int]") -> "HostSpec":
        if isinstance(spec, HostSpec):
            return spec
        if isinstance(spec, tuple):
            return cls(spec[0], int(spec[1]))
        host, sep, port = spec.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(f"host spec {spec!r} is not 'host:port'")
        return cls(host, int(port))

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


class HostState:
    """Per-host book-keeping the pool and executor share.

    ``lock`` serialises the host's single lock-step connection;
    ``prepared`` records which template signatures this host has already
    restored (so rebinding the same template costs nothing); ``inflight``
    feeds the least-loaded policy.
    """

    def __init__(self, spec: HostSpec) -> None:
        self.spec = spec
        self.lock = threading.Lock()
        self.conn: "Connection | None" = None
        self.alive = True
        self.inflight = 0
        self.jobs_done = 0
        self.prepared: set = set()
        self.last_error: "str | None" = None

    def connection(self) -> Connection:
        """The host's (lazily opened, handshaken) connection.  Callers
        hold ``self.lock``; a connect failure propagates as
        :class:`~repro.remote.wire.WireError` for the executor's retry
        machinery."""
        if self.conn is None:
            self.conn, _hello = connect(self.spec.host, self.spec.port)
        return self.conn

    def __repr__(self) -> str:
        state = "alive" if self.alive else f"dead ({self.last_error})"
        return f"<Host {self.spec} {state} inflight={self.inflight} done={self.jobs_done}>"


class HostPool:
    """The registry + sharding policy over a set of agent hosts."""

    def __init__(self, hosts: "Iterable[HostSpec | str | tuple[str, int]]",
                 policy: str = "round-robin") -> None:
        if policy not in SHARDING_POLICIES:
            raise ValueError(f"unknown sharding policy {policy!r}; "
                             f"choices: {', '.join(SHARDING_POLICIES)}")
        self.policy = policy
        self._hosts = [HostState(HostSpec.parse(spec)) for spec in hosts]
        if not self._hosts:
            raise ValueError("a host pool needs at least one host")
        seen: set[str] = set()
        for host in self._hosts:
            if str(host.spec) in seen:
                raise ValueError(f"duplicate host {host.spec}")
            seen.add(str(host.spec))
        self._lock = threading.Lock()
        self._rr_next = 0

    def __len__(self) -> int:
        return len(self._hosts)

    def __iter__(self) -> Iterator[HostState]:
        return iter(self._hosts)

    @property
    def hosts(self) -> list[HostState]:
        return list(self._hosts)

    def live(self) -> list[HostState]:
        return [h for h in self._hosts if h.alive]

    # -- sharding ----------------------------------------------------------

    def pick(self, excluded: "Iterable[HostSpec]" = ()) -> HostState:
        """The next host for one job, per policy, among live hosts not
        in ``excluded``; raises ``LookupError`` when none qualify."""
        shunned = {HostSpec.parse(e) if not isinstance(e, HostSpec) else e
                   for e in excluded}
        with self._lock:
            candidates = [h for h in self._hosts
                          if h.alive and h.spec not in shunned]
            if not candidates:
                raise LookupError("no live hosts available")
            if self.policy == "least-loaded":
                return min(candidates, key=lambda h: h.inflight)
            # round-robin over the *registered* ring so the rotation
            # stays stable as hosts die and (future) hosts join.
            for _ in range(len(self._hosts)):
                host = self._hosts[self._rr_next % len(self._hosts)]
                self._rr_next += 1
                if host in candidates:
                    return host
            return candidates[0]

    @contextmanager
    def lease(self, host: HostState) -> Iterator[HostState]:
        """Scope one job's occupancy of ``host`` (feeds least-loaded).
        ``jobs_done`` counts only leases that completed — a host that
        died mid-job must not be credited with the work it ate."""
        with self._lock:
            host.inflight += 1
        try:
            yield host
        except BaseException:
            with self._lock:
                host.inflight -= 1
            raise
        with self._lock:
            host.inflight -= 1
            host.jobs_done += 1

    # -- health ------------------------------------------------------------

    def mark_dead(self, host: HostState, error: "BaseException | str") -> None:
        """Take ``host`` out of rotation and drop its connection.  The
        pool never resurrects a host — agents are cheap; restart one and
        build a fresh executor (or pool) to re-admit it."""
        with self._lock:
            host.alive = False
            host.last_error = str(error)
            conn, host.conn = host.conn, None
        if conn is not None:
            conn.close()

    def describe(self) -> str:
        """One line per host, for error messages and ``repr``."""
        return "; ".join(repr(h) for h in self._hosts)

    def close_all(self, farewell: bool = True) -> None:
        """Close every connection (sending GOODBYE to live peers when
        ``farewell`` — best-effort; a dead peer is already gone)."""
        for host in self._hosts:
            with self._lock:
                conn, host.conn = host.conn, None
            if conn is None:
                continue
            if farewell and host.alive:
                try:
                    conn.send("GOODBYE")
                except Exception:
                    pass
            conn.close()

    def __repr__(self) -> str:
        live = len(self.live())
        return f"<HostPool {live}/{len(self._hosts)} live policy={self.policy!r}>"
