"""The coordinator's host registry: who is alive, who gets the next job.

A :class:`HostPool` holds one :class:`HostState` per agent address and
answers one question — *which live host should this job go to?* — by
scoring every candidate with a :class:`repro.api.scheduling
.SchedulingPolicy` object (``score(host, job, telemetry) → weight``;
highest wins, registration order breaks ties).  The built-ins are
``RoundRobin``, ``LeastLoaded`` and ``StoreWarmth``; the legacy policy
*strings* still resolve, with a ``DeprecationWarning``, via
:func:`repro.api.scheduling.resolve_policy`.

Health is observational, not probed: a host is healthy until a wire
operation against it fails, at which point the executor calls
:meth:`HostPool.mark_dead` (a health *strike*) and the pool stops
offering it.  Jobs that were committed to a dead host retry on the
survivors with the dead host *excluded* (the per-job ``excluded`` set
passed to :meth:`pick`), so a flapping host cannot trap a job in a
retry loop against itself; when every host is dead or excluded,
:meth:`pick` raises ``LookupError`` and the executor surfaces a typed
:class:`~repro.api.executors.base.BatchExecutionError` naming the job
and the hosts it tried.

Dead is no longer forever.  Three ways back into rotation:

* an agent that says a clean **GOODBYE** (SIGTERM drain) is marked
  *retired* — out of rotation, but with no strike and no panic;
* :meth:`HostPool.try_revive` re-dials dead hosts and resurrects any
  whose agent answers the handshake again (restarted agents keep their
  snapshot stores, so resurrection is warm);
* a gateway admits hosts dynamically: :meth:`HostPool.add_host` admits
  a brand-new address mid-flight, and re-announcing a known address
  revives it (see :mod:`repro.serve`).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from repro.remote.wire import WireError, open_link

if TYPE_CHECKING:
    from repro.api.scheduling import SchedulingPolicy
    from repro.remote.wire import ChannelMux, LockstepLink


def __getattr__(name: str):
    # Derived lazily so importing this module never triggers the
    # repro.api package import (hostpool sits *below* repro.api in the
    # layer map; repro.api.scheduling is a leaf module, but importing
    # it executes the package __init__, which imports the executors,
    # which import us).
    if name == "SHARDING_POLICIES":
        from repro.api.scheduling import LEGACY_POLICY_STRINGS
        return tuple(LEGACY_POLICY_STRINGS)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class HostSpec:
    """One agent address.

    Constructed directly, or parsed from the ``"host:port"`` spelling
    the CLI's ``--hosts`` flag uses::

        >>> HostSpec.parse("127.0.0.1:7001")
        HostSpec(host='127.0.0.1', port=7001)
    """

    host: str
    port: int

    @classmethod
    def parse(cls, spec: "HostSpec | str | tuple[str, int]") -> "HostSpec":
        if isinstance(spec, HostSpec):
            return spec
        if isinstance(spec, tuple):
            return cls(spec[0], int(spec[1]))
        host, sep, port = spec.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(f"host spec {spec!r} is not 'host:port'")
        return cls(host, int(port))

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


class HostState:
    """Per-host book-keeping the pool and executor share.

    ``link`` is the host's wire conversation — a
    :class:`~repro.remote.wire.ChannelMux` against a v2 agent (N
    concurrent jobs on one connection) or a
    :class:`~repro.remote.wire.LockstepLink` against a v1 one;
    ``prepared`` records which template signatures this host has already
    restored (so rebinding the same template costs nothing);
    ``inflight`` feeds load-aware policies; ``strikes`` counts crashes
    (clean retirements don't strike).
    """

    def __init__(self, spec: HostSpec) -> None:
        self.spec = spec
        self.lock = threading.Lock()
        self.link: "LockstepLink | ChannelMux | None" = None
        self.alive = True
        self.retired = False
        self.strikes = 0
        self.inflight = 0
        self.jobs_done = 0
        self.prepared: set = set()
        self.last_error: "str | None" = None

    def open_link(self, on_goodbye=None) -> "LockstepLink | ChannelMux":
        """The host's (lazily opened, handshaken) link.  A connect
        failure propagates as :class:`~repro.remote.wire.WireError` for
        the executor's retry machinery."""
        with self.lock:
            if self.link is None:
                self.link, _hello = open_link(self.spec.host, self.spec.port,
                                              on_goodbye=on_goodbye)
            return self.link

    def __repr__(self) -> str:
        if self.alive:
            state = "alive"
        elif self.retired:
            state = "retired"
        else:
            state = f"dead ({self.last_error})"
        return f"<Host {self.spec} {state} inflight={self.inflight} done={self.jobs_done}>"


class HostPool:
    """The registry + scheduling policy over a set of agent hosts.

    ``policy`` is a :class:`~repro.api.scheduling.SchedulingPolicy`
    object (default :class:`~repro.api.scheduling.RoundRobin`); legacy
    strings resolve with a ``DeprecationWarning``.  ``allow_empty``
    lets a pool start with zero hosts — the gateway's mode, where
    agents announce themselves in later.
    """

    def __init__(self, hosts: "Iterable[HostSpec | str | tuple[str, int]]" = (),
                 policy: "SchedulingPolicy | str | None" = None,
                 allow_empty: bool = False) -> None:
        from repro.api.scheduling import resolve_policy
        self.policy = resolve_policy(policy)
        self._hosts = [HostState(HostSpec.parse(spec)) for spec in hosts]
        if not self._hosts and not allow_empty:
            raise ValueError("a host pool needs at least one host")
        seen: set[str] = set()
        for host in self._hosts:
            if str(host.spec) in seen:
                raise ValueError(f"duplicate host {host.spec}")
            seen.add(str(host.spec))
        self._lock = threading.Lock()
        self._rotation = 0

    def __len__(self) -> int:
        return len(self._hosts)

    def __iter__(self) -> Iterator[HostState]:
        return iter(self._hosts)

    @property
    def hosts(self) -> list[HostState]:
        return list(self._hosts)

    def live(self) -> list[HostState]:
        return [h for h in self._hosts if h.alive]

    # -- sharding ----------------------------------------------------------

    def pick(self, excluded: "Iterable[HostSpec]" = (), job: Any = None,
             wire_key: "str | None" = None) -> HostState:
        """The next host for one job: the policy's highest-scoring live
        host not in ``excluded`` (registration order breaks ties);
        raises ``LookupError`` when none qualify.  ``wire_key`` names
        the job's template so warmth-aware policies can see which hosts
        already hold it."""
        shunned = self._parse_excluded(excluded)
        with self._lock:
            candidates = [(i, h) for i, h in enumerate(self._hosts)
                          if h.alive and h.spec not in shunned]
            if not candidates:
                raise LookupError("no live hosts available")
            ring = len(self._hosts)

            def telemetry(position: int, host: HostState) -> dict:
                return {
                    "ring_position": position,
                    "ring_size": ring,
                    "rotation": self._rotation,
                    "inflight": host.inflight,
                    "jobs_done": host.jobs_done,
                    "warm": wire_key is not None and wire_key in host.prepared,
                    "strikes": host.strikes,
                    "retired": host.retired,
                }

            position, best = max(
                candidates,
                key=lambda pair: self.policy.score(pair[1], job,
                                                   telemetry(*pair)))
            # The rotation trails the last pick so ring-walking policies
            # (RoundRobin) resume just past it, dead hosts skipped.
            self._rotation = (position + 1) % ring
            return best

    @staticmethod
    def _parse_excluded(excluded: "Iterable[HostSpec]") -> set:
        return {HostSpec.parse(e) if not isinstance(e, HostSpec) else e
                for e in excluded}

    @contextmanager
    def lease(self, host: HostState) -> Iterator[HostState]:
        """Scope one job's occupancy of ``host`` (feeds load-aware
        policies).  ``jobs_done`` counts only leases that completed — a
        host that died mid-job must not be credited with the work it
        ate."""
        with self._lock:
            host.inflight += 1
        try:
            yield host
        except BaseException:
            with self._lock:
                host.inflight -= 1
            raise
        with self._lock:
            host.inflight -= 1
            host.jobs_done += 1

    # -- links -------------------------------------------------------------

    def link_for(self, host: HostState) -> "LockstepLink | ChannelMux":
        """Open (or reuse) the host's link; a clean GOODBYE from the
        peer marks the host retired rather than dead."""
        return host.open_link(
            on_goodbye=lambda: self.mark_retired(host))

    # -- health ------------------------------------------------------------

    def mark_dead(self, host: HostState, error: "BaseException | str") -> None:
        """Take ``host`` out of rotation with a health strike and drop
        its link.  Not forever: :meth:`try_revive` (or a gateway
        re-announce) brings a recovered agent back."""
        with self._lock:
            host.alive = False
            host.retired = False
            host.strikes += 1
            host.last_error = str(error)
            link, host.link = host.link, None
        if link is not None:
            link.close()

    def mark_retired(self, host: HostState) -> None:
        """Take ``host`` out of rotation *cleanly* — it said GOODBYE
        (drained SIGTERM), so no strike and no panic; its jobs were
        drained, not eaten."""
        with self._lock:
            host.alive = False
            host.retired = True
            host.last_error = "retired (clean GOODBYE)"
            link, host.link = host.link, None
        if link is not None:
            link.close()

    def revive(self, spec: "HostSpec | str | tuple[str, int]") -> HostState:
        """Put a known host back into rotation (an agent restarted and
        re-announced itself).  The restarted process lost its in-memory
        templates — ``prepared`` resets so the next job re-PREPAREs —
        but kept its snapshot store, so the re-PREPARE is warm."""
        spec = HostSpec.parse(spec)
        for host in self._hosts:
            if host.spec == spec:
                with self._lock:
                    host.alive = True
                    host.retired = False
                    host.last_error = None
                    host.prepared.clear()
                    link, host.link = host.link, None
                if link is not None:
                    link.close()
                return host
        raise LookupError(f"no such host {spec}")

    def add_host(self, spec: "HostSpec | str | tuple[str, int]") -> HostState:
        """Admit ``spec`` into the pool: a brand-new address joins the
        ring; a known one is revived (rejoin after restart)."""
        spec = HostSpec.parse(spec)
        if any(h.spec == spec for h in self._hosts):
            return self.revive(spec)
        host = HostState(spec)
        with self._lock:
            self._hosts.append(host)
        return host

    def try_revive(self, excluded: "Iterable[HostSpec]" = ()
                   ) -> list[HostState]:
        """Re-dial every dead host (skipping ``excluded``) and resurrect
        the ones whose agent answers the handshake again.  Called by
        executors as a last resort before declaring "no live hosts"."""
        shunned = self._parse_excluded(excluded)
        revived: list[HostState] = []
        for host in self._hosts:
            if host.alive or host.spec in shunned:
                continue
            try:
                link, _hello = open_link(
                    host.spec.host, host.spec.port, timeout=2.0,
                    on_goodbye=lambda h=host: self.mark_retired(h))
            except (WireError, OSError):
                continue
            with self._lock:
                host.alive = True
                host.retired = False
                host.last_error = None
                host.prepared.clear()
                host.link = link
            revived.append(host)
        return revived

    def describe(self) -> str:
        """One line per host, for error messages and ``repr``."""
        return "; ".join(repr(h) for h in self._hosts)

    def close_all(self, farewell: bool = True) -> None:
        """Close every link (sending GOODBYE to live peers when
        ``farewell`` — best-effort; a dead peer is already gone)."""
        for host in self._hosts:
            with self._lock:
                link, host.link = host.link, None
            if link is None:
                continue
            if farewell and host.alive:
                try:
                    link.goodbye()
                except Exception:
                    pass
            link.close()

    def __repr__(self) -> str:
        live = len(self.live())
        return (f"<HostPool {live}/{len(self._hosts)} live "
                f"policy={self.policy!r}>")
