"""repro.remote — sharding worlds across agent hosts.

The multi-host counterpart of :mod:`repro.api.executors`: a "cluster"
is just N **agents** (``python -m repro agent --store DIR --port P``),
each a separate process owning its own persistent
:class:`repro.kernel.store.SnapshotStore`, and a
:class:`repro.api.executors.remote.RemoteExecutor` on the coordinator
that shards (script, user) jobs across them over a small, versioned,
length-prefixed wire protocol (:mod:`repro.remote.wire`).

Three modules:

* :mod:`repro.remote.wire` — the frame codec and message vocabulary
  (HELLO / PREPARE / NEED / BLOB / READY / SUBMIT / RESULT / GOODBYE);
  snapshot blobs travel by digest and are only shipped on a miss;
* :mod:`repro.remote.agent` — the worker-host process: restores
  templates from its store (or over the wire), forks per job, and runs
  exactly the same :func:`repro.api.executors.base.run_job` path every
  other executor uses — which is why remote fingerprints are
  byte-identical to sequential ones;
* :mod:`repro.remote.hostpool` — the coordinator's host registry:
  sharding policies (round-robin, least-loaded), per-host health, and
  the retry-with-exclusion bookkeeping the executor leans on when a
  host dies mid-batch.
"""

from repro.remote.hostpool import HostPool, HostSpec, SHARDING_POLICIES
from repro.remote.wire import (
    WIRE_VERSION,
    Connection,
    Message,
    WireClosed,
    WireError,
    WireVersionError,
)

__all__ = [
    "WIRE_VERSION",
    "SHARDING_POLICIES",
    "Connection",
    "Message",
    "WireError",
    "WireClosed",
    "WireVersionError",
    "HostPool",
    "HostSpec",
]
