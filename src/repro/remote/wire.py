"""The agent wire protocol: length-prefixed JSON headers + binary blobs.

One **frame** is::

    !II          header length, blob length (big-endian, 4 bytes each)
    header       UTF-8 JSON object; ``"type"`` names the message
    blob         raw bytes (snapshot blobs, pickled fixtures/results)

Everything structural (message type, job metadata, digests, op counts)
rides in the JSON header, so a frame is inspectable with nothing but a
socket dump; everything *opaque* (snapshot bytes, pickled
``RunResult``\\ s and fixture records) rides in the blob, so JSON never
sees bytes it cannot represent.  Frames are capped at
:data:`MAX_FRAME_BYTES` — a corrupt length prefix must fail fast, not
allocate gigabytes.

The conversation is strictly lock-step (one request, one reply, on one
connection), which keeps both ends free of reordering logic; the
coordinator gets parallelism from *many connections* (one per host),
not from pipelining on one.

::

    coordinator                               agent
    -----------                               -----
    HELLO {version}                     ->
                                        <-    HELLO {version, pid, store}
    PREPARE {snapshot, scripts, ...}    ->
                                        <-    READY {source, build_ops}
                                              … or NEED {snapshot}, then:
    BLOB {snapshot} + blob bytes        ->
                                        <-    READY {source: "wire", ...}
    SUBMIT {index, name, user} [+ fn]   ->
                                        <-    RESULT {status} + result blob
    GOODBYE                             ->    (agent closes)

Version negotiation happens once, in HELLO: both sides send
:data:`WIRE_VERSION` and a mismatch raises :class:`WireVersionError`
(the agent also refuses with an ERROR frame so old coordinators get a
readable diagnostic instead of a codec explosion).
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import ReproError

#: Bumped whenever frames or the message vocabulary change incompatibly.
#: Both ends refuse to talk across a mismatch — a cluster is upgraded by
#: restarting its agents, never by limping through a mixed protocol.
WIRE_VERSION = 1

#: Hard cap on one frame (header + blob).  Snapshot blobs are hundreds
#: of KiB; 256 MiB is comfortably above any real machine image while
#: still failing fast on a corrupt length prefix.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEAD = struct.Struct("!II")


def template_key(snapshot: str, scripts: "Iterable[Iterable[str]]",
                 default_user: str, install_shill: bool) -> str:
    """The protocol-level identity of one prepared template.

    Both ends compute it from the same PREPARE ingredients — snapshot
    digest, script registry, default user, install flag — so a SUBMIT
    can name exactly which template it runs against.  An agent may hold
    many templates at once (one coordinator sweeping many worlds, or
    many coordinators); without this key in SUBMIT, a reused connection
    would silently run jobs against whichever template was prepared
    *last*.
    """
    basis = json.dumps(
        [snapshot, [list(pair) for pair in scripts], default_user,
         bool(install_shill)],
        sort_keys=True)
    return hashlib.sha256(basis.encode()).hexdigest()


class WireError(ReproError):
    """The conversation broke: bad frame, unexpected message, dead peer."""


class WireClosed(WireError):
    """The peer closed the connection (cleanly or mid-frame)."""


class WireVersionError(WireError):
    """The two ends speak different :data:`WIRE_VERSION`\\ s."""


@dataclass(frozen=True)
class Message:
    """One decoded frame.

    ``type`` is the message name (``"HELLO"``, ``"SUBMIT"``, …),
    ``fields`` the rest of the JSON header, ``blob`` the binary payload
    (empty for most messages).
    """

    type: str
    fields: dict[str, Any] = field(default_factory=dict)
    blob: bytes = b""

    def expect(self, *types: str) -> "Message":
        """Assert this message is one of ``types`` (protocol checking on
        both ends); an agent-side ERROR frame re-raises as the error it
        reports."""
        if self.type == "ERROR" and "ERROR" not in types:
            raise WireError(f"peer reported: {self.fields.get('error', 'unknown')}")
        if self.type not in types:
            raise WireError(
                f"expected {' or '.join(types)}, got {self.type!r}")
        return self


class Connection:
    """A framed, lock-step connection over one TCP socket.

    Thin by design: :meth:`send` writes one frame, :meth:`recv` reads
    one, :meth:`request` does a round trip.  Thread safety is the
    caller's job (the executor holds a per-host lock; the agent talks to
    one coordinator per connection thread).
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        # TCP_NODELAY: frames are small request/reply pairs; Nagle would
        # add 40ms floors to every job round trip.
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass

    # -- frames ------------------------------------------------------------

    def send(self, type_: str, fields: "dict[str, Any] | None" = None,
             blob: bytes = b"") -> None:
        header = dict(fields or {})
        header["type"] = type_
        payload = json.dumps(header, separators=(",", ":"),
                             sort_keys=True).encode()
        if len(payload) + len(blob) > MAX_FRAME_BYTES:
            raise WireError(f"frame too large: {len(payload) + len(blob)} bytes")
        try:
            self._sock.sendall(_HEAD.pack(len(payload), len(blob)) + payload + blob)
        except OSError as err:
            raise WireClosed(f"send failed: {err}") from err

    def recv(self) -> Message:
        head = self._read_exact(_HEAD.size, eof_ok=True)
        if head is None:
            raise WireClosed("connection closed")
        header_len, blob_len = _HEAD.unpack(head)
        if header_len + blob_len > MAX_FRAME_BYTES:
            raise WireError(f"frame too large: {header_len + blob_len} bytes "
                            "(corrupt length prefix?)")
        payload = self._read_exact(header_len)
        blob = self._read_exact(blob_len) if blob_len else b""
        try:
            header = json.loads(payload.decode())
            type_ = header.pop("type")
        except (ValueError, KeyError) as err:
            raise WireError(f"bad frame header: {err}") from err
        return Message(type_, header, blob)

    def request(self, type_: str, fields: "dict[str, Any] | None" = None,
                blob: bytes = b"") -> Message:
        """One lock-step round trip."""
        self.send(type_, fields, blob)
        return self.recv()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    # -- plumbing ----------------------------------------------------------

    def _read_exact(self, n: int, eof_ok: bool = False) -> "bytes | None":
        """``n`` bytes or bust: a short read mid-frame is always an
        error; EOF *between* frames is a clean close when ``eof_ok``."""
        chunks: list[bytes] = []
        remaining = n
        while remaining:
            try:
                chunk = self._sock.recv(min(remaining, 1 << 20))
            except OSError as err:
                raise WireClosed(f"recv failed: {err}") from err
            if not chunk:
                if eof_ok and remaining == n:
                    return None
                raise WireClosed(
                    f"connection closed mid-frame ({n - remaining}/{n} bytes)")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)


def client_handshake(conn: Connection) -> Message:
    """The coordinator side of HELLO: send our version, check theirs."""
    reply = conn.request("HELLO", {"version": WIRE_VERSION}).expect("HELLO")
    peer = reply.fields.get("version")
    if peer != WIRE_VERSION:
        raise WireVersionError(
            f"agent speaks wire version {peer}, we speak {WIRE_VERSION} "
            "(restart the older side)")
    return reply


def connect(host: str, port: int, timeout: "float | None" = 10.0,
            ) -> tuple[Connection, Message]:
    """Open a handshaken connection to an agent; returns the connection
    and the agent's HELLO (pid, store root — useful for diagnostics)."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as err:
        raise WireClosed(f"cannot reach agent at {host}:{port}: {err}") from err
    # The handshake timeout guards connect; after it, block normally —
    # jobs legitimately take longer than any handshake should.
    conn = Connection(sock)
    try:
        hello = client_handshake(conn)
    except WireError:
        conn.close()
        raise
    sock.settimeout(None)
    return conn, hello
