"""The agent wire protocol: length-prefixed JSON headers + binary blobs.

One **frame** is::

    !II          header length, blob length (big-endian, 4 bytes each)
    header       UTF-8 JSON object; ``"type"`` names the message
    blob         raw bytes (snapshot blobs, pickled fixtures/results)

Everything structural (message type, job metadata, digests, op counts)
rides in the JSON header, so a frame is inspectable with nothing but a
socket dump; everything *opaque* (snapshot bytes, pickled
``RunResult``\\ s and fixture records) rides in the blob, so JSON never
sees bytes it cannot represent.  Frames are capped at
:data:`MAX_FRAME_BYTES` — a corrupt length prefix must fail fast, not
allocate gigabytes.

Wire version 1 was strictly lock-step (one request, one reply, on one
connection): the coordinator got parallelism from *many connections*
(one per host), never from pipelining on one.  Version 2 keeps every
frame and message of v1 and adds a **channel id**: a client may tag a
request with ``"channel": N`` and the peer echoes the same channel on
every frame of the reply, so N jobs can be in flight on one connection
at once and replies may arrive in any order.  Frames without a channel
keep v1's lock-step meaning, which is also the negotiated fallback when
either peer can only speak v1.

::

    coordinator                               agent
    -----------                               -----
    HELLO {version, min_version}        ->
                                        <-    HELLO {version, pid, store}
    PREPARE {snapshot, scripts, ch}     ->
                                        <-    READY {source, build_ops, ch}
                                              … or NEED {snapshot, ch}, then:
    BLOB {snapshot, ch} + blob bytes    ->
                                        <-    READY {source: "wire", ch}
    SUBMIT {index, name, user, ch} [+fn]->    (N of these may interleave)
    SUBMIT {index, name, user, ch'}     ->
                                        <-    RESULT {status, ch'} + blob
                                        <-    RESULT {status, ch} + blob
    GOODBYE                             ->    (agent closes)
    (agent may also send GOODBYE first: a clean, drained shutdown)

Version negotiation happens once, in HELLO: the client sends the
highest version it speaks (:data:`WIRE_VERSION`) and the lowest it will
accept (:data:`MIN_WIRE_VERSION`); the server replies with the
*effective* version — ``min(yours, theirs)`` — and both sides speak
that.  A peer that answers with a version above ours, or that cannot
meet either side's floor, raises :class:`WireVersionError` (the agent
also refuses with an ERROR frame so mismatched coordinators get a
readable diagnostic instead of a codec explosion).

Two client-side conversation shapes wrap a handshaken connection:

* :class:`LockstepLink` — v1 semantics behind a lock: one request/reply
  at a time, multi-frame conversations hold the connection exclusively;
* :class:`ChannelMux` — v2 pipelining: a background reader routes each
  reply to the waiter that owns its channel, so any number of threads
  can :meth:`~ChannelMux.request` concurrently; multi-frame
  conversations (:meth:`~ChannelMux.converse`) briefly gate new sends
  while in-flight replies continue to drain.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import queue
import socket
import struct
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.errors import ReproError

#: Bumped whenever frames or the message vocabulary change incompatibly.
#: Version 2 added channel-tagged frames (concurrent jobs on one
#: connection); both ends negotiate down to the highest version both
#: speak, and refuse to talk below :data:`MIN_WIRE_VERSION`.
WIRE_VERSION = 2

#: The oldest version this end still speaks (v1 = channel-less
#: lock-step).  A peer that cannot reach this floor is refused.
MIN_WIRE_VERSION = 1

#: Hard cap on one frame (header + blob).  Snapshot blobs are hundreds
#: of KiB; 256 MiB is comfortably above any real machine image while
#: still failing fast on a corrupt length prefix.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEAD = struct.Struct("!II")


def template_key(snapshot: str, scripts: "Iterable[Iterable[str]]",
                 default_user: str, install_shill: bool) -> str:
    """The protocol-level identity of one prepared template.

    Both ends compute it from the same PREPARE ingredients — snapshot
    digest, script registry, default user, install flag — so a SUBMIT
    can name exactly which template it runs against.  An agent may hold
    many templates at once (one coordinator sweeping many worlds, or
    many coordinators); without this key in SUBMIT, a reused connection
    would silently run jobs against whichever template was prepared
    *last*.
    """
    basis = json.dumps(
        [snapshot, [list(pair) for pair in scripts], default_user,
         bool(install_shill)],
        sort_keys=True)
    return hashlib.sha256(basis.encode()).hexdigest()


class WireError(ReproError):
    """The conversation broke: bad frame, unexpected message, dead peer."""


class WireClosed(WireError):
    """The peer closed the connection (cleanly or mid-frame)."""


class WireVersionError(WireError):
    """The two ends speak different :data:`WIRE_VERSION`\\ s."""


@dataclass(frozen=True)
class Message:
    """One decoded frame.

    ``type`` is the message name (``"HELLO"``, ``"SUBMIT"``, …),
    ``fields`` the rest of the JSON header, ``blob`` the binary payload
    (empty for most messages).
    """

    type: str
    fields: dict[str, Any] = field(default_factory=dict)
    blob: bytes = b""

    def expect(self, *types: str) -> "Message":
        """Assert this message is one of ``types`` (protocol checking on
        both ends); an agent-side ERROR frame re-raises as the error it
        reports."""
        if self.type == "ERROR" and "ERROR" not in types:
            raise WireError(f"peer reported: {self.fields.get('error', 'unknown')}")
        if self.type not in types:
            raise WireError(
                f"expected {' or '.join(types)}, got {self.type!r}")
        return self


class Connection:
    """A framed, lock-step connection over one TCP socket.

    Thin by design: :meth:`send` writes one frame, :meth:`recv` reads
    one, :meth:`request` does a round trip.  Thread safety is the
    caller's job (the executor holds a per-host lock; the agent talks to
    one coordinator per connection thread).
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        #: The negotiated wire version, stamped by the handshake helpers
        #: (:func:`client_handshake` / the agent's HELLO handling);
        #: pre-handshake connections assume the current version.
        self.version = WIRE_VERSION
        # Sends are serialised: with channels, worker threads reply on a
        # shared connection, and two interleaved sendall()s would tear
        # frames.  recv stays single-reader by construction (one reader
        # loop per connection on both ends).
        self._send_lock = threading.Lock()
        # TCP_NODELAY: frames are small request/reply pairs; Nagle would
        # add 40ms floors to every job round trip.
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass

    # -- frames ------------------------------------------------------------

    def send(self, type_: str, fields: "dict[str, Any] | None" = None,
             blob: bytes = b"") -> None:
        header = dict(fields or {})
        header["type"] = type_
        payload = json.dumps(header, separators=(",", ":"),
                             sort_keys=True).encode()
        if len(payload) + len(blob) > MAX_FRAME_BYTES:
            raise WireError(f"frame too large: {len(payload) + len(blob)} bytes")
        try:
            with self._send_lock:
                self._sock.sendall(_HEAD.pack(len(payload), len(blob)) + payload + blob)
        except OSError as err:
            raise WireClosed(f"send failed: {err}") from err

    def recv(self) -> Message:
        head = self._read_exact(_HEAD.size, eof_ok=True)
        if head is None:
            raise WireClosed("connection closed")
        header_len, blob_len = _HEAD.unpack(head)
        if header_len + blob_len > MAX_FRAME_BYTES:
            raise WireError(f"frame too large: {header_len + blob_len} bytes "
                            "(corrupt length prefix?)")
        payload = self._read_exact(header_len)
        blob = self._read_exact(blob_len) if blob_len else b""
        try:
            header = json.loads(payload.decode())
            type_ = header.pop("type")
        except (ValueError, KeyError) as err:
            raise WireError(f"bad frame header: {err}") from err
        return Message(type_, header, blob)

    def request(self, type_: str, fields: "dict[str, Any] | None" = None,
                blob: bytes = b"") -> Message:
        """One lock-step round trip."""
        self.send(type_, fields, blob)
        return self.recv()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    # -- plumbing ----------------------------------------------------------

    def _read_exact(self, n: int, eof_ok: bool = False) -> "bytes | None":
        """``n`` bytes or bust: a short read mid-frame is always an
        error; EOF *between* frames is a clean close when ``eof_ok``."""
        chunks: list[bytes] = []
        remaining = n
        while remaining:
            try:
                chunk = self._sock.recv(min(remaining, 1 << 20))
            except OSError as err:
                raise WireClosed(f"recv failed: {err}") from err
            if not chunk:
                if eof_ok and remaining == n:
                    return None
                raise WireClosed(
                    f"connection closed mid-frame ({n - remaining}/{n} bytes)")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)


def negotiate_version(peer_version: Any, peer_min: Any = None) -> int:
    """The server side of version negotiation: the effective version for
    a peer advertising ``peer_version`` (and optionally the floor it
    will accept).  Raises :class:`WireVersionError` when no version
    satisfies both ends — v1 peers (who advertise no floor) implicitly
    require exactly their own version or below."""
    try:
        advertised = int(peer_version)
    except (TypeError, ValueError):
        raise WireVersionError(f"peer advertised no usable wire version "
                               f"({peer_version!r})") from None
    floor = advertised if peer_min is None else int(peer_min)
    effective = min(WIRE_VERSION, advertised)
    if effective < max(MIN_WIRE_VERSION, floor):
        raise WireVersionError(
            f"no common wire version: peer speaks {advertised} "
            f"(floor {floor}), we speak {WIRE_VERSION} "
            f"(floor {MIN_WIRE_VERSION}); restart the older side")
    return effective


def client_handshake(conn: Connection) -> Message:
    """The coordinator side of HELLO: advertise the version range we
    speak; the peer replies with the effective (negotiated) version.

    The negotiated version is stamped on ``conn.version``.  A v1 peer
    simply echoes ``1`` (it never saw ``min_version``) and the
    connection proceeds channel-less and lock-step; a peer replying
    *above* our version ignored negotiation and is refused.
    """
    reply = conn.request("HELLO", {"version": WIRE_VERSION,
                                   "min_version": MIN_WIRE_VERSION}).expect("HELLO")
    peer = reply.fields.get("version")
    if not isinstance(peer, int) or peer > WIRE_VERSION or peer < MIN_WIRE_VERSION:
        raise WireVersionError(
            f"agent speaks wire version {peer}, we speak "
            f"{MIN_WIRE_VERSION}..{WIRE_VERSION} (restart the older side)")
    conn.version = peer
    return reply


def connect(host: str, port: int, timeout: "float | None" = 10.0,
            ) -> tuple[Connection, Message]:
    """Open a handshaken connection to an agent; returns the connection
    and the agent's HELLO (pid, store root — useful for diagnostics).
    The negotiated wire version lands on ``connection.version``."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as err:
        raise WireClosed(f"cannot reach agent at {host}:{port}: {err}") from err
    # The handshake timeout guards connect; after it, block normally —
    # jobs legitimately take longer than any handshake should.
    conn = Connection(sock)
    try:
        hello = client_handshake(conn)
    except WireError:
        conn.close()
        raise
    sock.settimeout(None)
    return conn, hello


# ---------------------------------------------------------------------------
# client-side conversation shapes: lock-step (v1) and channels (v2)
# ---------------------------------------------------------------------------

class _Conversation:
    """One multi-frame exchange (PREPARE … NEED/BLOB … READY) bound to a
    link.  ``send``/``recv`` speak on the conversation's channel (v2) or
    on the raw connection (v1); the owning link guarantees exclusivity
    for the conversation's duration."""

    def __init__(self, send: "Callable[[str, dict | None, bytes], None]",
                 recv: "Callable[[], Message]") -> None:
        self._send = send
        self._recv = recv

    def send(self, type_: str, fields: "dict[str, Any] | None" = None,
             blob: bytes = b"") -> None:
        self._send(type_, fields, blob)

    def recv(self) -> Message:
        return self._recv()

    def request(self, type_: str, fields: "dict[str, Any] | None" = None,
                blob: bytes = b"") -> Message:
        self.send(type_, fields, blob)
        return self.recv()


class LockstepLink:
    """v1 semantics behind a lock: one exchange at a time.

    The shape every caller codes against (``request`` / ``converse`` /
    ``close``), implemented with plain mutual exclusion — the negotiated
    fallback for peers that never learned channels, and the degenerate
    case of :class:`ChannelMux` with one channel.
    """

    concurrency = 1

    def __init__(self, conn: Connection,
                 on_goodbye: "Callable[[], None] | None" = None) -> None:
        self._conn = conn
        self._on_goodbye = on_goodbye
        self._lock = threading.RLock()

    @property
    def version(self) -> int:
        return self._conn.version

    def request(self, type_: str, fields: "dict[str, Any] | None" = None,
                blob: bytes = b"") -> Message:
        with self._lock:
            reply = self._conn.request(type_, fields, blob)
            if reply.type == "GOODBYE":
                # The peer is retiring cleanly (drained SIGTERM); there
                # is no reply to this exchange and never will be.
                if self._on_goodbye is not None:
                    self._on_goodbye()
                raise WireClosed("peer retired (clean GOODBYE)")
            return reply

    @contextmanager
    def converse(self):
        """Exclusive use of the connection for a multi-frame exchange."""
        with self._lock:
            yield _Conversation(self._conn.send, self._conn.recv)

    def goodbye(self) -> None:
        """Tell the peer we are leaving cleanly (no reply expected)."""
        self._conn.send("GOODBYE")

    def close(self) -> None:
        self._conn.close()


class ChannelMux:
    """v2 pipelining: concurrent exchanges multiplexed on one connection.

    A background reader routes every incoming frame to the waiter that
    owns its ``channel``; any number of threads may :meth:`request`
    concurrently.  :meth:`converse` runs a multi-frame exchange
    (PREPARE's NEED/BLOB loop): it holds the *send* gate — no new
    requests start while a conversation is mid-flight, so the peer can
    service the exchange inline — but replies to already-sent requests
    keep draining through the reader throughout.

    An unsolicited, channel-less GOODBYE from the peer is a **clean
    retirement** (a drained SIGTERM shutdown): ``on_goodbye`` fires once
    and subsequent failures report the retirement instead of a crash.
    """

    def __init__(self, conn: Connection,
                 on_goodbye: "Callable[[], None] | None" = None) -> None:
        self._conn = conn
        self._on_goodbye = on_goodbye
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._send_gate = threading.RLock()
        self._waiters: "dict[int, queue.SimpleQueue]" = {}
        self._dead: "WireError | None" = None
        self.retired = False
        self._reader = threading.Thread(target=self._read_loop, daemon=True,
                                        name="wire-mux-reader")
        self._reader.start()

    @property
    def version(self) -> int:
        return self._conn.version

    # -- exchanges ---------------------------------------------------------

    def request(self, type_: str, fields: "dict[str, Any] | None" = None,
                blob: bytes = b"") -> Message:
        """One channel-tagged round trip, safe to call from any thread."""
        channel, waiter = self._open_channel()
        try:
            with self._send_gate:
                self._send_on(channel, type_, fields, blob)
            return self._take(waiter)
        finally:
            self._close_channel(channel)

    @contextmanager
    def converse(self):
        """A multi-frame exchange on one channel, exclusive on the send
        side for its duration (in-flight replies still drain)."""
        channel, waiter = self._open_channel()
        try:
            with self._send_gate:
                yield _Conversation(
                    lambda t, f=None, b=b"": self._send_on(channel, t, f, b),
                    lambda: self._take(waiter))
        finally:
            self._close_channel(channel)

    def goodbye(self) -> None:
        """Tell the peer we are leaving cleanly (no reply expected)."""
        with self._send_gate:
            self._conn.send("GOODBYE")

    def close(self) -> None:
        self._conn.close()

    # -- plumbing ----------------------------------------------------------

    def _open_channel(self) -> "tuple[int, queue.SimpleQueue]":
        channel = next(self._ids)
        waiter: queue.SimpleQueue = queue.SimpleQueue()
        with self._lock:
            if self._dead is not None:
                raise self._dead
            self._waiters[channel] = waiter
        return channel, waiter

    def _close_channel(self, channel: int) -> None:
        with self._lock:
            self._waiters.pop(channel, None)

    def _send_on(self, channel: int, type_: str,
                 fields: "dict[str, Any] | None", blob: bytes) -> None:
        tagged = dict(fields or {})
        tagged["channel"] = channel
        try:
            self._conn.send(type_, tagged, blob)
        except WireError as err:
            if self.retired:
                raise WireClosed("peer retired (clean GOODBYE)") from err
            raise

    def _take(self, waiter: "queue.SimpleQueue") -> Message:
        got = waiter.get()
        if isinstance(got, BaseException):
            raise got
        return got

    def _read_loop(self) -> None:
        failure: WireError
        try:
            while True:
                msg = self._conn.recv()
                if msg.type == "GOODBYE" and "channel" not in msg.fields:
                    self.retired = True
                    if self._on_goodbye is not None:
                        self._on_goodbye()
                    continue  # the peer closes next; recv turns that into WireClosed
                with self._lock:
                    waiter = self._waiters.get(msg.fields.get("channel"))
                if waiter is not None:
                    waiter.put(msg)
                # Unclaimed frames (a reply outliving its abandoned
                # waiter) are dropped: the waiter is gone, nobody cares.
        except WireError as err:
            failure = err if not self.retired else WireClosed(
                "peer retired (clean GOODBYE)")
        except Exception as err:  # pragma: no cover - defensive
            failure = WireError(f"mux reader died: {err}")
        with self._lock:
            self._dead = failure
            waiters, self._waiters = list(self._waiters.values()), {}
        for waiter in waiters:
            waiter.put(failure)


def open_link(host: str, port: int, timeout: "float | None" = 10.0,
              on_goodbye: "Callable[[], None] | None" = None,
              ) -> "tuple[LockstepLink | ChannelMux, Message]":
    """Connect, handshake, and wrap the connection in the conversation
    shape the negotiated version supports: a :class:`ChannelMux` for v2
    peers, a :class:`LockstepLink` for v1."""
    conn, hello = connect(host, port, timeout=timeout)
    if conn.version >= 2:
        return ChannelMux(conn, on_goodbye=on_goodbye), hello
    return LockstepLink(conn, on_goodbye=on_goodbye), hello
