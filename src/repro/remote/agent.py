"""The agent: one worker host of a sharded batch cluster.

An agent is a plain process — ``python -m repro agent --store DIR
--port P`` — that owns a :class:`repro.kernel.store.SnapshotStore` and
serves the wire protocol (:mod:`repro.remote.wire`) on a local socket.
A "cluster" is just N of these; there is no membership service, no
shared state, and nothing to deploy beyond the Python tree itself.

Per PREPARE, the agent obtains the named snapshot the cheapest way it
can — an already-restored in-memory template, its own store (the warm
path the benchmarks op-gate: **zero** world-build kernel ops, no bytes
over the wire), or a one-time BLOB transfer from the coordinator on a
miss — and per SUBMIT it forks that template and runs the job through
:func:`repro.api.executors.base.run_job`, the *same* single execution
path every local executor uses.  That sharing is the whole determinism
argument: an agent cannot diverge from ``SequentialExecutor`` without
``run_job`` itself diverging.

On startup the agent prints one machine-readable line::

    AGENT LISTENING host=127.0.0.1 port=43215 store=/path/to/store

so callers that spawn agents with ``--port 0`` (tests, the CI smoke
step, :func:`spawn_local_agent`) can discover the ephemeral port.
"""

from __future__ import annotations

import argparse
import os
import pickle
import signal
import socket
import subprocess
import sys
import threading
import time
import traceback as _traceback
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING

from repro.kernel.store import SnapshotStore
from repro.remote.wire import (
    WIRE_VERSION,
    Connection,
    Message,
    WireClosed,
    WireError,
    WireVersionError,
    negotiate_version,
    template_key,
)

if TYPE_CHECKING:
    from repro.api.executors.base import JobTemplate

#: Exit status of a chaos-killed agent (see ``--chaos-exit-on``) —
#: distinct from error exits so tests can assert the death was the
#: scripted one.
CHAOS_EXIT_STATUS = 70


class AgentServer:
    """The serving half of one agent process.

    ``store`` roots the agent's own snapshot store; ``host``/``port``
    bind the listener (port 0 picks an ephemeral port, reported by
    :attr:`address`).  ``chaos_exit_on`` is the fault-injection hook the
    host-death tests use: when a submitted script contains the marker
    string, the agent hard-exits *after* reading the SUBMIT frame and
    *before* replying — exactly the window where a coordinator has
    committed a job to a host it can no longer trust.
    """

    def __init__(self, store: "SnapshotStore | Path | str | None" = None,
                 host: str = "127.0.0.1", port: int = 0,
                 chaos_exit_on: "str | None" = None) -> None:
        self.store = store if isinstance(store, SnapshotStore) else SnapshotStore(store)
        self.chaos_exit_on = chaos_exit_on
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        # Restored kernels are shared across connections and job threads
        # (forks are what isolate jobs), so one restore serves every
        # coordinator that names the same snapshot.
        self._kernels: dict[str, object] = {}
        self._templates: dict[str, "JobTemplate"] = {}
        self._state_lock = threading.Lock()
        self._shutdown = threading.Event()
        # Retirement bookkeeping: live connections get a GOODBYE on
        # clean shutdown, and in-flight jobs are drained first.
        self._connections: "set[Connection]" = set()
        self._conn_lock = threading.Lock()
        self._inflight = 0
        self._inflight_cv = threading.Condition()
        self.retiring = False

    # -- serving -----------------------------------------------------------

    def announce(self, out=None) -> None:
        print(f"AGENT LISTENING host={self.address[0]} port={self.address[1]} "
              f"store={self.store.root}", file=out or sys.stdout, flush=True)

    def serve_forever(self) -> None:
        """Accept coordinators until :meth:`shutdown`; one reader thread
        per connection.  On a v2 connection SUBMITs fan out to job
        threads (replies carry the request's channel id), so one agent
        runs N jobs concurrently on one connection; v1 peers get the
        classic lock-step loop."""
        while not self._shutdown.is_set():
            try:
                sock, _peer = self._listener.accept()
            except OSError:
                break  # listener closed by shutdown()
            thread = threading.Thread(target=self._serve_connection,
                                      args=(Connection(sock),), daemon=True)
            thread.start()

    def shutdown(self) -> None:
        self._shutdown.set()
        try:
            self._listener.close()
        except OSError:
            pass

    def retire(self, timeout: float = 30.0) -> None:
        """Clean shutdown (SIGTERM/SIGINT): stop taking new work, drain
        in-flight jobs, and send GOODBYE on every live connection so
        pools mark this host *retired* — drained, no health strike, no
        re-shard panic — rather than dead.  A crash skips all of this,
        which is exactly how the two become distinguishable."""
        self.retiring = True
        with self._inflight_cv:
            self._inflight_cv.wait_for(lambda: self._inflight == 0,
                                       timeout=timeout)
        with self._conn_lock:
            conns = list(self._connections)
        for conn in conns:
            try:
                conn.send("GOODBYE", {"reason": "retiring", "pid": os.getpid()})
            except WireError:
                pass
        self.shutdown()

    def announce_to_gateway(self, gateway: str, *, retries: int = 50,
                            delay: float = 0.2) -> None:
        """Register with a gateway (``--announce HOST:PORT``): one
        ANNOUNCE → WELCOME exchange on a short-lived connection; the
        gateway dials back on the advertised address.  Retries cover an
        agent and gateway racing to start (and an agent restarting
        before its gateway notices the old incarnation died)."""
        ghost, _, gport = gateway.rpartition(":")
        last: "Exception | None" = None
        for _ in range(retries):
            try:
                sock = socket.create_connection((ghost, int(gport)), timeout=5.0)
                conn = Connection(sock)
                try:
                    conn.request("ANNOUNCE", {
                        "host": self.address[0], "port": self.address[1],
                        "store": str(self.store.root), "pid": os.getpid(),
                        "version": WIRE_VERSION,
                    }).expect("WELCOME")
                finally:
                    conn.close()
                return
            except (WireError, OSError) as err:
                last = err
                time.sleep(delay)
        raise RuntimeError(f"cannot announce to gateway {gateway}: {last}")

    # -- one coordinator ---------------------------------------------------

    def _serve_connection(self, conn: Connection) -> None:
        with self._conn_lock:
            self._connections.add(conn)
        try:
            hello = conn.recv().expect("HELLO")
            try:
                effective = negotiate_version(hello.fields.get("version"),
                                              hello.fields.get("min_version"))
            except WireVersionError as err:
                conn.send("ERROR", {"error": str(err)})
                return
            conn.version = effective
            conn.send("HELLO", {"version": effective, "pid": os.getpid(),
                                "store": str(self.store.root)})
            while True:
                msg = conn.recv()
                if msg.type == "GOODBYE":
                    return
                if msg.type == "PREPARE":
                    # Inline in the reader: the peer holds its send gate
                    # for the whole NEED/BLOB exchange, so the next
                    # frames on the socket are the exchange's own.
                    with self._track_inflight():
                        self._handle_prepare(conn, msg)
                elif msg.type == "SUBMIT":
                    if effective >= 2 and "channel" in msg.fields:
                        self._spawn_submit(conn, msg)
                    else:
                        with self._track_inflight():
                            self._handle_submit(conn, msg)
                else:
                    self._reply(conn, msg,
                                "ERROR", {"error": f"unexpected {msg.type!r}"})
                    return
        except WireClosed:
            return  # coordinator went away; nothing to clean up
        except Exception:
            try:
                conn.send("ERROR", {"error": _traceback.format_exc(limit=20)})
            except WireError:
                pass
        finally:
            with self._conn_lock:
                self._connections.discard(conn)
            conn.close()

    @contextmanager
    def _track_inflight(self):
        with self._inflight_cv:
            self._inflight += 1
        try:
            yield
        finally:
            with self._inflight_cv:
                self._inflight -= 1
                self._inflight_cv.notify_all()

    def _spawn_submit(self, conn: Connection, msg: Message) -> None:
        """Run one channel-tagged SUBMIT on its own thread (forks are
        what isolate jobs, so concurrent jobs on one template are safe).
        The in-flight count is taken *before* the thread starts so a
        concurrent :meth:`retire` cannot observe a gap."""
        with self._inflight_cv:
            self._inflight += 1

        def run() -> None:
            try:
                self._handle_submit(conn, msg)
            except WireError:
                pass  # the reader owns connection teardown
            finally:
                with self._inflight_cv:
                    self._inflight -= 1
                    self._inflight_cv.notify_all()

        threading.Thread(target=run, daemon=True, name="agent-job").start()

    @staticmethod
    def _reply(conn: Connection, msg: Message, type_: str,
               fields: "dict | None" = None, blob: bytes = b"") -> None:
        """Send a reply to ``msg``, echoing its channel id (if any) so a
        multiplexing peer can route it back to the right waiter."""
        fields = dict(fields or {})
        if "channel" in msg.fields:
            fields["channel"] = msg.fields["channel"]
        conn.send(type_, fields, blob)

    # -- PREPARE -----------------------------------------------------------

    def _handle_prepare(self, conn: Connection, msg: Message) -> "JobTemplate":
        """Materialise the named template; replies READY (or NEED → BLOB
        → READY when the snapshot must cross the wire)."""
        from repro.api.executors.base import JobTemplate
        from repro.kernel.kernel import KernelStats
        from repro.kernel.serialize import delta_base_digest, is_delta

        fields = msg.fields
        snapshot = fields["snapshot"]
        key = self._template_key(fields)
        with self._state_lock:
            cached = self._templates.get(key)
        if cached is not None:
            self._reply(conn, msg, "READY", {"source": "memory", "build_ops": {}})
            return cached

        source = "store"
        payload = self.store.get(snapshot)
        if payload is None:
            payload = self._fetch_blob(conn, msg, snapshot)
            source = "wire"
        # A delta blob restores against its base chain; every link must
        # be in our store before restore, fetched the same way.
        probe = payload
        while is_delta(probe):
            base_digest = delta_base_digest(probe)
            probe = self.store.get(base_digest)
            if probe is None:
                probe = self._fetch_blob(conn, msg, base_digest)
                source = "wire"

        with self._state_lock:
            kernel = self._kernels.get(snapshot)
            if kernel is None:
                kernel = self.store.restore(snapshot)
                self._kernels[snapshot] = kernel
            fixtures = pickle.loads(msg.blob) if msg.blob else {}
            template = JobTemplate(
                kernel=kernel,
                scripts=tuple((n, s) for n, s in fields.get("scripts", [])),
                default_user=fields["default_user"],
                fixtures=fixtures,
                install_shill=fields.get("install_shill", True),
                digest=None,
                token=("agent", key),
            )
            self._templates[key] = template
        # The restored machine carries the op counters recorded when the
        # snapshot was taken; any surplus over the coordinator-reported
        # template counters is kernel work *this agent* performed to
        # boot — the number the warm-store benchmark gates at zero.
        build_ops = KernelStats.delta(fields.get("stats", {}),
                                      kernel.stats.snapshot())
        self._reply(conn, msg, "READY", {"source": source, "build_ops": build_ops})
        return template

    def _fetch_blob(self, conn: Connection, msg: Message, digest: str) -> bytes:
        """NEED → BLOB: pull one named blob from the coordinator.  The
        export frame's digest is verified before the bytes are trusted,
        and the reply must carry exactly the blob we asked for."""
        self._reply(conn, msg, "NEED", {"snapshot": digest})
        reply = conn.recv().expect("BLOB")
        imported = self.store.import_blob(reply.blob)
        if imported != digest:
            raise WireError(f"BLOB carried {imported[:12]}…, "
                            f"NEED named {digest[:12]}…")
        return self.store.load(digest)

    @staticmethod
    def _template_key(fields: dict) -> str:
        """One restored template per distinct (snapshot, scripts, user,
        install) — the same identity a local executor pool is keyed on,
        and the key a SUBMIT names (:func:`repro.remote.wire
        .template_key`, so both ends agree byte-for-byte)."""
        return template_key(fields["snapshot"], fields.get("scripts", []),
                            fields["default_user"],
                            fields.get("install_shill", True))

    # -- SUBMIT ------------------------------------------------------------

    def _handle_submit(self, conn: Connection, msg: Message) -> None:
        from repro.api.executors.base import BatchExecutionError, ExecutorJob, run_job

        fields = msg.fields
        source = fields.get("source")
        if self.chaos_exit_on and source and self.chaos_exit_on in source:
            # Fault injection: die in the SUBMIT→RESULT window, taking
            # the whole process (and every connection on it) with us —
            # what a kernel panic or OOM kill looks like from the
            # coordinator's side.
            os._exit(CHAOS_EXIT_STATUS)
        # SUBMIT names its template: an agent holds many (several
        # worlds, several coordinators) and "whatever this connection
        # prepared last" would silently run jobs against the wrong
        # machine when an executor is reused across worlds.
        template = self._templates.get(fields.get("template", ""))
        if template is None:
            self._reply(conn, msg,
                        "ERROR", {"error": "SUBMIT names an unprepared template"})
            raise WireError("SUBMIT names an unprepared template")
        index, name, user = fields["index"], fields["name"], fields.get("user")
        try:
            # Unpickling the mapped fn is part of the job: a callable
            # the agent cannot import is a deterministic failure worth a
            # RESULT with attribution, not a dead connection.
            job = ExecutorJob(
                index=index, name=name, source=source, user=user,
                fn=pickle.loads(msg.blob) if fields.get("has_fn") else None,
            )
            result = run_job(template, job)
            self._reply(conn, msg, "RESULT", {"index": index, "status": "ok"},
                        pickle.dumps(result))
        except BatchExecutionError as err:
            self._reply(conn, msg, "RESULT", {
                "index": index, "status": "error", "name": err.job_name,
                "user": err.user, "traceback": err.traceback_text,
            })
        except Exception:
            self._reply(conn, msg, "RESULT", {
                "index": index, "status": "error", "name": name,
                "user": user, "traceback": _traceback.format_exc(),
            })


def serve(argv: "list[str] | None" = None) -> int:
    """The ``python -m repro agent`` entrypoint."""
    parser = argparse.ArgumentParser(
        prog="repro agent",
        description="serve one worker host of a sharded batch cluster")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="snapshot store root (default: $REPRO_STORE, "
                             "else the user cache dir)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="listen port (0 = ephemeral, reported on stdout)")
    parser.add_argument("--chaos-exit-on", default=None, metavar="MARKER",
                        help="fault-injection hook: hard-exit when a submitted "
                             "script contains MARKER (host-death tests)")
    parser.add_argument("--announce", default=None, metavar="HOST:PORT",
                        help="announce this agent to a `repro serve` gateway "
                             "(the gateway dials back; restart + re-announce "
                             "is how an agent rejoins a fleet)")
    args = parser.parse_args(argv)
    server = AgentServer(store=args.store, host=args.host, port=args.port,
                         chaos_exit_on=args.chaos_exit_on)

    def _retire(signum, frame):  # clean shutdown: drain, GOODBYE, exit 0
        server.retire()
        os._exit(0)

    signal.signal(signal.SIGTERM, _retire)
    signal.signal(signal.SIGINT, _retire)
    # Gateway registration happens *before* the readiness line: callers
    # waiting on "AGENT LISTENING" (spawn_local_agent, CI) may dispatch
    # through the gateway the moment they see it, so printing it first
    # would advertise a fleet member the gateway has never heard of.
    if args.announce:
        server.announce_to_gateway(args.announce)
    server.announce()
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - SIGINT is handled above
        pass
    finally:
        server.shutdown()
    return 0


def spawn_local_agent(store: "Path | str", *, host: str = "127.0.0.1",
                      port: int = 0,
                      chaos_exit_on: "str | None" = None,
                      announce: "str | None" = None, timeout: float = 30.0,
                      ) -> "tuple[subprocess.Popen, str]":
    """Spawn one agent subprocess; returns ``(process, "host:port")``.

    The convenience wrapper tests, benchmarks and the CI smoke step
    share: it runs ``python -m repro agent --port 0`` with ``src`` on
    ``PYTHONPATH``, waits for the ``AGENT LISTENING`` line, and hands
    back the discovered address.  The caller owns the process
    (``proc.kill()`` when done — or mid-batch, if that is the test).
    Passing an explicit ``port`` re-binds a known address — how a
    "restarted" agent reclaims its old identity in rejoin tests.
    """
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    cmd = [sys.executable, "-m", "repro", "agent",
           "--store", str(store), "--host", host, "--port", str(port)]
    if chaos_exit_on:
        cmd += ["--chaos-exit-on", chaos_exit_on]
    if announce:
        cmd += ["--announce", announce]
    proc = subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE, text=True)
    assert proc.stdout is not None
    # The announce line is the readiness barrier; a crash-on-boot agent
    # hits EOF instead and is reported with its exit status.
    line = proc.stdout.readline()
    if "AGENT LISTENING" not in line:
        proc.kill()
        raise RuntimeError(f"agent failed to start (exit {proc.poll()}): {line!r}")
    parts = dict(item.split("=", 1) for item in line.split()[2:])
    # Drain stdout in the background so a chatty agent never blocks on a
    # full pipe.
    threading.Thread(target=proc.stdout.read, daemon=True).start()
    return proc, f"{parts['host']}:{parts['port']}"


if __name__ == "__main__":  # pragma: no cover - exercised via `-m repro agent`
    raise SystemExit(serve())
