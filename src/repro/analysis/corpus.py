"""The shipped script corpus: everything ``repro lint --corpus`` checks.

The repo carries its SHILL scripts as Python string constants (the demo
in ``repro.__main__``, the four case studies in ``repro.casestudies``);
this module flattens them into lintable suites so the self-lint baseline
(``benchmarks/baseline_lint.json``) has a stable, enumerable universe.
"""

from __future__ import annotations

from repro.analysis.infer import AnalysisContext
from repro.analysis.lint import LintReport, lint_source
from repro.analysis.rules import RuleSet


def shipped_corpus() -> dict[str, dict[str, str]]:
    """suite name -> {script name -> source}.  ``.cap`` members double
    as the require-resolution registry for their suite's ambients."""
    from repro.__main__ import _DEMO_AMBIENT, _DEMO_FIND_JPG
    from repro.casestudies import apache, findgrep, grading, package_mgmt

    return {
        "demo": {
            "find_jpg.cap": _DEMO_FIND_JPG,
            "demo.ambient": _DEMO_AMBIENT,
        },
        "findgrep": {
            **findgrep.SCRIPTS,
            "findgrep_simple.ambient":
                findgrep.SIMPLE_AMBIENT.format(out="/root/matches.txt"),
            "findgrep_fine.ambient":
                findgrep.FINE_AMBIENT.format(out="/root/matches.txt"),
            "probe.ambient": findgrep.PROBE_AMBIENT,
        },
        "grading": {
            **grading.SCRIPTS,
            "grading_sandboxed.ambient": grading.SANDBOXED_AMBIENT_SCRIPT,
            "grading_shellscript.ambient": grading.SHELLSCRIPT_AMBIENT_SCRIPT,
            "grading_shill.ambient": grading.PURE_SHILL_AMBIENT_SCRIPT,
        },
        "apache": {
            **apache.SCRIPTS,
            "apache.ambient": apache.AMBIENT_SCRIPT,
            "probe.ambient": apache.PROBE_AMBIENT,
        },
        "package_mgmt": {
            **package_mgmt.SCRIPTS,
            "emacs_pkg.ambient": package_mgmt.AMBIENT_SCRIPT_TEMPLATE.format(
                downloads="/root/downloads", prefix="/usr/local"),
        },
    }


def lint_corpus(rules: RuleSet | None = None) -> dict[str, LintReport]:
    """Lint every shipped script; report keys are ``suite/name``."""
    out: dict[str, LintReport] = {}
    for suite, scripts in sorted(shipped_corpus().items()):
        registry = {name: source for name, source in scripts.items()
                    if name.endswith(".cap")}
        context = AnalysisContext(registry)
        for name in sorted(scripts):
            out[f"{suite}/{name}"] = lint_source(
                f"{suite}/{name}", scripts[name], rules=rules, context=context)
    return out
