"""Pre-dispatch gating: reject statically-doomed batch jobs up front.

A job whose script is guaranteed to violate its contracts will burn a
kernel fork (and, for remote executors, a wire round-trip) only to come
back with a denial.  Running the linter *before* dispatch turns that
into a :class:`LintRejection` raised in the submitting process — which
also makes the diagnostics byte-identical across executors, since no
executor ever sees the job.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.analysis.footprint import Diagnostic
from repro.analysis.infer import AnalysisContext
from repro.analysis.lint import LintReport, lint_source
from repro.analysis.rules import RuleSet
from repro.api.executors.base import BatchExecutionError
from repro.lang.modules import AMBIENT_LANG

#: Valid values for ``Batch(..., lint=...)`` / ``repro batch --lint``.
LINT_MODES = ("off", "warn", "strict")


class LintRejection(BatchExecutionError):
    """A batch job rejected by pre-dispatch lint, before any fork or
    wire round-trip.  Carries the full diagnostic list and the inferred
    footprint; the message names the script and its first diagnostic."""

    def __init__(self, job_name: str, user: str | None,
                 diagnostics: Sequence[Diagnostic],
                 footprint=None) -> None:
        self.diagnostics = tuple(diagnostics)
        self.footprint = footprint
        first = next((d for d in self.diagnostics if d.severity == "error"),
                     self.diagnostics[0] if self.diagnostics else None)
        detail = first.format() if first is not None else "lint failed"
        super().__init__(job_name, user, traceback_text="",
                         message=f"rejected by pre-dispatch lint: {detail}")

    def __reduce__(self):
        return (LintRejection,
                (self.job_name, self.user, self.diagnostics, self.footprint))


def gate_jobs(
    jobs: Iterable,
    scripts: Mapping[str, str] | None,
    mode: str,
    rules: RuleSet | None = None,
) -> dict[int, LintReport]:
    """Lint every job (``.name``/``.source``/``.user``) before dispatch.

    ``mode`` is one of :data:`LINT_MODES`: ``off`` skips entirely,
    ``warn`` returns the reports and raises nothing, ``strict`` raises
    :class:`LintRejection` for the first job (in submission order) whose
    report — or the report of any script it transitively requires —
    carries an error.  Returns reports keyed by job index either way,
    so footprints can be attached to results.
    """
    if mode not in LINT_MODES:
        raise ValueError(f"lint mode must be one of {LINT_MODES}, got {mode!r}")
    reports: dict[int, LintReport] = {}
    if mode == "off":
        return reports
    registry = dict(scripts or {})
    context = AnalysisContext(registry)
    dep_reports: dict[str, LintReport] = {}
    rejection: Optional[LintRejection] = None
    for index, job in enumerate(jobs):
        report = lint_source(job.name, job.source, rules=rules,
                             context=context, default_lang=AMBIENT_LANG)
        reports[index] = report
        if mode != "strict" or rejection is not None:
            continue
        # A job is doomed if its own script errors, or any script it
        # requires (transitively) does — the runtime would load the dep
        # and hit the same violation after the fork.
        doomed = list(report.errors)
        for dep in _transitive_requires(report, context, rules, dep_reports):
            doomed.extend(dep_reports[dep].errors)
        if doomed:
            rejection = LintRejection(job.name, job.user, doomed,
                                      report.footprint)
    if rejection is not None:
        raise rejection
    return reports


def _transitive_requires(
    report: LintReport,
    context: AnalysisContext,
    rules: RuleSet | None,
    dep_reports: dict[str, LintReport],
) -> list[str]:
    """Every script reachable from ``report`` through ``require``,
    linting (and memoising) each along the way."""
    from repro.analysis.lint import report_for

    seen: list[str] = []
    frontier = list(report.footprint.requires)
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.append(name)
        if name not in dep_reports:
            analysis = context.analyze(name)
            if analysis is None:
                continue
            dep_reports[name] = report_for(analysis, rules)
        frontier.extend(dep_reports[name].footprint.requires)
    return [name for name in seen if name in dep_reports]
