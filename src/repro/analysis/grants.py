"""Static reading of contract syntax: what does a contract *grant*?

A contract in a ``provide`` clause both demands privileges from the
caller (provider obligation) and attenuates the parameter to exactly
those privileges (consumer obligation) — see
:mod:`repro.contracts.capctc`.  For analysis we flatten each parameter
contract to a disjunction of :class:`GrantBranch` objects: the body of
the export must be satisfiable by *some* branch, and any explicit
``+priv`` the body exercises through *no* branch is a least-privilege
gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast_ as A
from repro.sandbox.privileges import ALL_PRIVS, PrivSet, priv_from_name

#: Branch kinds that describe a filesystem capability with a privilege set.
CAP_KINDS = ("dir", "file", "cap")

#: Library contract names with known meanings (beyond privilege bundles).
_PREDICATE_NARROW = {"is_file": "file", "is_dir": "dir", "is_cap": "cap"}
_NEUTRAL_NAMES = {
    "is_bool", "is_string", "is_num", "is_list", "is_syserror", "is_void",
    "void", "any",
}


@dataclass(frozen=True)
class GrantBranch:
    """One alternative a contract may admit.

    ``kind`` is one of ``dir``/``file``/``cap`` (with ``privs``),
    ``pipe_factory``, ``socket``, ``wallet``, ``fun``, ``any``
    (unconstrained — predicates like ``is_list``), or ``opaque``
    (a contract we cannot reason about; suppresses checks).
    """

    kind: str
    privs: PrivSet | None = None

    def admits_privs(self, required: PrivSet) -> bool:
        if self.kind in ("any", "opaque"):
            return True
        if self.kind not in CAP_KINDS:
            return False
        if self.privs is None:
            return True
        return required.subset_of(self.privs)


@dataclass(frozen=True)
class ExplicitPriv:
    """An explicit ``+priv`` item spelled in the contract source."""

    priv_name: str
    span: A.Span


@dataclass(frozen=True)
class Grant:
    """The flattened authority one parameter contract conveys."""

    branches: tuple[GrantBranch, ...] = ()
    explicit: tuple[ExplicitPriv, ...] = ()
    unknown: tuple[tuple[str, A.Span], ...] = field(default=())
    or_parts: tuple[tuple["Grant", A.Span], ...] = ()

    @property
    def opaque(self) -> bool:
        return any(b.kind == "opaque" for b in self.branches) or not self.branches

    @property
    def grants_network(self) -> bool:
        return self.opaque or any(b.kind == "socket" for b in self.branches)

    @property
    def grants_wallet(self) -> bool:
        return self.opaque or any(b.kind == "wallet" for b in self.branches)

    def admits(self, required: PrivSet) -> bool:
        """Does some branch hold (at least) ``required``?"""
        if not self.branches:
            return True
        return any(b.admits_privs(required) for b in self.branches)

    def union_privs(self) -> frozenset:
        """Every privilege any branch may convey (footprint upper bound)."""
        out: set = set()
        for b in self.branches:
            if b.kind in CAP_KINDS and b.privs is not None:
                out |= b.privs.privs()
        return frozenset(out)


def privset_from_items(items: tuple[A.CtcPrivItem, ...]) -> PrivSet:
    """Mirror of the runtime elaborator's privilege-set construction."""
    mapping: dict = {}
    for item in items:
        priv = priv_from_name(item.priv)
        if item.modifier_full:
            mapping[priv] = frozenset(ALL_PRIVS)
        elif item.modifier is not None:
            mapping[priv] = frozenset(priv_from_name(m) for m in item.modifier)
        else:
            mapping[priv] = None
    return PrivSet(mapping)


def _bundle(name: str) -> tuple[GrantBranch, ...] | None:
    from repro.contracts import library as L

    if name == "readonly":
        return (GrantBranch("dir", L.READONLY_DIR_PRIVS),
                GrantBranch("file", L.READONLY_FILE_PRIVS))
    if name == "writeable":
        return (GrantBranch("file", L.WRITEABLE_FILE_PRIVS),)
    if name == "executable":
        return (GrantBranch("file", L.EXEC_FILE_PRIVS),)
    if name == "full_privs":
        return (GrantBranch("cap", PrivSet.full()),)
    if name == "pipe_factory":
        return (GrantBranch("pipe_factory"),)
    if name == "socket_factory":
        return (GrantBranch("socket"),)
    if name.endswith("_wallet") or name == "wallet":
        return (GrantBranch("wallet"),)
    return None


def _merge_kind(a: str, b: str) -> str | None:
    if a == "any":
        return b
    if b == "any":
        return a
    if a == b:
        return a
    if a == "cap" and b in CAP_KINDS:
        return b
    if b == "cap" and a in CAP_KINDS:
        return a
    if "opaque" in (a, b):
        return "opaque"
    return None


def _merge(a: GrantBranch, b: GrantBranch) -> GrantBranch | None:
    kind = _merge_kind(a.kind, b.kind)
    if kind is None:
        return None
    if a.privs is None:
        return GrantBranch(kind, b.privs)
    if b.privs is None:
        return GrantBranch(kind, a.privs)
    return GrantBranch(kind, a.privs.restricted_to(b.privs))


def grant_of(
    ctc: "A.Ctc",
    poly: dict[str, PrivSet] | None = None,
    known_names: frozenset[str] | set[str] = frozenset(),
) -> Grant:
    """Flatten a contract AST to a :class:`Grant`.

    ``poly`` maps in-scope ``forall`` variables to their privilege
    bounds; ``known_names`` are identifiers bound by requires/defs (a
    name outside both the library and ``known_names`` is reported as
    unknown — rule SH004)."""
    poly = poly or {}

    if isinstance(ctc, A.CtcName):
        name = ctc.name
        if name in poly:
            return Grant((GrantBranch("cap", poly[name]),))
        bundle = _bundle(name)
        if bundle is not None:
            return Grant(bundle)
        if name in _PREDICATE_NARROW:
            return Grant((GrantBranch(_PREDICATE_NARROW[name]),))
        if name in _NEUTRAL_NAMES:
            return Grant((GrantBranch("any"),))
        if name in known_names:
            return Grant((GrantBranch("opaque"),))
        return Grant((GrantBranch("opaque"),), unknown=((name, ctc.span),))

    if isinstance(ctc, A.CtcCap):
        kind = "file" if ctc.kind == "pipe" else ctc.kind
        privs = privset_from_items(ctc.items)
        explicit = tuple(ExplicitPriv(item.priv, item.span) for item in ctc.items)
        return Grant((GrantBranch(kind, privs),), explicit=explicit)

    if isinstance(ctc, A.CtcOr):
        parts = [grant_of(p, poly, known_names) for p in ctc.parts]
        return Grant(
            branches=tuple(b for g in parts for b in g.branches),
            explicit=tuple(e for g in parts for e in g.explicit),
            unknown=tuple(u for g in parts for u in g.unknown),
            or_parts=tuple((g, p.span) for g, p in zip(parts, ctc.parts)),
        )

    if isinstance(ctc, A.CtcAnd):
        parts = [grant_of(p, poly, known_names) for p in ctc.parts]
        branches: list[GrantBranch] = [GrantBranch("any")]
        for g in parts:
            branches = [m for a in branches for b in g.branches
                        if (m := _merge(a, b)) is not None]
        # drop the untouched neutral placeholder if real branches emerged
        real = tuple(b for b in branches if b.kind != "any") or tuple(branches)
        return Grant(
            branches=real,
            explicit=tuple(e for g in parts for e in g.explicit),
            unknown=tuple(u for g in parts for u in g.unknown),
        )

    if isinstance(ctc, A.CtcFun):
        return Grant((GrantBranch("fun"),))

    if isinstance(ctc, A.CtcForall):
        return Grant((GrantBranch("opaque"),))

    return Grant((GrantBranch("opaque"),))
