"""Abstract interpretation of SHILL scripts: capability-footprint inference.

The interpreter walks :mod:`repro.lang.ast_` with *abstract values* in
place of capabilities: each contract parameter (and each ambient
``open_file``/``open_dir`` mint) becomes an **origin**, and every
operation on a value flowing from an origin is recorded against it.
Derivation is tracked flat, two levels deep — an operation on a
capability minted through deriving privilege ``V`` lands in
``via[V]`` — which matches the runtime's effective-modifier semantics
(a modifier applies to the whole derived subtree).

Function bodies are summarised per formal parameter and the summaries
applied at call sites; a fixpoint iteration handles recursion and
mutual recursion.  Calls across modules go through the callee's
*contract*: the contract both demands its privileges from the supplied
capability (recorded as uses — this is what classifies an ambient
script's path prefixes as read or written) and attenuates, so the
callee's internal behaviour never leaks past its grant.

Nothing here executes script code or touches a kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Mapping, Optional

from repro.analysis.footprint import (
    ExportFootprint,
    Footprint,
    ParamFootprint,
    classify_privs,
)
from repro.analysis.grants import CAP_KINDS, Grant, grant_of
from repro.lang import ast_ as A
from repro.lang.modules import read_lang
from repro.lang.parser import parse_source
from repro.sandbox.privileges import Priv, PrivSet

# ---------------------------------------------------------------------------
# abstract values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AV:
    """Base abstract value; the bare instance is "unknown"."""


@dataclass(frozen=True)
class CapAV(AV):
    """A capability flowing from ``origin``; ``via`` is the deriving
    privilege it was minted through (flat, per the module docstring)."""

    origin: str
    via: Optional[Priv] = None
    path: Optional[str] = None


@dataclass(frozen=True)
class WalletAV(AV):
    origin: Optional[str] = None


@dataclass(frozen=True)
class FactoryAV(AV):
    kind: str  # "pipe" | "socket"
    origin: Optional[str] = None


@dataclass(frozen=True)
class FunAV(AV):
    name: str


@dataclass(frozen=True)
class ImportAV(AV):
    module: str
    export: str


@dataclass(frozen=True)
class NativeAV(AV):
    """A ``pkg_native`` wrapper: calling it forks a sandbox."""


@dataclass(frozen=True)
class BuiltinAV(AV):
    name: str


@dataclass(frozen=True)
class ConstAV(AV):
    value: object


@dataclass(frozen=True)
class ListAV(AV):
    items: tuple


UNKNOWN = AV()


# ---------------------------------------------------------------------------
# use records
# ---------------------------------------------------------------------------


class UseRecord:
    """Everything observed about one origin.  ``direct``/``via`` are
    *strong* facts (the body performs this, or a contract demands it);
    ``may`` is the weak upper bound (multi-branch contracts, sandbox
    escapes) used for footprint classification only, never for
    under-privilege errors."""

    __slots__ = ("direct", "via", "may", "escapes", "escape_span",
                 "called", "call_span", "network", "network_span",
                 "wallet", "wallet_span")

    def __init__(self) -> None:
        self.direct: dict[Priv, A.Span] = {}
        self.via: dict[Priv, dict[Priv, A.Span]] = {}
        self.may: dict[Priv, A.Span] = {}
        self.escapes = False
        self.escape_span = A.NO_SPAN
        self.called = False
        self.call_span = A.NO_SPAN
        self.network = False
        self.network_span = A.NO_SPAN
        self.wallet = False
        self.wallet_span = A.NO_SPAN

    # -- queries ------------------------------------------------------

    def is_empty(self) -> bool:
        return not (self.direct or self.via or self.may or self.escapes
                    or self.called or self.network or self.wallet)

    def all_privs(self) -> frozenset[Priv]:
        out: set[Priv] = set(self.direct) | set(self.may)
        for via, inner in self.via.items():
            out.add(via)
            out |= set(inner)
        return frozenset(out)

    def uses_priv(self, priv: Priv) -> bool:
        return priv in self.all_privs()

    def required_privset(self) -> PrivSet:
        """The strong requirement as a :class:`PrivSet` (modifiers carry
        the derived uses), ready for ``subset_of`` against a grant."""
        mapping: dict[Priv, Optional[frozenset]] = {p: None for p in self.direct}
        for via, inner in self.via.items():
            mapping[via] = frozenset(inner)
        return PrivSet(mapping)

    def first_span(self, priv: Priv) -> A.Span:
        if priv in self.direct:
            return self.direct[priv]
        for inner in self.via.values():
            if priv in inner:
                return inner[priv]
        return self.may.get(priv, A.NO_SPAN)

    def snapshot(self) -> tuple:
        return (
            frozenset(self.direct),
            tuple(sorted(((v.value, frozenset(m)) for v, m in self.via.items()),
                         key=lambda item: item[0])),
            frozenset(self.may),
            self.escapes, self.called, self.network, self.wallet,
        )


@dataclass(frozen=True)
class MintInfo:
    """One ambient ``open_file``/``open_dir`` (or stdout/stderr) mint."""

    origin: str
    var: str
    path: str
    kind: str  # "file" | "dir" | "stream"
    span: A.Span


@dataclass(frozen=True)
class ParamInfo:
    """One contract-guarded parameter of one export."""

    export: str
    name: str
    grant: Grant
    record: Optional[UseRecord]
    span: A.Span
    poly_var: Optional[str] = None


@dataclass(frozen=True)
class ForallInfo:
    """A ``forall X with {...}`` wrapper on one export's contract."""

    export: str
    var: str
    bound: tuple[str, ...]
    span: A.Span


@dataclass
class ModuleAnalysis:
    """The raw analysis result for one module; rules read this."""

    name: str
    lang: str
    module: Optional[A.Module] = None
    params: list[ParamInfo] = dc_field(default_factory=list)
    foralls: list[ForallInfo] = dc_field(default_factory=list)
    mints: dict[str, MintInfo] = dc_field(default_factory=dict)
    uses: dict[str, UseRecord] = dc_field(default_factory=dict)
    unresolved: list[tuple[str, A.Span]] = dc_field(default_factory=list)
    footprint: Footprint = dc_field(default_factory=Footprint)
    error: Optional[str] = None
    error_span: A.Span = A.NO_SPAN


# ---------------------------------------------------------------------------
# builtin operation tables
# ---------------------------------------------------------------------------

#: name -> (required privilege on arg0, derives?)
_CAP_OPS: dict[str, tuple[Priv, bool]] = {
    "path": (Priv.PATH, False),
    "has_ext": (Priv.PATH, False),
    "name": (Priv.PATH, False),
    "size": (Priv.STAT, False),
    "mtime": (Priv.STAT, False),
    "read": (Priv.READ, False),
    "write": (Priv.WRITE, False),
    "append": (Priv.APPEND, False),
    "contents": (Priv.CONTENTS, False),
    "read_symlink": (Priv.READ_SYMLINK, False),
    "lookup": (Priv.LOOKUP, True),
    "create_file": (Priv.CREATE_FILE, True),
    "create_dir": (Priv.CREATE_DIR, True),
    "writef": (Priv.WRITE, False),
    "appendf": (Priv.APPEND, False),
}

_PURE_BUILTINS = frozenset({
    "strcat", "to_string", "length", "contains", "split", "lines",
    "starts_with", "ends_with", "range",
    "is_file", "is_dir", "is_cap", "is_syserror", "is_bool", "is_string",
    "is_num", "is_list", "is_void",
})

_SOCKET_OPS = frozenset({
    "socket_connect", "socket_bind", "socket_listen", "socket_accept",
    "socket_send", "socket_recv", "socket_close",
})

_KNOWN_BUILTINS = (
    frozenset(_CAP_OPS) | _PURE_BUILTINS | _SOCKET_OPS
    | frozenset({
        "unlink", "create_pipe", "create_socket", "exec",
        "concat", "push", "nth",
        "create_wallet", "wallet_put", "wallet_get",
        "populate_native_wallet", "pkg_native",
        "resolve", "resolve_chain", "exists",
        "open_file", "open_dir",
    })
)

#: What ``require <builtin library>`` brings into scope, as far as the
#: analysis cares.  Contract names are tracked separately (they appear
#: in contract position, not expression position).
_BUILTIN_LIBS: dict[str, frozenset[str]] = {
    "shill/native": frozenset({
        "create_wallet", "wallet_put", "wallet_get",
        "populate_native_wallet", "pkg_native",
    }),
    "shill/filesys": frozenset({"resolve", "resolve_chain", "exists"}),
    "shill/io": frozenset({"writef", "appendf"}),
    "shill/contracts": frozenset(),
}

_CONTRACT_LIB_NAMES = frozenset({
    "is_file", "is_dir", "is_cap", "is_bool", "is_string", "is_num",
    "is_list", "is_syserror", "void", "any", "readonly", "writeable",
    "executable", "full_privs", "pipe_factory", "socket_factory",
    "native_wallet",
})

#: Conservative authority a capability escaping into a native sandbox
#: may exercise (weak: classification only).
_ESCAPE_MAY = (Priv.READ, Priv.WRITE, Priv.EXEC, Priv.LOOKUP, Priv.CONTENTS,
               Priv.CREATE_FILE, Priv.UNLINK_FILE)
#: ``populate_native_wallet`` only walks and packages the tree read-only.
_POPULATE_MAY = (Priv.LOOKUP, Priv.READ, Priv.EXEC, Priv.CONTENTS, Priv.STAT)


# ---------------------------------------------------------------------------
# the walker
# ---------------------------------------------------------------------------


class AnalysisContext:
    """Memoises per-module analyses so a registry of scripts is analysed
    once each, with cycle protection for mutually-requiring modules."""

    def __init__(self, registry: Mapping[str, str] | None = None) -> None:
        self.registry: dict[str, str] = dict(registry or {})
        self._done: dict[str, Optional[ModuleAnalysis]] = {}
        self._in_progress: set[str] = set()

    def analyze(self, name: str) -> Optional[ModuleAnalysis]:
        if name in self._done:
            return self._done[name]
        source = self.registry.get(name)
        if source is None or name in self._in_progress:
            return None
        self._in_progress.add(name)
        try:
            analysis = _analyze(name, source, self)
        finally:
            self._in_progress.discard(name)
        self._done[name] = analysis
        return analysis


def analyze_source(
    name: str,
    source: str,
    registry: Mapping[str, str] | None = None,
    context: AnalysisContext | None = None,
    default_lang: str | None = None,
) -> ModuleAnalysis:
    """Analyse one script (either dialect).  ``registry`` supplies the
    sources of modules it may ``require`` by file name; ``default_lang``
    is assumed when the source has no ``#lang`` line (defaults to the
    capability dialect, matching the module loader)."""
    ctx = context or AnalysisContext(registry)
    return _analyze(name, source, ctx, default_lang)


def _analyze(name: str, source: str, ctx: AnalysisContext,
             default_lang: str | None = None) -> ModuleAnalysis:
    try:
        if default_lang is None:
            lang, body = read_lang(source)
        else:
            lang, body = read_lang(source, default=default_lang)
        module = parse_source(body, lang, name)
    except Exception as err:  # syntax errors become a diagnostic, not a crash
        analysis = ModuleAnalysis(name=name, lang="?")
        analysis.footprint = Footprint(script=name, lang="?")
        analysis.error = str(err)
        analysis.error_span = A.Span(getattr(err, "line", 0) or 0,
                                     getattr(err, "col", 0) or 0)
        return analysis
    walker = _Walker(name, module, ctx)
    return walker.run()


class _Walker:
    _MAX_ITERATIONS = 8

    def __init__(self, name: str, module: A.Module, ctx: AnalysisContext) -> None:
        self.name = name
        self.module = module
        self.ctx = ctx
        self.uses: dict[str, UseRecord] = {}
        self.mints: dict[str, MintInfo] = {}
        self.funcs: dict[str, A.Fun] = {}
        self.fun_formals: dict[str, tuple[str, ...]] = {}
        self.returns: dict[str, object] = {}
        self.unresolved: list[tuple[str, A.Span]] = []
        self.known_contract_names: set[str] = set()
        self.imports: dict[str, AV] = {}
        self.wallet_minted = False
        self._anon = 0

    # -- plumbing -----------------------------------------------------

    def _rec(self, origin: str) -> UseRecord:
        rec = self.uses.get(origin)
        if rec is None:
            rec = self.uses[origin] = UseRecord()
        return rec

    def _record(self, av: AV, priv: Priv, span: A.Span, weak: bool = False) -> None:
        if isinstance(av, ListAV):
            # A use recorded against a list lands on its members (a
            # callee that reads "the elements" reads each of these).
            for item in av.items:
                self._record(item, priv, span, weak)
            return
        if not isinstance(av, CapAV):
            return
        rec = self._rec(av.origin)
        if weak:
            rec.may.setdefault(priv, span)
        elif av.via is None:
            rec.direct.setdefault(priv, span)
        else:
            rec.via.setdefault(av.via, {}).setdefault(priv, span)

    def _derived(self, av: AV, via: Priv, path_suffix: str | None = None) -> AV:
        if not isinstance(av, CapAV):
            return UNKNOWN
        path = av.path
        if path is not None and path_suffix:
            path = path.rstrip("/") + "/" + path_suffix
        return CapAV(av.origin, via=av.via or via, path=path)

    def _escape(self, av: AV, span: A.Span, may: tuple[Priv, ...] = _ESCAPE_MAY) -> None:
        if isinstance(av, ListAV):
            for item in av.items:
                self._escape(item, span, may)
            return
        if isinstance(av, CapAV):
            rec = self._rec(av.origin)
            if not rec.escapes:
                rec.escapes = True
                rec.escape_span = span
            for priv in may:
                rec.may.setdefault(priv, span)
        elif isinstance(av, WalletAV):
            self._mark_wallet(av, span)
        elif isinstance(av, FactoryAV):
            self._mark_network(av, span)

    def _mark_called(self, av: AV, span: A.Span) -> None:
        if isinstance(av, CapAV):
            rec = self._rec(av.origin)
            if not rec.called:
                rec.called = True
                rec.call_span = span

    def _mark_network(self, av: AV, span: A.Span) -> None:
        if isinstance(av, FactoryAV) and av.kind != "socket":
            return
        origin = getattr(av, "origin", None)
        if origin is not None:
            rec = self._rec(origin)
            if not rec.network:
                rec.network = True
                rec.network_span = span

    def _mark_wallet(self, av: AV, span: A.Span) -> None:
        origin = getattr(av, "origin", None)
        if isinstance(av, (WalletAV, CapAV)) and origin is not None:
            rec = self._rec(origin)
            if not rec.wallet:
                rec.wallet = True
                rec.wallet_span = span

    # -- the fixpoint -------------------------------------------------

    def run(self) -> ModuleAnalysis:
        self._process_requires()
        for stmt in self.module.body:
            if isinstance(stmt, A.Def) and isinstance(stmt.expr, A.Fun):
                self.funcs[stmt.name] = stmt.expr
                self.fun_formals[stmt.name] = stmt.expr.params
        for _ in range(self._MAX_ITERATIONS):
            before = self._snapshot()
            self._anon = 0
            env = self._module_env()
            for stmt in self.module.body:
                self._walk_stmt(stmt, env)
            for fname, fun in self.funcs.items():
                fenv = dict(env)
                for formal in fun.params:
                    fenv[formal] = CapAV(f"{fname}.{formal}")
                self.returns[fname] = self._classify_return(
                    self._walk_block(fun.body, fenv), fname, fun.params)
            if self._snapshot() == before:
                break
        return self._finish()

    def _snapshot(self) -> tuple:
        return tuple(sorted((origin, rec.snapshot())
                            for origin, rec in self.uses.items()))

    def _module_env(self) -> dict[str, AV]:
        env: dict[str, AV] = dict(self.imports)
        for fname in self.funcs:
            env[fname] = FunAV(fname)
        if self.module.is_ambient:
            env.setdefault("stdout", CapAV("<stdout>", path="<stdout>"))
            env.setdefault("stderr", CapAV("<stderr>", path="<stderr>"))
            env.setdefault("pipe_factory", FactoryAV("pipe", "pipe_factory"))
            env.setdefault("socket_factory", FactoryAV("socket", "socket_factory"))
        return env

    def _process_requires(self) -> None:
        for req in self.module.requires:
            if not req.is_path:
                exports = _BUILTIN_LIBS.get(req.target)
                if exports is None:
                    self.unresolved.append((req.target, req.span))
                    continue
                for export in exports:
                    self.imports.setdefault(export, BuiltinAV(export))
                if req.target == "shill/contracts":
                    self.known_contract_names |= _CONTRACT_LIB_NAMES
                continue
            callee = self.ctx.analyze(req.target)
            if callee is None:
                self.unresolved.append((req.target, req.span))
                continue
            for pinfo in callee.params:
                self.imports.setdefault(pinfo.export,
                                        ImportAV(req.target, pinfo.export))
            if callee.module is not None:
                for provide in callee.module.provides:
                    self.imports.setdefault(provide.name,
                                            ImportAV(req.target, provide.name))

    def _classify_return(self, av: AV, fname: str, formals: tuple[str, ...]) -> object:
        if isinstance(av, CapAV):
            for index, formal in enumerate(formals):
                if av.origin == f"{fname}.{formal}":
                    return ("arg", index, av.via)
        if isinstance(av, (ConstAV, WalletAV, FactoryAV, NativeAV)):
            return av
        return UNKNOWN

    # -- statements ---------------------------------------------------

    def _walk_stmt(self, stmt: A.Stmt, env: dict[str, AV]) -> AV:
        if isinstance(stmt, A.Def):
            if isinstance(stmt.expr, A.Fun) and stmt.name in self.funcs:
                # top-level named function: summarised in the named pass
                value: AV = FunAV(stmt.name)
            else:
                value = self._eval(stmt.expr, env, var=stmt.name)
            env[stmt.name] = value
            return value
        if isinstance(stmt, A.ExprStmt):
            return self._eval(stmt.expr, env)
        if isinstance(stmt, A.If):
            self._eval(stmt.cond, env)
            then_env = dict(env)
            then_val = self._walk_stmt(stmt.then, then_env)
            else_env = dict(env)
            else_val = (self._walk_stmt(stmt.otherwise, else_env)
                        if stmt.otherwise is not None else UNKNOWN)
            self._merge_envs(env, then_env, else_env)
            return then_val if then_val == else_val else UNKNOWN
        if isinstance(stmt, A.For):
            iterable = self._eval(stmt.iterable, env)
            if isinstance(iterable, ListAV) and iterable.items:
                # Walk the body once per distinct element (bounded), so
                # uses land on every member, not just a representative.
                candidates: list[AV] = list(dict.fromkeys(iterable.items))[:8]
            elif isinstance(iterable, CapAV):
                # An opaque list value (e.g. an is_list formal): let
                # element uses flow back to the list's own origin, where
                # call sites redistribute them onto the real members.
                candidates = [iterable]
            else:
                candidates = [UNKNOWN]
            body_env = dict(env)
            for item in candidates:
                body_env[stmt.var] = item
                self._walk_block(stmt.body, body_env)
            self._merge_envs(env, body_env, env)
            return UNKNOWN
        if isinstance(stmt, A.Block):
            return self._walk_block(stmt, dict(env))
        return UNKNOWN

    def _walk_block(self, block: A.Block, env: dict[str, AV]) -> AV:
        value: AV = UNKNOWN
        for stmt in block.stmts:
            value = self._walk_stmt(stmt, env)
        return value

    def _merge_envs(self, env: dict[str, AV], a: dict[str, AV], b: dict[str, AV]) -> None:
        for key in set(a) | set(b):
            va, vb = a.get(key), b.get(key)
            env[key] = va if (va == vb and va is not None) else UNKNOWN

    # -- expressions --------------------------------------------------

    def _eval(self, expr: A.Expr, env: dict[str, AV], var: str = "") -> AV:
        if isinstance(expr, A.Lit):
            return ConstAV(expr.value)
        if isinstance(expr, A.Var):
            value = env.get(expr.name)
            if value is not None:
                return value
            if expr.name in _KNOWN_BUILTINS:
                return BuiltinAV(expr.name)
            return UNKNOWN
        if isinstance(expr, A.ListLit):
            return ListAV(tuple(self._eval(item, env) for item in expr.items))
        if isinstance(expr, A.UnOp):
            self._eval(expr.operand, env)
            return UNKNOWN
        if isinstance(expr, A.BinOp):
            left = self._eval(expr.left, env)
            right = self._eval(expr.right, env)
            if (expr.op == "+" and isinstance(left, ConstAV)
                    and isinstance(right, ConstAV)
                    and isinstance(left.value, str) and isinstance(right.value, str)):
                return ConstAV(left.value + right.value)
            return UNKNOWN
        if isinstance(expr, A.Fun):
            return self._eval_fun(expr, env)
        if isinstance(expr, A.If):
            return self._walk_stmt(expr, env)
        if isinstance(expr, A.Block):
            return self._walk_block(expr, dict(env))
        if isinstance(expr, A.Call):
            return self._eval_call(expr, env, var=var)
        return UNKNOWN

    def _eval_fun(self, fun: A.Fun, env: dict[str, AV]) -> AV:
        self._anon += 1
        name = fun.name or f"<fun{self._anon}>"
        qualified = f"{name}@anon" if not fun.name else name
        self.fun_formals[qualified] = fun.params
        fenv = dict(env)
        for formal in fun.params:
            fenv[formal] = CapAV(f"{qualified}.{formal}")
        self.returns[qualified] = self._classify_return(
            self._walk_block(fun.body, fenv), qualified, fun.params)
        return FunAV(qualified)

    def _eval_call(self, call: A.Call, env: dict[str, AV], var: str = "") -> AV:
        fn = self._eval(call.fn, env)
        args = [self._eval(arg, env) for arg in call.args]
        kwargs = {key: self._eval(value, env) for key, value in call.kwargs}
        span = call.span

        if isinstance(fn, BuiltinAV):
            return self._call_builtin(fn.name, args, kwargs, span, var)
        if isinstance(fn, FunAV):
            return self._apply_local(fn.name, args, span)
        if isinstance(fn, ImportAV):
            return self._apply_import(fn, args, span)
        if isinstance(fn, NativeAV):
            self._native_call(args, kwargs, span)
            return UNKNOWN
        if isinstance(fn, CapAV):
            self._mark_called(fn, span)
            for arg in args:
                self._escape(arg, span)
            return UNKNOWN
        for arg in list(args) + list(kwargs.values()):
            self._escape(arg, span)
        return UNKNOWN

    # -- call forms ---------------------------------------------------

    def _call_builtin(self, name: str, args: list[AV], kwargs: dict[str, AV],
                      span: A.Span, var: str) -> AV:
        arg0 = args[0] if args else UNKNOWN

        if name in _CAP_OPS:
            priv, derives = _CAP_OPS[name]
            self._record(arg0, priv, span)
            if derives:
                suffix = None
                if len(args) > 1 and isinstance(args[1], ConstAV):
                    suffix = str(args[1].value)
                return self._derived(arg0, priv, suffix)
            return UNKNOWN
        if name == "unlink":
            self._record(arg0, Priv.LOOKUP, span)
            self._record(arg0, Priv.UNLINK_FILE, span, weak=True)
            self._record(arg0, Priv.UNLINK_DIR, span, weak=True)
            return UNKNOWN
        if name in ("resolve", "resolve_chain", "exists"):
            self._record(arg0, Priv.LOOKUP, span)
            if name == "resolve":
                return self._derived(arg0, Priv.LOOKUP)
            if name == "resolve_chain":
                return ListAV((self._derived(arg0, Priv.LOOKUP),))
            return UNKNOWN
        if name == "create_pipe":
            return UNKNOWN
        if name == "create_socket":
            self._mark_network(arg0, span)
            return UNKNOWN
        if name in _SOCKET_OPS:
            return UNKNOWN
        if name == "exec":
            self._record(arg0, Priv.EXEC, span)
            # The binary itself crosses into the sandbox, which reads it
            # to run it — its remaining authority is exercised out of
            # the analyzer's sight.
            self._escape(arg0, span, _POPULATE_MAY)
            for arg in args[1:]:
                self._escape(arg, span)
            for key, value in kwargs.items():
                if key == "cwd":
                    self._record(value, Priv.CHDIR, span, weak=True)
                self._escape(value, span)
            return UNKNOWN
        if name == "create_wallet":
            self.wallet_minted = True
            return WalletAV()
        if name in ("wallet_put", "wallet_get"):
            self._mark_wallet(arg0, span)
            return UNKNOWN
        if name == "populate_native_wallet":
            self._mark_wallet(arg0, span)
            if len(args) > 1:
                root = args[1]
                if isinstance(root, CapAV):
                    rec = self._rec(root.origin)
                    if not rec.escapes:
                        rec.escapes = True
                        rec.escape_span = span
                    for priv in _POPULATE_MAY:
                        rec.may.setdefault(priv, span)
            return UNKNOWN
        if name == "pkg_native":
            if len(args) > 1:
                self._mark_wallet(args[1], span)
            return NativeAV()
        if name == "concat" and len(args) == 2:
            a, b = args
            if isinstance(a, ListAV) and isinstance(b, ListAV):
                return ListAV(a.items + b.items)
            items = (a.items if isinstance(a, ListAV) else ()) + (
                b.items if isinstance(b, ListAV) else ())
            return ListAV(items) if items else UNKNOWN
        if name == "push" and len(args) == 2:
            lst, value = args
            if isinstance(lst, ListAV):
                return ListAV(lst.items + (value,))
            return ListAV((value,))
        if name == "nth" and len(args) == 2:
            lst, index = args
            if (isinstance(lst, ListAV) and isinstance(index, ConstAV)
                    and isinstance(index.value, (int, float))):
                i = int(index.value)
                if 0 <= i < len(lst.items):
                    return lst.items[i]
            return UNKNOWN
        if name in ("open_file", "open_dir") and self.module.is_ambient:
            return self._mint(name, args, span, var)
        # pure helpers and predicates: no authority involved
        return UNKNOWN

    def _mint(self, name: str, args: list[AV], span: A.Span, var: str) -> AV:
        kind = "dir" if name == "open_dir" else "file"
        arg0 = args[0] if args else UNKNOWN
        path = (str(arg0.value) if isinstance(arg0, ConstAV) else "<dynamic>")
        origin = f"mint:{path}"
        if origin not in self.mints:
            self.mints[origin] = MintInfo(origin=origin, var=var or path,
                                          path=path, kind=kind, span=span)
        self._rec(origin)
        return CapAV(origin, path=path)

    def _apply_local(self, fname: str, args: list[AV], span: A.Span) -> AV:
        formals = self.fun_formals.get(fname, ())
        for formal, arg in zip(formals, args):
            rec = self.uses.get(f"{fname}.{formal}")
            if rec is not None:
                self._apply_record(rec, arg, span)
        template = self.returns.get(fname, UNKNOWN)
        if isinstance(template, tuple) and template and template[0] == "arg":
            _, index, via = template
            if index < len(args):
                base = args[index]
                if via is None:
                    return base
                return self._derived(base, via)
            return UNKNOWN
        if isinstance(template, AV):
            return template
        return UNKNOWN

    def _apply_record(self, rec: UseRecord, av: AV, span: A.Span) -> None:
        for priv, sp in rec.direct.items():
            self._record(av, priv, sp or span)
        for via, inner in rec.via.items():
            derived = self._derived(av, via)
            for priv, sp in inner.items():
                self._record(derived, priv, sp or span)
        for priv, sp in rec.may.items():
            self._record(av, priv, sp or span, weak=True)
        if rec.escapes:
            self._escape(av, rec.escape_span or span)
        if rec.called:
            self._mark_called(av, rec.call_span or span)
        if rec.network:
            self._mark_network(av, rec.network_span or span)
        if rec.wallet:
            self._mark_wallet(av, rec.wallet_span or span)

    def _apply_import(self, fn: ImportAV, args: list[AV], span: A.Span) -> AV:
        callee = self.ctx.analyze(fn.module)
        if callee is None:
            for arg in args:
                self._escape(arg, span)
            return UNKNOWN
        pinfos = [p for p in callee.params if p.export == fn.export]
        if not pinfos:
            for arg in args:
                self._escape(arg, span)
            return UNKNOWN
        for pinfo, arg in zip(pinfos, args):
            self._apply_grant(pinfo.grant, arg, span)
            # Predicate contracts (is_list, any, ...) pass the value
            # through unattenuated, so the callee's own behaviour — not
            # the contract — bounds what happens to the argument.
            if (pinfo.record is not None and not pinfo.grant.opaque
                    and all(b.kind == "any" for b in pinfo.grant.branches)):
                self._apply_record(pinfo.record, arg, span)
        return UNKNOWN

    def _apply_grant(self, grant: Grant, av: AV, span: A.Span) -> None:
        if grant.opaque:
            self._escape(av, span)
            return
        cap_branches = [b for b in grant.branches
                        if b.kind in CAP_KINDS and b.privs is not None]
        if len(cap_branches) == 1:
            for priv in cap_branches[0].privs.privs():
                self._record(av, priv, span)
        elif cap_branches:
            for priv in grant.union_privs():
                self._record(av, priv, span, weak=True)
        if grant.grants_network:
            self._mark_network(av, span)
        if grant.grants_wallet:
            self._mark_wallet(av, span)
        if any(b.kind == "fun" for b in grant.branches):
            self._mark_called(av, span)

    def _native_call(self, args: list[AV], kwargs: dict[str, AV], span: A.Span) -> None:
        for arg in args:
            self._escape(arg, span)
        for key, value in kwargs.items():
            if key == "cwd":
                self._record(value, Priv.CHDIR, span, weak=True)
            self._escape(value, span)

    # -- results ------------------------------------------------------

    def _finish(self) -> ModuleAnalysis:
        analysis = ModuleAnalysis(name=self.name, lang=self.module.lang,
                                  module=self.module)
        analysis.uses = self.uses
        analysis.mints = self.mints
        analysis.unresolved = self.unresolved
        known = frozenset(self.known_contract_names) | frozenset(self.imports)
        for provide in self.module.provides:
            ctc = provide.contract
            poly: dict[str, PrivSet] = {}
            poly_var = None
            if isinstance(ctc, A.CtcForall):
                bound = tuple(ctc.bound)
                poly[ctc.var] = PrivSet.of(
                    *[_priv(b) for b in bound if _priv(b) is not None])
                poly_var = ctc.var
                analysis.foralls.append(ForallInfo(
                    export=provide.name, var=ctc.var, bound=bound, span=ctc.span))
                ctc = ctc.body
            if not isinstance(ctc, A.CtcFun):
                continue
            formals = self.fun_formals.get(provide.name, ())
            for index, (pname, pctc) in enumerate(ctc.params):
                record = None
                if index < len(formals):
                    record = self.uses.get(f"{provide.name}.{formals[index]}")
                is_poly = (isinstance(pctc, A.CtcName) and pctc.name == poly_var)
                analysis.params.append(ParamInfo(
                    export=provide.name, name=pname,
                    grant=grant_of(pctc, poly, known),
                    record=record, span=pctc.span,
                    poly_var=poly_var if is_poly else None))
        analysis.footprint = self._build_footprint(analysis)
        return analysis

    def _build_footprint(self, analysis: ModuleAnalysis) -> Footprint:
        all_privs: set[Priv] = set()
        for rec in self.uses.values():
            all_privs |= rec.all_privs()
        reads: set[str] = set()
        writes: set[str] = set()
        executes: set[str] = set()
        for origin, mint in self.mints.items():
            rec = self.uses.get(origin)
            if rec is None or rec.is_empty():
                continue
            r, w, x = classify_privs(rec.all_privs())
            if r:
                reads.add(mint.path)
            if w:
                writes.add(mint.path)
            if x:
                executes.add(mint.path)
        for origin in ("<stdout>", "<stderr>"):
            rec = self.uses.get(origin)
            if rec is not None and not rec.is_empty():
                writes.add(origin)
        network = any(rec.network for rec in self.uses.values())
        wallet = self.wallet_minted or any(rec.wallet for rec in self.uses.values())
        exports = []
        by_export: dict[str, list[ParamFootprint]] = {}
        for pinfo in analysis.params:
            rec = pinfo.record
            if rec is None:
                pf = ParamFootprint(name=pinfo.name)
            else:
                pf = ParamFootprint(
                    name=pinfo.name,
                    privileges=tuple(sorted(p.value for p in rec.direct)),
                    derived=tuple(sorted(
                        (via.value, tuple(sorted(p.value for p in inner)))
                        for via, inner in rec.via.items())),
                    escapes=rec.escapes,
                    called=rec.called,
                    network=rec.network,
                    wallet=rec.wallet,
                )
            by_export.setdefault(pinfo.export, []).append(pf)
        for export, params in by_export.items():
            exports.append(ExportFootprint(name=export, params=tuple(params)))
        return Footprint(
            script=self.name,
            lang=self.module.lang,
            privileges=tuple(sorted(p.value for p in all_privs)),
            reads=tuple(sorted(reads)),
            writes=tuple(sorted(writes)),
            executes=tuple(sorted(executes)),
            network=network,
            wallet=wallet,
            exports=tuple(exports),
            requires=tuple(req.target for req in self.module.requires),
        )


def _priv(name: str) -> Optional[Priv]:
    from repro.sandbox.privileges import priv_from_name

    try:
        return priv_from_name(name)
    except Exception:
        return None
