"""Lint rules over :class:`~repro.analysis.infer.ModuleAnalysis`.

Each rule is a :class:`LintRule` with a stable ``SHnnn`` code and a
default severity; a :class:`RuleSet` runs them with data-driven severity
overrides (``{"SH001": "off"}``), and :class:`FakeRuleSet` replaces the
engine entirely in tests.  Blame follows the contract system's
convention: the *positive* party is whoever provides the value (the
script body, for its own exports), the *negative* party is the consumer
(the caller holding the contract).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Protocol, Sequence, runtime_checkable

from repro.analysis.footprint import Diagnostic, SEVERITIES
from repro.analysis.grants import CAP_KINDS, Grant
from repro.analysis.infer import ModuleAnalysis, ParamInfo
from repro.lang import ast_ as A
from repro.sandbox.privileges import DERIVING_PRIVS, Priv, priv_from_name


@runtime_checkable
class LintRule(Protocol):
    """One pluggable lint check.

    Implementations carry a stable ``code`` (``SHnnn``), a one-line
    ``title``, a ``default_severity``, and a ``check`` that yields
    :class:`Diagnostic` objects for one module's analysis.  Emit with
    ``severity=default_severity``; the :class:`RuleSet` rewrites
    severities from its config afterwards.
    """

    code: str
    title: str
    default_severity: str

    def check(self, analysis: ModuleAnalysis) -> Iterable[Diagnostic]: ...


class _Rule:
    """Shared helpers for the built-in rules."""

    code = "SH000"
    title = ""
    default_severity = "warning"

    def _diag(self, analysis: ModuleAnalysis, message: str, span: A.Span,
              blame: str = "", param: str = "") -> Diagnostic:
        return Diagnostic(
            code=self.code, severity=self.default_severity, message=message,
            script=analysis.name, line=span.line, col=span.col,
            blame=blame, param=param)

    def check(self, analysis: ModuleAnalysis) -> Iterable[Diagnostic]:
        raise NotImplementedError


class OverPrivilegeRule(_Rule):
    """SH001: the contract grants an explicit privilege the body never
    uses — a least-privilege gap.  Suppressed for parameters that escape
    into a sandbox (their authority is exercised out of sight)."""

    code = "SH001"
    title = "contract grants a privilege the body never uses"
    default_severity = "warning"

    def check(self, analysis: ModuleAnalysis) -> Iterable[Diagnostic]:
        for pinfo in analysis.params:
            rec = pinfo.record
            if rec is None or rec.escapes or pinfo.grant.opaque:
                continue
            used = rec.all_privs()
            for item in pinfo.grant.explicit:
                try:
                    priv = priv_from_name(item.priv_name)
                except Exception:
                    continue
                if priv in used:
                    continue
                yield self._diag(
                    analysis,
                    f"contract for parameter {pinfo.name!r} of "
                    f"{pinfo.export!r} grants +{item.priv_name}, but the "
                    f"body never uses it",
                    item.span,
                    blame=f"caller of {pinfo.export!r} (over-granted)",
                    param=pinfo.name)
        for forall in analysis.foralls:
            used: set[Priv] = set()
            for pinfo in analysis.params:
                if pinfo.export == forall.export and pinfo.poly_var and pinfo.record:
                    used |= pinfo.record.all_privs()
            for bound in forall.bound:
                try:
                    priv = priv_from_name(bound)
                except Exception:
                    continue
                if priv not in used:
                    yield self._diag(
                        analysis,
                        f"forall bound of {forall.export!r} includes "
                        f"+{priv.value}, but no {forall.var}-typed parameter "
                        f"uses it",
                        forall.span,
                        blame=f"caller of {forall.export!r} (over-granted)")


class UnderPrivilegeRule(_Rule):
    """SH002: the body exercises authority no contract branch supplies —
    a guaranteed runtime violation (the attenuating proxy will deny it,
    blaming the consumer; statically we blame the script, which promised
    to live within its contract)."""

    code = "SH002"
    title = "body uses a privilege the contract never grants"
    default_severity = "error"

    def check(self, analysis: ModuleAnalysis) -> Iterable[Diagnostic]:
        for pinfo in analysis.params:
            rec = pinfo.record
            if rec is None or pinfo.grant.opaque:
                continue
            required = rec.required_privset()
            if len(required) and not pinfo.grant.admits(required):
                yield self._under_diag(analysis, pinfo, required)

    def _under_diag(self, analysis: ModuleAnalysis, pinfo: ParamInfo,
                    required) -> Diagnostic:
        rec = pinfo.record
        assert rec is not None
        grant = pinfo.grant
        cap_branches = [b for b in grant.branches
                        if b.kind in CAP_KINDS and b.privs is not None]
        need = required.privs()
        best = max(cap_branches, key=lambda b: len(need & b.privs.privs()),
                   default=None)
        if best is None:
            missing = sorted(need, key=lambda p: p.value)
            detail = "its contract grants no capability branch at all"
        else:
            missing = sorted(need - best.privs.privs(), key=lambda p: p.value)
            detail = "no contract branch grants " + ", ".join(
                f"+{p.value}" for p in missing) if missing else ""
        if not missing:
            # privilege names all present: a derived use exceeds a modifier
            offender, span = self._modifier_offender(rec, best)
            message = (
                f"body of {pinfo.export!r} uses +{offender} on a capability "
                f"derived from parameter {pinfo.name!r}, beyond the "
                f"contract's 'with' modifier")
            return self._diag(analysis, message, span,
                              blame=f"script {analysis.name!r}",
                              param=pinfo.name)
        span = rec.first_span(missing[0])
        message = (
            f"body of {pinfo.export!r} uses "
            + ", ".join(f"+{p.value}" for p in missing)
            + f" on parameter {pinfo.name!r}, but {detail}")
        return self._diag(analysis, message, span,
                          blame=f"script {analysis.name!r}", param=pinfo.name)

    @staticmethod
    def _modifier_offender(rec, best):
        for via, inner in rec.via.items():
            if via not in DERIVING_PRIVS or via not in best.privs.privs():
                continue
            allowed = best.privs.effective_modifier(via)
            for priv, span in inner.items():
                if priv not in allowed:
                    return priv.value, span
        for via, inner in rec.via.items():
            for priv, span in inner.items():
                return priv.value, span
        first = next(iter(rec.direct.items()), (Priv.READ, A.NO_SPAN))
        return first[0].value, first[1]


class ShadowedClauseRule(_Rule):
    """SH003: a later ``\\/`` clause accepts only values an earlier
    clause already accepts (it demands at least as much), so it can
    never be selected — dead contract text."""

    code = "SH003"
    title = "contract disjunct shadowed by an earlier clause"
    default_severity = "warning"

    def check(self, analysis: ModuleAnalysis) -> Iterable[Diagnostic]:
        for pinfo in analysis.params:
            parts = pinfo.grant.or_parts
            for j in range(1, len(parts)):
                grant_j, span_j = parts[j]
                for i in range(j):
                    grant_i, _ = parts[i]
                    if self._covers(grant_i, grant_j):
                        yield self._diag(
                            analysis,
                            f"clause {j + 1} of the contract for "
                            f"{pinfo.name!r} is shadowed by clause {i + 1}: "
                            f"every capability it accepts already matches "
                            f"the earlier clause",
                            span_j,
                            blame=f"contract of {pinfo.export!r}",
                            param=pinfo.name)
                        break

    @staticmethod
    def _covers(earlier: Grant, later: Grant) -> bool:
        lat = [b for b in later.branches if b.kind in CAP_KINDS]
        ear = [b for b in earlier.branches if b.kind in CAP_KINDS]
        if not lat or not ear:
            return False
        for bj in lat:
            if bj.privs is None:
                return False
            if not any(
                bi.privs is not None
                and bi.kind in (bj.kind, "cap")
                and bi.privs.privs() <= bj.privs.privs()
                for bi in ear
            ):
                return False
        return True


class UnknownContractRule(_Rule):
    """SH004: a contract references a name neither the library nor any
    require/definition supplies — elaboration will fail at runtime."""

    code = "SH004"
    title = "unknown contract name"
    default_severity = "error"

    def check(self, analysis: ModuleAnalysis) -> Iterable[Diagnostic]:
        for pinfo in analysis.params:
            for name, span in pinfo.grant.unknown:
                yield self._diag(
                    analysis,
                    f"contract for parameter {pinfo.name!r} of "
                    f"{pinfo.export!r} references unknown contract {name!r}",
                    span,
                    blame=f"contract of {pinfo.export!r}",
                    param=pinfo.name)


class UnusedMintRule(_Rule):
    """SH005: an ambient script opens a file or directory and then never
    uses the capability — ambient authority minted for nothing."""

    code = "SH005"
    title = "ambient capability minted but never used"
    default_severity = "warning"

    def check(self, analysis: ModuleAnalysis) -> Iterable[Diagnostic]:
        for origin, mint in analysis.mints.items():
            rec = analysis.uses.get(origin)
            if rec is None or rec.is_empty():
                yield self._diag(
                    analysis,
                    f"ambient script opens {mint.path!r} but never uses "
                    f"the capability",
                    mint.span,
                    blame=f"script {analysis.name!r}")


class NetworkGrantRule(_Rule):
    """SH006: the body reaches the network through a parameter whose
    contract never grants a socket factory."""

    code = "SH006"
    title = "network use without a socket_factory grant"
    default_severity = "error"

    def check(self, analysis: ModuleAnalysis) -> Iterable[Diagnostic]:
        for pinfo in analysis.params:
            rec = pinfo.record
            if rec is None or not rec.network:
                continue
            if not pinfo.grant.grants_network:
                yield self._diag(
                    analysis,
                    f"body of {pinfo.export!r} uses parameter "
                    f"{pinfo.name!r} as a socket factory, but its contract "
                    f"grants no socket_factory",
                    rec.network_span,
                    blame=f"script {analysis.name!r}",
                    param=pinfo.name)


class WalletGrantRule(_Rule):
    """SH007: a wallet operation on a parameter whose contract is not a
    wallet contract."""

    code = "SH007"
    title = "wallet operation on a non-wallet parameter"
    default_severity = "error"

    def check(self, analysis: ModuleAnalysis) -> Iterable[Diagnostic]:
        for pinfo in analysis.params:
            rec = pinfo.record
            if rec is None or not rec.wallet:
                continue
            if not pinfo.grant.grants_wallet:
                yield self._diag(
                    analysis,
                    f"body of {pinfo.export!r} performs wallet operations "
                    f"on parameter {pinfo.name!r}, but its contract is not "
                    f"a wallet contract",
                    rec.wallet_span,
                    blame=f"script {analysis.name!r}",
                    param=pinfo.name)


class UnresolvedRequireRule(_Rule):
    """SH008: a ``require`` target the analyzer could not resolve (not
    in the script registry, or an unknown builtin library) — calls into
    it are analysed conservatively."""

    code = "SH008"
    title = "unresolved require target"
    default_severity = "warning"

    def check(self, analysis: ModuleAnalysis) -> Iterable[Diagnostic]:
        for target, span in analysis.unresolved:
            yield self._diag(
                analysis,
                f"require target {target!r} could not be resolved; calls "
                f"into it are analysed conservatively",
                span,
                blame=f"script {analysis.name!r}")


class SyntaxErrorRule(_Rule):
    """SH009: the script does not parse at all."""

    code = "SH009"
    title = "syntax error"
    default_severity = "error"

    def check(self, analysis: ModuleAnalysis) -> Iterable[Diagnostic]:
        if analysis.error is not None:
            yield self._diag(analysis, analysis.error, analysis.error_span,
                             blame=f"script {analysis.name!r}")


class UncacheableFootprintRule(_Rule):
    """SH010: the script's footprint carries a flag that makes its
    results **uncacheable** — the dependency analyzer
    (:func:`repro.analysis.may_depend`) can never prove a cached result
    reusable across a world mutation, so every repeat run re-executes.
    Each diagnostic names the flag (mirroring the analyzer's
    ``uncacheable:<flag>`` blame strings).  Off by default: most shipped
    case studies exercise network/wallet/escape authority deliberately;
    enable it (``severities={"SH010": "warning"}``) for corpora that
    are expected to stay cache-friendly."""

    code = "SH010"
    title = "footprint is uncacheable (results never provably reusable)"
    default_severity = "off"

    def check(self, analysis: ModuleAnalysis) -> Iterable[Diagnostic]:
        fp = analysis.footprint
        if fp is None:
            return
        blame = f"script {analysis.name!r}"
        if fp.network:
            yield self._diag(analysis, "uncacheable footprint: ambient "
                             "network use", A.NO_SPAN, blame=blame)
        if fp.wallet:
            yield self._diag(analysis, "uncacheable footprint: wallet "
                             "authority", A.NO_SPAN, blame=blame)
        if any(p == "<dynamic>" for p in (*fp.reads, *fp.writes, *fp.executes)):
            yield self._diag(analysis, "uncacheable footprint: a path "
                             "prefix is dynamic (not statically bounded)",
                             A.NO_SPAN, blame=blame)
        for export in fp.exports:
            for param in export.params:
                for flag, on in (("network", param.network),
                                 ("wallet", param.wallet),
                                 ("escape", param.escapes)):
                    if on:
                        yield self._diag(
                            analysis,
                            f"uncacheable footprint: parameter "
                            f"{param.name!r} of {export.name!r} carries "
                            f"{flag} authority",
                            A.NO_SPAN,
                            blame=f"contract of {export.name!r}",
                            param=param.name)


class StaleFootprintRule(_Rule):
    """SH011: the static footprint claims a path prefix no **recorded**
    run ever touched — the contract is wider than observed behavior
    (stale authority that also widens cache invalidation).  The rule is
    data-driven: construct it with ``recordings`` mapping script names
    to their runs' recorded touched sets
    (:attr:`RunResult.touched <repro.api.RunResult.touched>`); the
    default instance carries none and is inert."""

    code = "SH011"
    title = "footprint wider than recorded behavior (stale contract)"
    default_severity = "off"

    _KINDS = (("read", "reads"), ("write", "writes"), ("execute", "executes"))

    def __init__(self, recordings: "Mapping[str, Iterable[tuple[str, str]]] | None" = None) -> None:
        self.recordings = dict(recordings or {})

    def check(self, analysis: ModuleAnalysis) -> Iterable[Diagnostic]:
        from repro.analysis.deps import prefixes_intersect

        recorded = self.recordings.get(analysis.name)
        if recorded is None or analysis.footprint is None:
            return
        touched = list(recorded)
        for kind, attr in self._KINDS:
            for prefix in getattr(analysis.footprint, attr):
                # "~"-prefixes need a home to compare against absolute
                # recorded paths; sentinels are never recorded.
                if prefix.startswith(("~", "<")):
                    continue
                if not any(k == kind and prefixes_intersect(prefix, path)
                           for k, path in touched):
                    yield self._diag(
                        analysis,
                        f"static footprint claims {kind} authority over "
                        f"{prefix!r}, but no recorded run touched it — "
                        f"stale contract",
                        A.NO_SPAN,
                        blame=f"script {analysis.name!r}")


#: The shipped rules, in code order.
DEFAULT_RULES: tuple[LintRule, ...] = (
    OverPrivilegeRule(),
    UnderPrivilegeRule(),
    ShadowedClauseRule(),
    UnknownContractRule(),
    UnusedMintRule(),
    NetworkGrantRule(),
    WalletGrantRule(),
    UnresolvedRequireRule(),
    SyntaxErrorRule(),
    UncacheableFootprintRule(),
    StaleFootprintRule(),
)

#: code -> (title, default severity); the docs and CLI render this.
RULE_CATALOG: dict[str, tuple[str, str]] = {
    rule.code: (rule.title, rule.default_severity) for rule in DEFAULT_RULES
}


class RuleSet:
    """Runs a collection of rules with data-driven severity config.

    ``severities`` maps rule codes to ``"error"``/``"warning"``/``"off"``;
    unlisted codes keep their default.
    """

    def __init__(self, rules: Sequence[LintRule] = DEFAULT_RULES,
                 severities: Mapping[str, str] | None = None) -> None:
        self.rules = tuple(rules)
        self.severities = dict(severities or {})
        for code, severity in self.severities.items():
            if severity not in SEVERITIES:
                raise ValueError(
                    f"unknown severity {severity!r} for rule {code} "
                    f"(expected one of {SEVERITIES})")

    def run(self, analysis: ModuleAnalysis) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for rule in self.rules:
            severity = self.severities.get(rule.code, rule.default_severity)
            if severity == "off":
                continue
            for diag in rule.check(analysis):
                if diag.severity != severity:
                    diag = Diagnostic(
                        code=diag.code, severity=severity,
                        message=diag.message, script=diag.script,
                        line=diag.line, col=diag.col, blame=diag.blame,
                        param=diag.param)
                out.append(diag)
        out.sort(key=lambda d: (d.script, d.line, d.col, d.code, d.message))
        return out


class FakeRuleSet(RuleSet):
    """A canned rule engine for tests: records every analysis it sees
    and returns a fixed list of diagnostics, so gating and CLI behaviour
    can be exercised without depending on real rule output."""

    def __init__(self, diagnostics: Sequence[Diagnostic] = ()) -> None:
        super().__init__(rules=())
        self.diagnostics = list(diagnostics)
        self.seen: list[ModuleAnalysis] = []

    def run(self, analysis: ModuleAnalysis) -> list[Diagnostic]:
        self.seen.append(analysis)
        return list(self.diagnostics)
