"""The lint driver: analyse scripts, run the rules, render reports.

``lint_source`` handles one script; ``lint_scripts`` takes a registry
(name -> source) and lints every member, sharing one analysis context so
cross-module requires resolve.  Reports render human-readable (one line
per diagnostic, compiler style) or as JSON with a stable schema — see
``docs/linting.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.footprint import Diagnostic, Footprint
from repro.analysis.infer import AnalysisContext, ModuleAnalysis, analyze_source
from repro.analysis.rules import RuleSet

#: Bumped when the JSON report schema changes shape.
REPORT_SCHEMA_VERSION = 1

_DEFAULT_RULESET = RuleSet()


@dataclass(frozen=True)
class LintReport:
    """The lint result for one script: diagnostics plus the inferred
    footprint (present even when the script is clean)."""

    script: str
    lang: str
    diagnostics: tuple[Diagnostic, ...] = ()
    footprint: Footprint = Footprint()

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "error")

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "warning")

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def to_json(self) -> dict:
        return {
            "script": self.script,
            "lang": self.lang,
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "footprint": self.footprint.to_json(),
        }


def lint_source(
    name: str,
    source: str,
    registry: Mapping[str, str] | None = None,
    rules: RuleSet | None = None,
    context: AnalysisContext | None = None,
    default_lang: str | None = None,
) -> LintReport:
    """Analyse and lint one script (either dialect)."""
    ruleset = rules if rules is not None else _DEFAULT_RULESET
    analysis = analyze_source(name, source, registry=registry,
                              context=context, default_lang=default_lang)
    return report_for(analysis, ruleset)


def report_for(analysis: ModuleAnalysis, rules: RuleSet | None = None) -> LintReport:
    ruleset = rules if rules is not None else _DEFAULT_RULESET
    return LintReport(
        script=analysis.name,
        lang=analysis.lang,
        diagnostics=tuple(ruleset.run(analysis)),
        footprint=analysis.footprint,
    )


def lint_scripts(
    scripts: Mapping[str, str],
    rules: RuleSet | None = None,
    registry: Mapping[str, str] | None = None,
) -> dict[str, LintReport]:
    """Lint every script in ``scripts``; requires resolve against
    ``registry`` (defaulting to ``scripts`` itself)."""
    ctx = AnalysisContext(dict(registry if registry is not None else scripts))
    return {
        name: lint_source(name, source, rules=rules, context=ctx)
        for name, source in sorted(scripts.items())
    }


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def render_human(reports: Mapping[str, LintReport]) -> str:
    """Compiler-style report: one line per diagnostic, then a summary."""
    lines: list[str] = []
    errors = warnings = 0
    for name in sorted(reports):
        report = reports[name]
        for diag in report.diagnostics:
            lines.append(diag.format())
            if diag.severity == "error":
                errors += 1
            elif diag.severity == "warning":
                warnings += 1
    checked = len(reports)
    lines.append(
        f"{checked} script{'s' if checked != 1 else ''} checked: "
        f"{errors} error{'s' if errors != 1 else ''}, "
        f"{warnings} warning{'s' if warnings != 1 else ''}")
    return "\n".join(lines)


def render_json(reports: Mapping[str, LintReport]) -> dict:
    """The JSON report (schema documented in docs/linting.md)."""
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "scripts": [reports[name].to_json() for name in sorted(reports)],
        "summary": {
            "scripts": len(reports),
            "errors": sum(len(r.errors) for r in reports.values()),
            "warnings": sum(len(r.warnings) for r in reports.values()),
            "rule_counts": rule_counts(reports),
        },
    }


def rule_counts(reports: Mapping[str, LintReport]) -> dict[str, int]:
    """Per-rule-code diagnostic counts — the baseline gate's currency."""
    counts: dict[str, int] = {}
    for report in reports.values():
        for diag in report.diagnostics:
            counts[diag.code] = counts.get(diag.code, 0) + 1
    return dict(sorted(counts.items()))
