"""Dependency analysis: static footprint × world-delta cache invalidation.

This module is the decision procedure behind the dependency-aware result
cache (build-system *early cutoff* applied to sandboxed runs): a cached
:class:`~repro.api.RunResult` survives a world mutation iff the run's
read footprint **cannot** intersect the mutation's write set.

Three pieces:

* :func:`world_delta_between` / :func:`world_delta_of` — the **world-delta
  analyzer**: statically computes the write set (path prefixes plus
  label/config/watermark mutations) separating a mutated world from its
  boot template.  It walks the two vnode trees in parallel, relying on
  the lazy-fork materialization record for an identity short-circuit
  (untouched subtrees are object-identical across a fork, so the walk is
  O(changed-paths), never O(tree)) — no replay, no op counters moved.
* :func:`may_depend` — the **cache-validity decision procedure**:
  ``may_depend(footprint, delta) -> Verdict`` returns :data:`VALID`,
  :data:`INVALID`, or :data:`UNKNOWN` with per-rule blame strings
  (which prefix intersected, or why the footprint is uncacheable —
  network/wallet/dynamic-path/escape authority force :data:`UNKNOWN`).
* :func:`soundness_escapes` — the **soundness gate** for recorded
  dynamic footprints: every path a run actually touched
  (:attr:`RunResult.touched <repro.api.RunResult.touched>`) must
  intersect the static footprint (``static ⊇ touched``).  A run whose
  touched set escapes its static footprint is served from cache only
  conservatively (never across a mutation), and the escape is surfaced
  as an audit event.

Intersection is deliberately *either-direction* prefix containment
(:func:`prefixes_intersect`): namespace mutators record the parent
directory, traversal symlink reads record short paths, and contracts
grant directory prefixes — so "cannot alias" must hold under both
orientations before a cached result may survive.

Example::

    from repro.analysis import Footprint, WorldDelta, may_depend, VALID, INVALID

    fp = Footprint(script="q.ambient", lang="shill/ambient",
                   reads=("/home/alice/Documents",), writes=("<stdout>",))
    assert may_depend(fp, WorldDelta(writes=("/srv/other",))).state == VALID
    verdict = may_depend(fp, WorldDelta(writes=("/home/alice/Documents/a.txt",)))
    assert verdict.state == INVALID and verdict.blame
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:
    from repro.analysis.footprint import Footprint
    from repro.kernel.kernel import Kernel
    from repro.kernel.vfs import Vnode

#: Verdict states.  ``VALID``: the cached result provably cannot depend
#: on anything the delta wrote — serve it.  ``INVALID``: the delta may
#: intersect the footprint (or mutated non-VFS machine state) — re-run.
#: ``UNKNOWN``: the footprint itself is uncacheable (network, wallet,
#: dynamic paths, escaping authority) — re-run, and don't cache.
VALID = "valid"
INVALID = "invalid"
UNKNOWN = "unknown"


@dataclass(frozen=True)
class Verdict:
    """The decision, with per-rule blame.

    ``blame`` entries are stable strings: ``uncacheable:<flag>`` for
    :data:`UNKNOWN`, ``invalidated-by:<component-or-prefix>`` for
    :data:`INVALID`; empty for :data:`VALID`.
    """

    state: str
    blame: tuple[str, ...] = ()

    @property
    def valid(self) -> bool:
        return self.state == VALID

    def to_json(self) -> dict:
        return {"state": self.state, "blame": list(self.blame)}

    def __str__(self) -> str:
        return self.state if not self.blame else f"{self.state} ({self.blame[0]})"


@dataclass(frozen=True)
class WorldDelta:
    """The statically computed write set separating a world from its
    template: path prefixes whose object or namespace changed, plus the
    non-VFS mutation classes the state epoch tracks.

    ``watermark_drift`` is **observable** (audit lines embed sids, and
    can embed pids — see :attr:`Kernel.state_epoch`), so it invalidates
    like any other mutation; it is reported separately only so blame can
    name it.  ``unknown`` means no template was available to diff
    against — every verdict over it is conservatively :data:`INVALID`.
    """

    writes: tuple[str, ...] = ()
    label_mutation: bool = False
    config_mutation: bool = False
    watermark_drift: bool = False
    unknown: bool = False

    @property
    def clean(self) -> bool:
        """No observable difference from the template at all."""
        return not (self.writes or self.label_mutation or self.config_mutation
                    or self.watermark_drift or self.unknown)

    def to_json(self) -> dict:
        return {
            "writes": list(self.writes),
            "label_mutation": self.label_mutation,
            "config_mutation": self.config_mutation,
            "watermark_drift": self.watermark_drift,
            "unknown": self.unknown,
        }


# ----------------------------------------------------------------------
# the world-delta analyzer
# ----------------------------------------------------------------------

def _labels_equal(a, b) -> bool:
    """Conservative label comparison: equal only when trivially so.

    Unlabelled labels (the overwhelming majority) compare equal; labelled
    ones compare equal only per-slot-identical.  A cloned privilege map
    therefore reads as "changed" — over-approximation is the safe
    direction for a write set."""
    if a._slots is None and b._slots is None:
        return True
    if a._slots is None or b._slots is None:
        return False
    if a._slots.keys() != b._slots.keys():
        return False
    return all(a._slots[k] is b._slots[k] for k in a._slots)


def _vnode_state_equal(cur: "Vnode", base: "Vnode") -> bool:
    """Own-state comparison for the tree diff.

    Pure cache state — ``nc_parent``/``nc_name`` (name-cache
    backpointers, refreshed by read-only lookups) and ``data_shared``
    (COW bookkeeping) — is deliberately excluded: it changes under
    reads, and a read is not a write."""
    if (cur.vtype is not base.vtype or cur.mode != base.mode
            or cur.uid != base.uid or cur.gid != base.gid
            or cur.flags != base.flags or cur.nlink != base.nlink
            or cur.linktarget != base.linktarget
            or cur.device is not base.device
            or cur.program != base.program or cur.needed != base.needed
            or cur.mtime != base.mtime):
        return False
    if (cur.data is None) != (base.data is None):
        return False
    if cur.data is not None and cur.data is not base.data:
        if bytes(cur.data) != bytes(base.data):
            return False
    return _labels_equal(cur.label, base.label)


def _join(path: str, name: str) -> str:
    return path.rstrip("/") + "/" + name


def _diff_tree(cur: "Vnode", base: "Vnode", path: str,
               writes: "set[str]", seen: "set[tuple[int, int]]") -> None:
    if cur is base:
        # The lazy-fork materialization record at work: a subtree still
        # object-identical to the template was provably never written.
        return
    key = (id(cur), id(base))
    if key in seen:
        return
    seen.add(key)
    if not _vnode_state_equal(cur, base):
        writes.add(path)
    if cur.is_dir and base.is_dir:
        cur_entries = cur.entries or {}
        base_entries = base.entries or {}
        for name in cur_entries.keys() | base_entries.keys():
            c, b = cur_entries.get(name), base_entries.get(name)
            child = _join(path, name)
            if c is None or b is None:
                writes.add(child)
            else:
                _diff_tree(c, b, child, writes, seen)


def _shill_sid(kernel: "Kernel") -> int:
    shill = kernel.mac.find("shill")
    return shill.sessions.last_sid if shill is not None else 0


def world_delta_between(kernel: "Kernel", template: "Kernel") -> WorldDelta:
    """Diff a (possibly mutated) fork against the template it was forked
    from.  Never materializes lazy subtrees, never moves an op counter."""
    writes: set[str] = set()
    _diff_tree(kernel.vfs.root, template.vfs.root, "/", writes, set())
    config = (kernel.users.mutations != template.users.mutations
              or kernel.sysctl.mutations != template.sysctl.mutations
              or kernel.kenv.mutations != template.kenv.mutations
              or kernel.ipc.mutations != template.ipc.mutations
              or kernel.network.mutations != template.network.mutations
              or kernel.mac.mutations != template.mac.mutations
              or kernel._epoch != template._epoch)
    watermark = (kernel.procs.allocated != template.procs.allocated
                 or _shill_sid(kernel) != _shill_sid(template))
    label = kernel.mac.label_epoch != template.mac.label_epoch
    return WorldDelta(writes=tuple(sorted(writes)),
                      label_mutation=label,
                      config_mutation=config,
                      watermark_drift=watermark)


def world_delta_of(world) -> WorldDelta:
    """The delta separating a booted :class:`~repro.api.World` from its
    boot-cache template.  ``unknown=True`` when the template has been
    evicted (or the world has no digest) — callers must then treat every
    cached result for this world as invalid."""
    from repro.api.worlds import _BOOT_CACHE

    if world.kernel is None or world.digest is None:
        return WorldDelta(unknown=True)
    cached = _BOOT_CACHE.get(world.digest)
    if cached is None:
        return WorldDelta(unknown=True)
    template, _ = cached
    return world_delta_between(world.kernel, template)


def world_delta_from_snapshot(data: bytes, load_base) -> WorldDelta:
    """The write set encoded by a v2 **delta snapshot frame**: restore
    the frame (``load_base`` maps a base digest to its blob, as in
    :func:`repro.kernel.serialize.restore_any`) and its base, then diff.
    Full frames diff against themselves, i.e. come back clean."""
    from repro.kernel.serialize import delta_base_digest, is_delta, restore_any

    if not is_delta(data):
        return WorldDelta()
    # Restore the base twice: apply_kernel_delta (inside restore_any)
    # adopts base vnodes by reference, so the diff needs a private copy.
    kernel = restore_any(data, load_base)
    base = restore_any(load_base(delta_base_digest(data)), load_base)
    return world_delta_between(kernel, base)


# ----------------------------------------------------------------------
# the decision procedure
# ----------------------------------------------------------------------

def prefixes_intersect(a: str, b: str) -> bool:
    """Either-direction prefix containment: can paths under ``a`` alias
    paths under ``b``?  (Sentinel pseudo-paths — ``<stdout>`` and kin —
    never intersect real paths.)"""
    if a.startswith("<") or b.startswith("<"):
        return False
    return (a == b
            or b.startswith(a.rstrip("/") + "/")
            or a.startswith(b.rstrip("/") + "/"))


def expand_home(prefix: str, home: "str | None") -> str:
    """Expand a leading ``~`` against the run user's home directory."""
    if home and prefix == "~":
        return home
    if home and prefix.startswith("~/"):
        return home.rstrip("/") + prefix[1:]
    return prefix


def _uncacheable(footprint: "Footprint", home: "str | None") -> list[str]:
    """Why this footprint can never back a cache hit (empty = cacheable)."""
    blame: list[str] = []
    if footprint.network:
        blame.append("uncacheable:network")
    if footprint.wallet:
        blame.append("uncacheable:wallet")
    for prefix in footprint.reads + footprint.writes + footprint.executes:
        if prefix == "<dynamic>":
            blame.append("uncacheable:dynamic-path")
        elif prefix.startswith("~") and not home:
            blame.append(f"uncacheable:unresolved-home:{prefix}")
    for name in footprint.requires:
        blame.append(f"uncacheable:requires:{name}")
    for export in footprint.exports:
        for param in export.params:
            if param.network:
                blame.append(f"uncacheable:network:{export.name}/{param.name}")
            if param.wallet:
                blame.append(f"uncacheable:wallet:{export.name}/{param.name}")
            if param.escapes:
                blame.append(f"uncacheable:escape:{export.name}/{param.name}")
    return blame


def footprint_prefixes(footprint: "Footprint",
                       home: "str | None" = None) -> tuple[str, ...]:
    """Every real path prefix the footprint may touch, ``~``-expanded."""
    raw = footprint.reads + footprint.writes + footprint.executes
    return tuple(expand_home(p, home) for p in raw if not p.startswith("<"))


def may_depend(footprint: "Footprint | None", delta: WorldDelta,
               home: "str | None" = None) -> Verdict:
    """May a run with this static footprint depend on anything the world
    delta wrote?  The cache-validity decision procedure.

    :data:`VALID` ⇒ a cached result for the run is byte-identical to a
    fresh re-run against the mutated world (the hypothesis property in
    ``tests/analysis/test_deps_properties.py`` checks exactly this).
    """
    if footprint is None:
        return Verdict(UNKNOWN, ("uncacheable:no-footprint",))
    blame = _uncacheable(footprint, home)
    if blame:
        return Verdict(UNKNOWN, tuple(blame))
    if delta.unknown:
        return Verdict(INVALID, ("invalidated-by:unknown-world-delta",))
    invalid: list[str] = []
    if delta.config_mutation:
        invalid.append("invalidated-by:config-mutation")
    if delta.label_mutation:
        invalid.append("invalidated-by:label-mutation")
    if delta.watermark_drift:
        # Observable: audit lines embed sids/pids (Kernel.state_epoch).
        invalid.append("invalidated-by:watermark-drift")
    prefixes = footprint_prefixes(footprint, home)
    for written in delta.writes:
        for prefix in prefixes:
            if prefixes_intersect(prefix, written):
                invalid.append(f"invalidated-by:{written}")
                break
    if invalid:
        return Verdict(INVALID, tuple(invalid))
    return Verdict(VALID)


# ----------------------------------------------------------------------
# the soundness gate: static ⊇ touched
# ----------------------------------------------------------------------

def soundness_escapes(footprint: "Footprint | None",
                      touched: "Iterable[tuple[str, str]]",
                      home: "str | None" = None) -> tuple[str, ...]:
    """Touched paths the static footprint fails to account for.

    ``touched`` is :attr:`RunResult.touched` — recorded ``(kind, path)``
    pairs.  A path is accounted for when it intersects some footprint
    prefix under :func:`prefixes_intersect` (either direction — the
    same rule :func:`may_depend` uses, so "accounted for" and "a write
    there invalidates" coincide).  Sentinel paths (``<detached>``)
    always escape: an unattributable touch cannot be proven disjoint
    from anything.  Non-empty ⇒ the contract under-declares; results
    must not survive any world mutation (and the escape is audited).
    """
    if footprint is None:
        return tuple(f"{kind}:{path}" for kind, path in touched)
    prefixes = footprint_prefixes(footprint, home)
    escaped: list[str] = []
    for kind, path in touched:
        if path.startswith("<"):
            escaped.append(f"{kind}:{path}")
            continue
        if not any(prefixes_intersect(prefix, path) for prefix in prefixes):
            escaped.append(f"{kind}:{path}")
    return tuple(escaped)


__all__ = [
    "VALID",
    "INVALID",
    "UNKNOWN",
    "Verdict",
    "WorldDelta",
    "world_delta_between",
    "world_delta_of",
    "world_delta_from_snapshot",
    "may_depend",
    "prefixes_intersect",
    "expand_home",
    "footprint_prefixes",
    "soundness_escapes",
]
