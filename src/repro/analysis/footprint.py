"""Footprints and diagnostics: the analysis results, as plain data.

Everything here is a frozen dataclass with a ``to_json`` method — the
policy-engine idiom of "decisions as data".  The CLI, the baseline gate,
and the pre-dispatch Batch gate all consume these types; none of them
re-runs the analyzer to ask a second question.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sandbox.privileges import Priv

#: Diagnostic severities, strongest first.  ``off`` disables a rule.
SEVERITIES = ("error", "warning", "off")

#: Privileges whose exercise reads data out of an object (traversal and
#: metadata — lookup, stat, path — deliberately do not count: a prefix
#: that is only walked is not a prefix that was read).
FP_READ_PRIVS = frozenset({Priv.READ, Priv.CONTENTS, Priv.READ_SYMLINK})
#: Privileges whose exercise mutates the object or the namespace under it.
FP_WRITE_PRIVS = frozenset(
    {Priv.WRITE, Priv.APPEND, Priv.TRUNCATE, Priv.IOCTL, Priv.CHMOD,
     Priv.CHOWN, Priv.CHFLAGS, Priv.UTIMES, Priv.CREATE_FILE,
     Priv.CREATE_DIR, Priv.CREATE_PIPE, Priv.CREATE_SYMLINK,
     Priv.UNLINK_FILE, Priv.UNLINK_DIR, Priv.RENAME, Priv.LINK}
)
#: Privileges whose exercise runs the object.
FP_EXEC_PRIVS = frozenset({Priv.EXEC})


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding: a stable rule code, where, what, and who is to
    blame (Findler–Felleisen style: the party whose promise the finding
    shows broken)."""

    code: str
    severity: str
    message: str
    script: str = "<script>"
    line: int = 0
    col: int = 0
    blame: str = ""
    param: str = ""

    def format(self) -> str:
        where = f"{self.script}:{self.line}:{self.col}"
        tail = f" [blame: {self.blame}]" if self.blame else ""
        return f"{where}: {self.code} {self.severity}: {self.message}{tail}"

    def to_json(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "script": self.script,
            "line": self.line,
            "col": self.col,
            "blame": self.blame,
            "param": self.param,
        }


@dataclass(frozen=True)
class ParamFootprint:
    """What one contract-guarded parameter flows into.

    ``privileges`` are exercised directly on the parameter;
    ``derived`` maps a deriving privilege (lookup, create-file, ...) to
    the privileges exercised on capabilities minted through it.
    """

    name: str
    privileges: tuple[str, ...] = ()
    derived: tuple[tuple[str, tuple[str, ...]], ...] = ()
    escapes: bool = False
    called: bool = False
    network: bool = False
    wallet: bool = False

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "privileges": list(self.privileges),
            "derived": {via: list(privs) for via, privs in self.derived},
            "escapes": self.escapes,
            "called": self.called,
            "network": self.network,
            "wallet": self.wallet,
        }


@dataclass(frozen=True)
class ExportFootprint:
    """Per-parameter footprints of one provided function."""

    name: str
    params: tuple[ParamFootprint, ...] = ()

    def to_json(self) -> dict:
        return {"name": self.name, "params": [p.to_json() for p in self.params]}


@dataclass(frozen=True)
class Footprint:
    """Everything a script can touch, inferred without executing it.

    For ambient scripts ``reads``/``writes``/``executes`` are path
    prefixes minted via ``open_file``/``open_dir`` (plus ``<stdout>`` /
    ``<stderr>``); for capability scripts they stay empty — authority
    arrives through parameters, described by ``exports``.
    """

    script: str = "<script>"
    lang: str = "shill/cap"
    privileges: tuple[str, ...] = ()
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    executes: tuple[str, ...] = ()
    network: bool = False
    wallet: bool = False
    exports: tuple[ExportFootprint, ...] = ()
    requires: tuple[str, ...] = ()

    def to_json(self) -> dict:
        return {
            "script": self.script,
            "lang": self.lang,
            "privileges": list(self.privileges),
            "reads": list(self.reads),
            "writes": list(self.writes),
            "executes": list(self.executes),
            "network": self.network,
            "wallet": self.wallet,
            "exports": [e.to_json() for e in self.exports],
            "requires": list(self.requires),
        }

    def touches(self, path: str) -> bool:
        """True when ``path`` falls under any read/written/executed
        prefix — the hook a dependency-aware result cache keys on."""
        prefixes = self.reads + self.writes + self.executes
        return any(path == p or path.startswith(p.rstrip("/") + "/")
                   for p in prefixes if not p.startswith("<"))


def classify_privs(privs: frozenset[Priv] | set[Priv]) -> tuple[bool, bool, bool]:
    """(reads, writes, executes) membership for a privilege set."""
    return (
        bool(privs & FP_READ_PRIVS),
        bool(privs & FP_WRITE_PRIVS),
        bool(privs & FP_EXEC_PRIVS),
    )


# Re-exported for convenience so rule implementations need only this module.
__all__ = [
    "SEVERITIES",
    "Diagnostic",
    "ParamFootprint",
    "ExportFootprint",
    "Footprint",
    "FP_READ_PRIVS",
    "FP_WRITE_PRIVS",
    "FP_EXEC_PRIVS",
    "classify_privs",
]
