"""Static capability-footprint inference and contract lint.

SHILL's pitch is that a script's authority is inspectable *before* it
runs: the contract on each export bounds what the body may touch.  This
package makes that claim executable without executing anything — an
abstract interpreter over :mod:`repro.lang.ast_` infers each script's
capability **footprint** (privileges exercised per contract parameter,
path prefixes read/written by ambient scripts, network and wallet use)
and a rule engine compares footprint against contract to flag
least-privilege gaps, guaranteed runtime violations, and dead contract
clauses, each with a stable ``SHnnn`` code, a source span, and the
blamed party.

Entry points:

* :func:`lint_source` / :func:`lint_scripts` — analyse and lint.
* :func:`analyze_source` — footprint inference only.
* :class:`RuleSet` / :class:`FakeRuleSet` — pluggable rules.
* :class:`LintRejection` / :func:`gate_jobs` — pre-dispatch gating for
  :class:`repro.api.Batch`.
* :func:`may_depend` / :class:`WorldDelta` / :class:`Verdict` — the
  dependency-aware cache-invalidation decision procedure
  (:mod:`repro.analysis.deps`).
"""

from repro.analysis.deps import (
    INVALID,
    UNKNOWN,
    VALID,
    Verdict,
    WorldDelta,
    may_depend,
    prefixes_intersect,
    soundness_escapes,
    world_delta_between,
    world_delta_of,
    world_delta_from_snapshot,
)
from repro.analysis.footprint import (
    Diagnostic,
    ExportFootprint,
    Footprint,
    ParamFootprint,
    SEVERITIES,
)
from repro.analysis.gate import LINT_MODES, LintRejection, gate_jobs
from repro.analysis.infer import ModuleAnalysis, analyze_source
from repro.analysis.lint import (
    LintReport,
    lint_scripts,
    lint_source,
    render_human,
    render_json,
)
from repro.analysis.rules import (
    DEFAULT_RULES,
    FakeRuleSet,
    LintRule,
    RULE_CATALOG,
    RuleSet,
)

__all__ = [
    "Diagnostic",
    "ExportFootprint",
    "Footprint",
    "ParamFootprint",
    "SEVERITIES",
    "LINT_MODES",
    "LintRejection",
    "gate_jobs",
    "ModuleAnalysis",
    "analyze_source",
    "LintReport",
    "lint_scripts",
    "lint_source",
    "render_human",
    "render_json",
    "DEFAULT_RULES",
    "FakeRuleSet",
    "LintRule",
    "RULE_CATALOG",
    "RuleSet",
    "VALID",
    "INVALID",
    "UNKNOWN",
    "Verdict",
    "WorldDelta",
    "may_depend",
    "prefixes_intersect",
    "soundness_escapes",
    "world_delta_between",
    "world_delta_of",
    "world_delta_from_snapshot",
]
