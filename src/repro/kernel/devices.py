"""Character devices.

Section 3.2.3 of the paper documents a real limitation that this module
deliberately reproduces: "The MAC framework does not interpose on read or
write operations on character devices.  Thus, while the SHILL language
exposes stdin, stdout, and stderr as file capabilities and enforces
restrictions on how they can be used, sandboxed processes can bypass
these restrictions if one of these capabilities abstracts a
pseudo-terminal or other device."

The syscall layer therefore skips the vnode read/write MAC hooks whenever
the target vnode is a character device; a test in
``tests/sandbox/test_limitations.py`` demonstrates the documented bypass.

Devices are part of the kernel snapshot story (:mod:`repro.kernel
.serialize`): the stateless base-image devices (``null``, ``zero``)
pickle by *name* through a factory registry and the handler callables are
rebuilt on load, so a snapshot never tries to serialize a lambda.
:class:`TtyDevice` pickles its capture buffers instead.
"""

from __future__ import annotations

from typing import Callable

#: name -> zero-argument factory for stateless devices; the pickle hooks
#: reduce such devices to their registered name.
DEVICE_FACTORIES: dict[str, Callable[[], "CharDevice"]] = {}


class CharDevice:
    """A character device with read/write handlers.

    ``read_fn(size) -> bytes`` and ``write_fn(data) -> int``; either may be
    ``None`` for a device that does not support the operation.
    """

    def __init__(
        self,
        name: str,
        read_fn: Callable[[int], bytes] | None = None,
        write_fn: Callable[[bytes], int] | None = None,
    ) -> None:
        self.name = name
        self._read_fn = read_fn
        self._write_fn = write_fn

    def __reduce__(self):
        """Stateless devices snapshot as their registered name; handler
        callables (often lambdas) are never serialized."""
        if self.name in DEVICE_FACTORIES:
            return (_make_device, (self.name,))
        raise TypeError(
            f"CharDevice {self.name!r} is not snapshot-aware: register a "
            "factory in DEVICE_FACTORIES or subclass with pickle support"
        )

    def read(self, size: int) -> bytes:
        if self._read_fn is None:
            return b""
        return self._read_fn(size)

    def write(self, data: bytes) -> int:
        if self._write_fn is None:
            return len(data)
        return self._write_fn(data)


class TtyDevice(CharDevice):
    """A pseudo-terminal capturing output (and optionally scripted input).

    Ambient scripts' ``stdout`` capability abstracts one of these; its
    captured ``output`` is what tests and examples assert against.
    """

    def __init__(self, name: str = "ttyv0", input_data: bytes = b"") -> None:
        self.output = bytearray()
        self._input = bytearray(input_data)
        super().__init__(name, read_fn=self._do_read, write_fn=self._do_write)

    def __reduce__(self):
        """Ttys carry real state: snapshot name + buffers, rebuild the
        handler wiring on load (bound methods would drag ``self`` into a
        second pickle path and confuse sharing)."""
        return (_restore_tty, (self.name, bytes(self.output), bytes(self._input)))

    def _do_read(self, size: int) -> bytes:
        out = bytes(self._input[:size])
        del self._input[:size]
        return out

    def _do_write(self, data: bytes) -> int:
        self.output.extend(data)
        return len(data)

    @property
    def text(self) -> str:
        return self.output.decode(errors="replace")


def _restore_tty(name: str, output: bytes, input_data: bytes) -> "TtyDevice":
    tty = TtyDevice(name, input_data=input_data)
    tty.output.extend(output)
    return tty


def _make_device(name: str) -> CharDevice:
    return DEVICE_FACTORIES[name]()


def null_device() -> CharDevice:
    return CharDevice("null", read_fn=lambda size: b"", write_fn=len)


def zero_device() -> CharDevice:
    return CharDevice("zero", read_fn=lambda size: b"\x00" * size, write_fn=len)


DEVICE_FACTORIES["null"] = null_device
DEVICE_FACTORIES["zero"] = zero_device
