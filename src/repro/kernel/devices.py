"""Character devices.

Section 3.2.3 of the paper documents a real limitation that this module
deliberately reproduces: "The MAC framework does not interpose on read or
write operations on character devices.  Thus, while the SHILL language
exposes stdin, stdout, and stderr as file capabilities and enforces
restrictions on how they can be used, sandboxed processes can bypass
these restrictions if one of these capabilities abstracts a
pseudo-terminal or other device."

The syscall layer therefore skips the vnode read/write MAC hooks whenever
the target vnode is a character device; a test in
``tests/sandbox/test_limitations.py`` demonstrates the documented bypass.
"""

from __future__ import annotations

from typing import Callable


class CharDevice:
    """A character device with read/write handlers.

    ``read_fn(size) -> bytes`` and ``write_fn(data) -> int``; either may be
    ``None`` for a device that does not support the operation.
    """

    def __init__(
        self,
        name: str,
        read_fn: Callable[[int], bytes] | None = None,
        write_fn: Callable[[bytes], int] | None = None,
    ) -> None:
        self.name = name
        self._read_fn = read_fn
        self._write_fn = write_fn

    def read(self, size: int) -> bytes:
        if self._read_fn is None:
            return b""
        return self._read_fn(size)

    def write(self, data: bytes) -> int:
        if self._write_fn is None:
            return len(data)
        return self._write_fn(data)


class TtyDevice(CharDevice):
    """A pseudo-terminal capturing output (and optionally scripted input).

    Ambient scripts' ``stdout`` capability abstracts one of these; its
    captured ``output`` is what tests and examples assert against.
    """

    def __init__(self, name: str = "ttyv0", input_data: bytes = b"") -> None:
        self.output = bytearray()
        self._input = bytearray(input_data)
        super().__init__(name, read_fn=self._do_read, write_fn=self._do_write)

    def _do_read(self, size: int) -> bytes:
        out = bytes(self._input[:size])
        del self._input[:size]
        return out

    def _do_write(self, data: bytes) -> int:
        self.output.extend(data)
        return len(data)

    @property
    def text(self) -> str:
        return self.output.decode(errors="replace")


def null_device() -> CharDevice:
    return CharDevice("null", read_fn=lambda size: b"", write_fn=len)


def zero_device() -> CharDevice:
    return CharDevice("zero", read_fn=lambda size: b"\x00" * size, write_fn=len)
