"""Credentials and discretionary access control (DAC).

SHILL's sandbox enforces its capability-based MAC policy *in addition to*
the operating system's DAC (section 2.3): "an operation on a resource by a
sandboxed execution is permitted only if it passes the checks performed by
the operating system based on the user's ambient authority and is also
permitted by the capabilities possessed by the sandbox."

This module supplies the first half of that conjunction: classic Unix
owner/group/other mode-bit checks against a process credential.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Permission "accmode" bits, matching the classic octal digits.
R_OK = 4
W_OK = 2
X_OK = 1

ROOT_UID = 0


@dataclass(frozen=True)
class Credential:
    """An immutable process credential (uid, gid, supplementary groups)."""

    uid: int
    gid: int
    groups: frozenset[int] = field(default_factory=frozenset)
    username: str = ""

    @property
    def is_root(self) -> bool:
        return self.uid == ROOT_UID

    @property
    def home(self) -> str:
        """The world image's home-directory convention, in one place:
        root lives in /root, everyone else under /home."""
        return "/root" if self.is_root else f"/home/{self.username}"

    def in_group(self, gid: int) -> bool:
        return gid == self.gid or gid in self.groups


def dac_check(cred: Credential, *, mode: int, uid: int, gid: int, want: int) -> bool:
    """Return True if ``cred`` may perform ``want`` (R_OK|W_OK|X_OK bits)
    on an object with the given ``mode``/``uid``/``gid``.

    Mirrors ``vaccess(9)``: root passes every check except execute on a
    file with no execute bit at all (matching FreeBSD's behaviour, which
    requires at least one x bit even for root).
    """
    if cred.is_root:
        if want & X_OK and not mode & 0o111:
            return False
        return True
    if cred.uid == uid:
        granted = (mode >> 6) & 0o7
    elif cred.in_group(gid):
        granted = (mode >> 3) & 0o7
    else:
        granted = mode & 0o7
    return (granted & want) == want


class UserDB:
    """A tiny ``/etc/passwd``-style user registry for the simulated system.

    The world-image builder registers users here; ambient scripts run with
    the credential of one of these users.
    """

    def __init__(self) -> None:
        self._by_name: dict[str, Credential] = {}
        self._by_uid: dict[int, Credential] = {}
        #: registry mutation counter (part of the kernel state epoch).
        self.mutations = 0
        self.add_user("root", ROOT_UID, 0)

    def add_user(self, name: str, uid: int, gid: int, groups: frozenset[int] = frozenset()) -> Credential:
        if name in self._by_name:
            raise ValueError(f"duplicate user {name!r}")
        if uid in self._by_uid:
            raise ValueError(f"duplicate uid {uid}")
        cred = Credential(uid=uid, gid=gid, groups=groups, username=name)
        self._by_name[name] = cred
        self._by_uid[uid] = cred
        self.mutations += 1
        return cred

    def lookup(self, name: str) -> Credential:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no such user: {name}") from None

    def lookup_uid(self, uid: int) -> Credential:
        try:
            return self._by_uid[uid]
        except KeyError:
            raise KeyError(f"no such uid: {uid}") from None

    def users(self) -> list[Credential]:
        return list(self._by_name.values())

    def clone(self) -> "UserDB":
        """An independent registry for a forked kernel.  Credentials are
        frozen and shared; the name/uid indexes are copied so users added
        in a fork never appear in the template."""
        new = UserDB.__new__(UserDB)
        new._by_name = dict(self._by_name)
        new._by_uid = dict(self._by_uid)
        new.mutations = self.mutations
        return new
