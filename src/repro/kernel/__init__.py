"""The simulated kernel substrate.

See :mod:`repro.kernel.kernel` for the façade.  The package mirrors the
FreeBSD pieces the SHILL paper builds on: VFS + name cache, the
TrustedBSD MAC framework, processes, pipes, sockets, sysctl, IPC, and the
syscall layer including the paper's new ``flinkat``/``funlinkat``/
``frenameat``/``path`` system calls.
"""

from repro.kernel.kernel import Kernel, KernelStats
from repro.kernel.store import SnapshotStore
from repro.kernel.syscalls import (
    O_APPEND,
    O_CREAT,
    O_DIRECTORY,
    O_EXCL,
    O_EXEC,
    O_NOFOLLOW,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    Stat,
    SyscallInterface,
)
from repro.kernel.vfs import VFS, Label, Vnode, VType

__all__ = [
    "Kernel",
    "KernelStats",
    "SnapshotStore",
    "SyscallInterface",
    "Stat",
    "VFS",
    "Vnode",
    "VType",
    "Label",
    "O_RDONLY",
    "O_WRONLY",
    "O_RDWR",
    "O_APPEND",
    "O_CREAT",
    "O_TRUNC",
    "O_EXCL",
    "O_DIRECTORY",
    "O_EXEC",
    "O_NOFOLLOW",
]
