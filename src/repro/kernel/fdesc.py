"""File descriptors and per-process descriptor tables.

An :class:`OpenFile` is the kernel's "open file description": it pairs a
kernel object (vnode, pipe end, or socket) with open flags and a seek
offset.  File descriptors are small integers indexing a per-process
table, and — as in Unix — several descriptors (including inherited ones)
may share one open file description.

File descriptors are the **low-level capabilities** of the paper
(section 3.1.3): "File descriptors provide unforgeable tokens that can
serve as low-level capabilities for directories, files, links, pipes,
sockets, and devices."
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Union

from repro.errors import SysError
from repro.kernel import errno_

if TYPE_CHECKING:
    from repro.kernel.pipes import PipeEnd
    from repro.kernel.sockets import Socket
    from repro.kernel.vfs import Vnode


class OpenFlags(enum.IntFlag):
    """Open(2) flags; values follow FreeBSD's ``fcntl.h``."""

    O_RDONLY = 0x0000
    O_WRONLY = 0x0001
    O_RDWR = 0x0002
    O_APPEND = 0x0008
    O_CREAT = 0x0200
    O_TRUNC = 0x0400
    O_EXCL = 0x0800
    O_DIRECTORY = 0x20000
    O_EXEC = 0x40000
    O_NOFOLLOW = 0x0100

    @property
    def readable(self) -> bool:
        return (self & 0x3) in (OpenFlags.O_RDONLY, OpenFlags.O_RDWR)

    @property
    def writable(self) -> bool:
        return (self & 0x3) in (OpenFlags.O_WRONLY, OpenFlags.O_RDWR)


KernelObject = Union["Vnode", "PipeEnd", "Socket"]


class OpenFile:
    """An open file description shared by one or more descriptors."""

    __slots__ = ("obj", "flags", "offset", "refcount")

    def __init__(self, obj: KernelObject, flags: OpenFlags) -> None:
        self.obj = obj
        self.flags = flags
        self.offset = 0
        self.refcount = 0

    def incref(self) -> "OpenFile":
        self.refcount += 1
        return self

    def decref(self) -> None:
        self.refcount -= 1
        if self.refcount <= 0:
            close = getattr(self.obj, "on_last_close", None)
            if close is not None:
                close()


class FDTable:
    """A per-process map of descriptor numbers to open file descriptions."""

    MAX_FDS = 1024

    def __init__(self) -> None:
        self._table: dict[int, OpenFile] = {}
        self._next = 0

    def alloc(self, of: OpenFile) -> int:
        fd = 0
        while fd in self._table:
            fd += 1
        if fd >= self.MAX_FDS:
            raise SysError(errno_.EMFILE, "too many open files")
        self._table[fd] = of.incref()
        return fd

    def install(self, fd: int, of: OpenFile) -> None:
        """Install at a specific number (used to wire stdio as 0/1/2)."""
        if fd in self._table:
            self._table[fd].decref()
        self._table[fd] = of.incref()

    def get(self, fd: int) -> OpenFile:
        try:
            return self._table[fd]
        except KeyError:
            raise SysError(errno_.EBADF, f"fd {fd}") from None

    def close(self, fd: int) -> None:
        try:
            of = self._table.pop(fd)
        except KeyError:
            raise SysError(errno_.EBADF, f"fd {fd}") from None
        of.decref()

    def close_all(self) -> None:
        for fd in list(self._table):
            self.close(fd)

    def dup_into(self, other: "FDTable", fd: int, newfd: int) -> None:
        other.install(newfd, self.get(fd))

    def fds(self) -> list[int]:
        return sorted(self._table)

    def __contains__(self, fd: int) -> bool:
        return fd in self._table
