"""The sysctl tree.

Per Figure 7 of the paper, sysctl access from the SHILL *language* is
denied entirely, while inside capability-based *sandboxes* it is
read-only.  The enforcement lives in the SHILL MAC policy
(``system_check_sysctl``); this module is just the dotted-name key/value
store with MAC mediation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SysError
from repro.kernel import errno_

if TYPE_CHECKING:
    from repro.kernel.mac import MacFramework
    from repro.kernel.proc import Process

DEFAULT_SYSCTLS: dict[str, object] = {
    "kern.ostype": "FreeBSD",
    "kern.osrelease": "9.2-RELEASE",
    "kern.hostname": "shill-repro",
    "hw.ncpu": 6,
    "hw.physmem": 6 * 1024**3,
    "kern.maxfiles": 65536,
    "security.mac.shill.enabled": 1,
}


class SysctlTree:
    def __init__(self, mac: "MacFramework") -> None:
        self._mac = mac
        self._values: dict[str, object] = dict(DEFAULT_SYSCTLS)
        #: mutation counter (part of the kernel state epoch).
        self.mutations = 0

    def fork(self, mac: "MacFramework") -> "SysctlTree":
        """A copy bound to the forked kernel's MAC framework."""
        new = SysctlTree(mac)
        new._values = dict(self._values)
        new.mutations = self.mutations
        return new

    def get(self, proc: "Process", name: str) -> object:
        self._mac.check("system_check_sysctl", proc, name, False)
        try:
            return self._values[name]
        except KeyError:
            raise SysError(errno_.ENOENT, f"sysctl {name!r}") from None

    def set(self, proc: "Process", name: str, value: object) -> None:
        self._mac.check("system_check_sysctl", proc, name, True)
        self._values[name] = value
        self.mutations += 1

    def names(self) -> list[str]:
        return sorted(self._values)
