"""The virtual filesystem: vnodes, directory entries, and the name cache.

This is the substrate the SHILL sandbox protects.  It is an in-memory
tree of :class:`Vnode` objects mirroring the parts of FreeBSD's VFS that
SHILL's paper depends on:

* vnodes carry type, DAC attributes, and a MAC **label** slot where the
  framework stores per-policy state (SHILL stores privilege maps there);
* directories map names to child vnodes, and support hard links (regular
  files may appear under several names);
* a **name cache** remembers the last (parent, name) under which each
  vnode was reached, backing the paper's new ``path`` system call ("attempts
  to retrieve an accessible path for a file descriptor from the
  filesystem's lookup cache", section 3.1.3);
* executables are vnodes tagged with a registered program name plus the
  list of ``NEEDED`` shared libraries, which the loader opens at exec time
  (so sandboxes must be granted library capabilities, as in the paper's
  ``cat`` example that needs eight extra capabilities).

Path *resolution* (walking components, symlinks, MAC lookup hooks) lives
in :mod:`repro.kernel.syscalls`; this module only provides the mechanical
tree operations and raises :class:`SysError` for structural errors.

The tree supports **O(changed-state) forking** (:meth:`VFS.fork`): a fork
clones the vnode graph (preserving hard links and the name cache) but
shares each regular file's byte buffer copy-on-write — the buffer is only
duplicated when either side first mutates it, so forking a booted world
costs a tree walk, not a data copy.
"""

from __future__ import annotations

import enum
import itertools
import weakref
from typing import TYPE_CHECKING, Optional

from repro.errors import SysError
from repro.kernel import errno_

if TYPE_CHECKING:
    from repro.kernel.devices import CharDevice

NAME_MAX = 255


class VType(enum.Enum):
    """Vnode types (a subset of FreeBSD's ``vtype``)."""

    VREG = "regular"
    VDIR = "directory"
    VLNK = "symlink"
    VCHR = "chardev"
    VFIFO = "fifo"
    VSOCK = "socket"


class Label:
    """A MAC label: per-policy storage attached to a kernel object.

    The MAC framework provides "a policy-agnostic mechanism for attaching
    security labels to kernel objects" (section 3.2).  Policies index into
    the label by their registered name; SHILL stores its privilege map
    under ``"shill"``.
    """

    __slots__ = ("_slots",)

    def __init__(self) -> None:
        # Allocated on first set(): almost every vnode is never labelled,
        # and label clones dominate fork cost when every label carries an
        # (empty) dict.
        self._slots: dict[str, object] | None = None

    def get(self, policy: str) -> object | None:
        return None if self._slots is None else self._slots.get(policy)

    def set(self, policy: str, value: object) -> None:
        if self._slots is None:
            self._slots = {}
        self._slots[policy] = value

    def clear(self, policy: str) -> None:
        if self._slots is not None:
            self._slots.pop(policy, None)
            if not self._slots:
                # Normalise back to the unlabelled state: a label whose
                # last slot is cleared must snapshot (and delta-encode)
                # identically to one that was never set.
                self._slots = None

    def clone(self) -> "Label":
        """Per-policy state is cloned when it knows how (privilege maps
        define ``clone``); immutable state is shared."""
        new = Label()
        if not self._slots:
            # The overwhelmingly common case during fork: unlabelled
            # vnodes skip both the dict allocation and the per-slot loop.
            return new
        new._slots = {}
        for policy, value in self._slots.items():
            clone = getattr(value, "clone", None)
            new._slots[policy] = clone() if callable(clone) else value
        return new


# Fallback allocator for vnodes constructed outside any VFS tree (the
# runtime's per-session device vnodes, test scaffolding).  It starts far
# above any per-tree vid so the two ranges can never collide inside one
# kernel.
_vid_counter = itertools.count(1 << 32)


class Vnode:
    """A single filesystem object.

    Regular files store bytes in ``data``; directories store a name→vnode
    map in ``entries``; symlinks store their target path in ``linktarget``;
    character devices reference a :class:`~repro.kernel.devices.CharDevice`.
    Executable regular files additionally carry ``program`` (the registered
    simulated-binary name) and ``needed`` (shared-library basenames reported
    by ``ldd``).
    """

    __slots__ = (
        "vid",
        "vtype",
        "mode",
        "uid",
        "gid",
        "flags",
        "nlink",
        "data",
        "entries",
        "linktarget",
        "device",
        "program",
        "needed",
        "label",
        "nc_parent",
        "nc_name",
        "mtime",
        "data_shared",
        "entries_lazy",
    )

    # Snapshot state excludes ``entries_lazy``: VFS.__getstate__
    # materializes every shared subtree first, so the flag is always
    # False by the time a vnode is pickled — carrying it would only
    # change the byte format for no information.
    _STATE_SLOTS = (
        "vid", "vtype", "mode", "uid", "gid", "flags", "nlink", "data",
        "entries", "linktarget", "device", "program", "needed", "label",
        "nc_parent", "nc_name", "mtime", "data_shared",
    )

    def __init__(
        self,
        vtype: VType,
        mode: int,
        uid: int,
        gid: int,
    ) -> None:
        self.vid: int = next(_vid_counter)
        self.vtype = vtype
        self.mode = mode
        self.uid = uid
        self.gid = gid
        self.flags = 0
        self.nlink = 1
        self.data = bytearray() if vtype is VType.VREG else None
        self.entries: dict[str, Vnode] | None = {} if vtype is VType.VDIR else None
        self.linktarget: str | None = None
        self.device: Optional["CharDevice"] = None
        self.program: str | None = None
        self.needed: list[str] = []
        self.label = Label()
        # Name-cache backpointer: last (parent vnode, name) this vnode was
        # reachable at.  Supports the `path` syscall; invalidated on unlink.
        self.nc_parent: Vnode | None = None
        self.nc_name: str | None = None
        self.mtime: int = 0
        # Copy-on-write marker: True while ``data`` is a buffer shared
        # with a forked (or template) vnode.  Mutators must go through
        # ``writable_data()``, which unshares first.
        self.data_shared: bool = False
        # Lazy-fork marker (directories only): True while ``entries``
        # values still reference the fork *template's* vnodes.  The
        # owning VFS materializes private clones on first access.
        self.entries_lazy: bool = False

    def __getstate__(self) -> dict:
        """Snapshot state (:mod:`repro.kernel.serialize`): every slot, in
        declaration order.  Cycles (entries ↔ nc_parent) are safe — the
        pickle memo registers the vnode before its state is traversed —
        and hard links stay shared the same way.  ``data_shared`` crosses
        verbatim: a buffer shared with a *template* serializes as this
        side's private copy, and the first write after restore unshares
        exactly as it would have before."""
        return {name: getattr(self, name) for name in self._STATE_SLOTS}

    def __setstate__(self, state: dict) -> None:
        for name in self._STATE_SLOTS:
            setattr(self, name, state[name])
        self.entries_lazy = False

    def writable_data(self) -> bytearray:
        """The file's byte buffer, for mutation: unshares a copy-on-write
        buffer first so forks never observe each other's writes."""
        assert self.data is not None
        if self.data_shared:
            self.data = bytearray(self.data)
            self.data_shared = False
        return self.data

    # -- convenience predicates -------------------------------------------------

    @property
    def is_dir(self) -> bool:
        return self.vtype is VType.VDIR

    @property
    def is_reg(self) -> bool:
        return self.vtype is VType.VREG

    @property
    def is_symlink(self) -> bool:
        return self.vtype is VType.VLNK

    @property
    def is_chardev(self) -> bool:
        return self.vtype is VType.VCHR

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Vnode {self.vid} {self.vtype.value} {self.nc_name or '?'}>"


class VFS:
    """The filesystem tree and its mechanical operations.

    All methods operate on already-resolved directory vnodes with a single
    name component — multi-component resolution, symlink following, and
    security checks are the syscall layer's job.  This split mirrors the
    kernel, where ``namei`` drives per-component VOP_LOOKUPs.
    """

    def __init__(self) -> None:
        # Tree vids are allocated per-VFS (and the watermark crosses
        # fork()), so two forks performing identical operations assign
        # identical vids — vids leak into observable output (Stat.vid,
        # audit fallbacks), and "parallel equals sequential" needs them
        # reproducible.
        self._next_vid = 1
        self.root = Vnode(VType.VDIR, 0o755, 0, 0)
        self.root.vid = self._alloc_vid()
        self.root.nc_name = "/"
        self._generation = 0
        # Optional stats sink (set by the Kernel): an object with a
        # ``count_vnode_op(name)`` method.  Deterministic op counts back
        # the benchmark harness's noise-free shape assertions.
        self.stats = None
        self._init_runtime_state()

    def _init_runtime_state(self) -> None:
        """Cache and lazy-fork bookkeeping: never pickled, never forked."""
        # Directory-entry cache ("dcache"): (dir vid, name) → vnode for
        # plain entries, valid only while the tree generation matches.
        # Purely mechanical — no DAC/MAC state is cached — so a hit skips
        # the VOP_LOOKUP but nothing security-relevant.
        self.dcache_enabled = True
        self._dcache: dict[tuple[int, str], Vnode] = {}
        self._dcache_gen = self._generation
        # Lazy-fork state (populated on clones made by fork()):
        # vid → this tree's private clone of a template vnode, plus the
        # vid watermark at fork time (vids below it that are not in the
        # memo still belong to the template).
        self._lazy_memo: dict[int, Vnode] = {}
        self._lazy_floor = 0
        # Live forks still sharing subtrees with this tree; a mutation
        # here forces them to materialize first (templates are normally
        # quiescent while forks run, so this list stays empty in the
        # batch hot path).
        self._lazy_children: list[weakref.ref["VFS"]] = []

    def _alloc_vid(self) -> int:
        vid = self._next_vid
        self._next_vid += 1
        return vid

    @property
    def generation(self) -> int:
        """Monotonic mutation counter: bumps on every structural or data
        change.  Equal generations ⇒ the tree has not been modified."""
        return self._generation

    def _vop(self, name: str) -> None:
        if self.stats is not None:
            self.stats.count_vnode_op(name)

    # -- lookup -----------------------------------------------------------------

    def lookup(self, dvp: Vnode, name: str) -> Vnode:
        """Look up ``name`` in directory ``dvp``. Handles ``.`` and ``..``.

        ``..`` is resolved through the name cache backpointer, as the real
        kernel resolves it through the directory entry; at the root, ``..``
        is the root itself.
        """
        self._check_component(name)
        cacheable = self.dcache_enabled and name != "." and name != ".."
        if cacheable and dvp.is_dir:
            if self._dcache_gen != self._generation:
                # Any tree mutation invalidates wholesale; entries are
                # re-filled by the next walk.
                self._dcache.clear()
                self._dcache_gen = self._generation
            cached = self._dcache.get((dvp.vid, name))
            if cached is not None:
                if self.stats is not None:
                    self.stats.dcache_hits += 1
                # A hit has the same name-cache effect a walk would.
                cached.nc_parent = dvp
                cached.nc_name = name
                return cached
        self._vop("lookup")
        if not dvp.is_dir:
            raise SysError(errno_.ENOTDIR, f"lookup {name!r} in non-directory")
        if name == ".":
            return dvp
        if name == "..":
            return dvp.nc_parent if dvp.nc_parent is not None else self.root
        assert dvp.entries is not None
        try:
            vp = dvp.entries[name]
        except KeyError:
            raise SysError(errno_.ENOENT, f"no entry {name!r}") from None
        if dvp.entries_lazy:
            vp = self._materialize_child(dvp, name, vp)
        # Refresh the name cache on every successful lookup.
        vp.nc_parent = dvp
        vp.nc_name = name
        if cacheable:
            if self.stats is not None:
                self.stats.dcache_misses += 1
            self._dcache[(dvp.vid, name)] = vp
        return vp

    def exists(self, dvp: Vnode, name: str) -> bool:
        return bool(dvp.is_dir and dvp.entries is not None and name in dvp.entries)

    def contents(self, dvp: Vnode) -> list[str]:
        if not dvp.is_dir:
            raise SysError(errno_.ENOTDIR, "contents of non-directory")
        assert dvp.entries is not None
        return sorted(dvp.entries)

    # -- creation ---------------------------------------------------------------

    def create(self, dvp: Vnode, name: str, vtype: VType, mode: int, uid: int, gid: int) -> Vnode:
        """Create a new vnode of ``vtype`` named ``name`` inside ``dvp``."""
        self._check_component(name)
        self._unshare_forks()
        self._vop("create")
        if name in (".", ".."):
            raise SysError(errno_.EEXIST, name)
        if not dvp.is_dir:
            raise SysError(errno_.ENOTDIR, "create in non-directory")
        if dvp.nlink <= 0:
            raise SysError(errno_.ENOENT, "directory has been removed")
        assert dvp.entries is not None
        if name in dvp.entries:
            raise SysError(errno_.EEXIST, f"entry {name!r} exists")
        vp = Vnode(vtype, mode, uid, gid)
        vp.vid = self._alloc_vid()
        dvp.entries[name] = vp
        vp.nc_parent = dvp
        vp.nc_name = name
        self._generation += 1
        return vp

    def symlink(self, dvp: Vnode, name: str, target: str, uid: int, gid: int) -> Vnode:
        vp = self.create(dvp, name, VType.VLNK, 0o777, uid, gid)
        vp.linktarget = target
        return vp

    # -- link / unlink / rename ---------------------------------------------------

    def link(self, file_vp: Vnode, dvp: Vnode, name: str) -> None:
        """Install a hard link to ``file_vp`` at ``dvp``/``name``.

        This is the mechanism behind the paper's ``flinkat`` system call,
        which "installs a link to a file in a directory given file
        descriptors for both the file and the directory" — no path ever
        designates the source, so there is no TOCTTOU window.
        """
        self._check_component(name)
        self._unshare_forks()
        self._vop("link")
        if file_vp.is_dir:
            raise SysError(errno_.EPERM, "hard link to directory")
        if not dvp.is_dir:
            raise SysError(errno_.ENOTDIR, "link target not a directory")
        if dvp.nlink <= 0:
            raise SysError(errno_.ENOENT, "directory has been removed")
        assert dvp.entries is not None
        if name in dvp.entries:
            raise SysError(errno_.EEXIST, f"entry {name!r} exists")
        dvp.entries[name] = file_vp
        file_vp.nlink += 1
        self._generation += 1

    def unlink(self, dvp: Vnode, name: str, expect: Vnode | None = None) -> Vnode:
        """Remove entry ``name`` from ``dvp``; returns the unlinked vnode.

        With ``expect`` set this is ``funlinkat``: the entry is removed only
        if it still refers to that exact vnode, otherwise ``EDEADLK`` — the
        fd-based race-free unlink from section 3.1.3.
        """
        self._check_component(name)
        self._unshare_forks()
        self._vop("unlink")
        if name in (".", ".."):
            raise SysError(errno_.EINVAL, name)
        if not dvp.is_dir:
            raise SysError(errno_.ENOTDIR, "unlink in non-directory")
        assert dvp.entries is not None
        try:
            vp = dvp.entries[name]
        except KeyError:
            raise SysError(errno_.ENOENT, f"no entry {name!r}") from None
        if dvp.entries_lazy:
            # The nlink decrement below must land on this tree's private
            # clone, never on a vnode still shared with the template.
            vp = self._materialize_child(dvp, name, vp)
        if expect is not None and vp is not expect:
            raise SysError(errno_.EDEADLK, f"entry {name!r} no longer refers to the expected file")
        if vp.is_dir:
            assert vp.entries is not None
            if vp.entries:
                raise SysError(errno_.ENOTEMPTY, f"directory {name!r} not empty")
        del dvp.entries[name]
        vp.nlink -= 1
        if vp.nc_parent is dvp and vp.nc_name == name:
            vp.nc_parent = None
            vp.nc_name = None
        self._generation += 1
        return vp

    def rename(self, src_dvp: Vnode, src_name: str, dst_dvp: Vnode, dst_name: str) -> Vnode:
        """Move ``src_dvp``/``src_name`` to ``dst_dvp``/``dst_name``."""
        self._check_component(src_name)
        self._check_component(dst_name)
        self._unshare_forks()
        self._vop("rename")
        vp = self.lookup(src_dvp, src_name)
        if vp.is_dir and self._in_subtree(vp, dst_dvp):
            # Moving a directory into itself/its own subtree would orphan
            # a cycle; the real kernel refuses with EINVAL.
            raise SysError(errno_.EINVAL, "rename would move a directory into itself")
        if self.exists(dst_dvp, dst_name):
            existing = self.lookup(dst_dvp, dst_name)
            if existing is vp:
                return vp
            if existing.is_dir:
                raise SysError(errno_.EISDIR, f"rename target {dst_name!r} is a directory")
            self.unlink(dst_dvp, dst_name)
        if dst_dvp.nlink <= 0:
            raise SysError(errno_.ENOENT, "target directory has been removed")
        assert src_dvp.entries is not None and dst_dvp.entries is not None
        del src_dvp.entries[src_name]
        dst_dvp.entries[dst_name] = vp
        vp.nc_parent = dst_dvp
        vp.nc_name = dst_name
        self._generation += 1
        return vp

    @staticmethod
    def _in_subtree(root: Vnode, candidate: Vnode) -> bool:
        """Is ``candidate`` inside (or equal to) the tree rooted at ``root``?

        Walks the candidate's ``nc_parent`` ancestors — O(depth), not the
        old O(tree) scan from ``root``.  For directories the backpointer
        is authoritative: it is set at create, refreshed by every lookup,
        rewritten by rename, and cleared by unlink, and a directory has
        exactly one parent.
        """
        node: Vnode | None = candidate
        seen: set[int] = set()
        while node is not None:
            if node is root:
                return True
            if node.vid in seen:
                return False
            seen.add(node.vid)
            node = node.nc_parent
        return False

    # -- the name cache / `path` -----------------------------------------------

    def path_of(self, vp: Vnode) -> str:
        """Reconstruct an accessible path for ``vp`` from the name cache.

        Raises ``ENOENT`` when the chain is broken (e.g. the file was
        unlinked), matching the paper's note that "if the path system call
        fails, SHILL uses the last known path at which the file was
        accessible" — that fallback lives in the capability layer.
        """
        if vp is self.root:
            return "/"
        parts: list[str] = []
        node = vp
        seen: set[int] = set()
        while node is not self.root:
            if node.vid in seen or node.nc_parent is None or node.nc_name is None:
                raise SysError(errno_.ENOENT, "name cache cannot resolve a path")
            # Verify the cached entry is still live.
            parent = node.nc_parent
            if not parent.is_dir or parent.entries is None or parent.entries.get(node.nc_name) is not node:
                raise SysError(errno_.ENOENT, "stale name cache entry")
            seen.add(node.vid)
            parts.append(node.nc_name)
            node = parent
        return "/" + "/".join(reversed(parts))

    # -- attributes --------------------------------------------------------------

    def set_meta(self, vp: Vnode, *, mode: int | None = None,
                 uid: int | None = None, gid: int | None = None,
                 mtime: int | None = None) -> None:
        """Change DAC attributes.  All metadata mutation funnels through
        here so the generation counter (which backs "world unmodified
        since boot" checks) never misses a change."""
        self._unshare_forks()
        self._vop("setattr")
        if mode is not None:
            vp.mode = mode
        if uid is not None:
            vp.uid = uid
        if gid is not None:
            vp.gid = gid
        if mtime is not None:
            vp.mtime = mtime
        self._generation += 1

    # -- data I/O ----------------------------------------------------------------

    def read_file(self, vp: Vnode, offset: int, size: int) -> bytes:
        self._vop("read")
        if not vp.is_reg:
            raise SysError(errno_.EINVAL, "read from non-regular file")
        assert vp.data is not None
        if offset < 0:
            raise SysError(errno_.EINVAL, "negative offset")
        return bytes(vp.data[offset : offset + size])

    def write_file(self, vp: Vnode, offset: int, data: bytes) -> int:
        self._unshare_forks()
        self._vop("write")
        if not vp.is_reg:
            raise SysError(errno_.EINVAL, "write to non-regular file")
        assert vp.data is not None
        if offset < 0:
            raise SysError(errno_.EINVAL, "negative offset")
        buf = vp.writable_data()
        end = offset + len(data)
        if len(buf) < offset:
            buf.extend(b"\x00" * (offset - len(buf)))
        buf[offset:end] = data
        self._generation += 1
        return len(data)

    def truncate_file(self, vp: Vnode, length: int) -> None:
        self._unshare_forks()
        self._vop("truncate")
        if not vp.is_reg:
            raise SysError(errno_.EINVAL, "truncate non-regular file")
        assert vp.data is not None
        if length < 0:
            raise SysError(errno_.EINVAL, "negative length")
        buf = vp.writable_data()
        if length <= len(buf):
            del buf[length:]
        else:
            buf.extend(b"\x00" * (length - len(buf)))
        self._generation += 1

    # -- forking -----------------------------------------------------------------

    def fork(self) -> "VFS":
        """An isolated copy of the tree in O(paths-accessed), not O(tree).

        Only the root is cloned eagerly.  Directory subtrees stay shared
        with this template: a cloned directory keeps a *copy of the
        entries dict whose values still reference template vnodes*, and
        the fork materializes a private clone of each vnode on first
        access (lookup, or structurally mutating ops).  Regular-file
        buffers additionally stay shared copy-on-write even after the
        vnode itself is materialized.  Hard links and the name cache are
        preserved through a vid-keyed memo; vids carry over, so fork
        behaviour stays byte-for-byte comparable with an eager clone.

        Isolation is bidirectional: fork-side access always materializes
        before any reference escapes, and a template-side mutation first
        forces every still-sharing fork to materialize its remaining
        shared subtrees (:meth:`_unshare_forks`).  The mutation
        generation carries over so "has this tree changed since boot"
        answers stay meaningful on forks.
        """
        clone = VFS.__new__(VFS)
        clone.stats = None
        clone._next_vid = self._next_vid
        clone._generation = self._generation
        clone._init_runtime_state()
        clone.dcache_enabled = self.dcache_enabled
        clone._lazy_floor = self._next_vid
        clone.root = clone._lazy_clone(self.root)
        clone.root.nc_name = "/"
        if len(self._lazy_children) > 32:
            self._lazy_children = [r for r in self._lazy_children if r() is not None]
        self._lazy_children.append(weakref.ref(clone))
        return clone

    def _lazy_clone(self, vp: Vnode) -> Vnode:
        """A private clone of template vnode ``vp``, its entries (if a
        directory) still referencing the template's children.

        Slot-by-slot copy via __new__ (skipping __init__ keeps it cheap
        and, deliberately, keeps the original vid: vids only need to be
        unique within one kernel).
        """
        new = Vnode.__new__(Vnode)
        new.vid = vp.vid
        new.vtype = vp.vtype
        new.mode = vp.mode
        new.uid = vp.uid
        new.gid = vp.gid
        new.flags = vp.flags
        new.nlink = vp.nlink
        new.linktarget = vp.linktarget
        new.device = vp.device
        new.program = vp.program
        new.needed = list(vp.needed) if vp.needed else []
        new.label = vp.label.clone()
        new.nc_parent = None
        new.nc_name = None
        new.mtime = vp.mtime
        if vp.data is not None:
            vp.data_shared = True
            new.data = vp.data
            new.data_shared = True
        else:
            new.data = None
            new.data_shared = False
        if vp.entries is not None:
            new.entries = dict(vp.entries)
            new.entries_lazy = bool(new.entries)
        else:
            new.entries = None
            new.entries_lazy = False
        self._lazy_memo[vp.vid] = new
        return new

    def _owns(self, vp: Vnode) -> bool:
        """Does ``vp`` belong to this tree (vs. the fork template)?"""
        return vp.vid >= self._lazy_floor or self._lazy_memo.get(vp.vid) is vp

    def _materialize_child(self, dvp: Vnode, name: str, child: Vnode) -> Vnode:
        """Replace ``dvp``'s (this tree's directory) entry ``name`` with a
        private clone of the template vnode ``child``, memoized by vid so
        hard links converge on one clone."""
        if self._owns(child):
            return child
        new = self._lazy_memo.get(child.vid)
        if new is None:
            new = self._lazy_clone(child)
        # Preserve the template's name-cache backpointer the way an eager
        # fork would — but never clobber a fresher fork-side refresh.
        if (new.nc_parent is None and child.nc_parent is not None
                and child.nc_name == name and child.nc_parent.vid == dvp.vid):
            new.nc_parent = dvp
            new.nc_name = name
        assert dvp.entries is not None
        dvp.entries[name] = new
        return new

    def _materialize_all(self) -> None:
        """Complete the lazy fork: clone every still-shared subtree.

        Called before this tree is serialized (a pickle must never reach
        into the template's graph) and when the template mutates while
        this fork is live."""
        stack = [self.root]
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if node.vid in seen or node.entries is None:
                continue
            seen.add(node.vid)
            if node.entries_lazy:
                for name in list(node.entries):
                    self._materialize_child(node, name, node.entries[name])
                node.entries_lazy = False
            stack.extend(child for child in node.entries.values() if child.is_dir)
        self._lazy_memo = {}
        self._lazy_floor = 0

    def _unshare_forks(self) -> None:
        """Force every live fork still sharing subtrees with this tree to
        materialize *before* a mutation here lands (fork isolation is a
        contract; laziness must not be observable)."""
        if not self._lazy_children:
            return
        children, self._lazy_children = self._lazy_children, []
        for ref in children:
            fork = ref()
            if fork is not None:
                fork._materialize_all()

    # -- serialization ------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Snapshot state: the tree plus the vid/generation watermarks.

        Shared subtrees are materialized first — pickling a graph that
        reaches template-owned vnodes (via entries or nc backpointers)
        would drag the whole template in.  Runtime-only state (dcache
        contents, lazy-fork bookkeeping, the stats sink) is excluded so
        equal trees produce equal snapshot bytes regardless of cache
        history; the Kernel re-wires ``stats`` on restore."""
        self._materialize_all()
        return {
            "next_vid": self._next_vid,
            "root": self.root,
            "generation": self._generation,
            "dcache_enabled": self.dcache_enabled,
        }

    def __setstate__(self, state: dict) -> None:
        self._next_vid = state["next_vid"]
        self.root = state["root"]
        self._generation = state["generation"]
        self.stats = None
        self._init_runtime_state()
        self.dcache_enabled = state.get("dcache_enabled", True)

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _check_component(name: str) -> None:
        if not name:
            raise SysError(errno_.EINVAL, "empty name component")
        if "/" in name:
            raise SysError(errno_.EINVAL, f"component {name!r} contains '/'")
        if len(name) > NAME_MAX:
            raise SysError(errno_.ENAMETOOLONG, name[:32] + "...")
