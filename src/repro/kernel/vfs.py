"""The virtual filesystem: vnodes, directory entries, and the name cache.

This is the substrate the SHILL sandbox protects.  It is an in-memory
tree of :class:`Vnode` objects mirroring the parts of FreeBSD's VFS that
SHILL's paper depends on:

* vnodes carry type, DAC attributes, and a MAC **label** slot where the
  framework stores per-policy state (SHILL stores privilege maps there);
* directories map names to child vnodes, and support hard links (regular
  files may appear under several names);
* a **name cache** remembers the last (parent, name) under which each
  vnode was reached, backing the paper's new ``path`` system call ("attempts
  to retrieve an accessible path for a file descriptor from the
  filesystem's lookup cache", section 3.1.3);
* executables are vnodes tagged with a registered program name plus the
  list of ``NEEDED`` shared libraries, which the loader opens at exec time
  (so sandboxes must be granted library capabilities, as in the paper's
  ``cat`` example that needs eight extra capabilities).

Path *resolution* (walking components, symlinks, MAC lookup hooks) lives
in :mod:`repro.kernel.syscalls`; this module only provides the mechanical
tree operations and raises :class:`SysError` for structural errors.

The tree supports **O(changed-state) forking** (:meth:`VFS.fork`): a fork
clones the vnode graph (preserving hard links and the name cache) but
shares each regular file's byte buffer copy-on-write — the buffer is only
duplicated when either side first mutates it, so forking a booted world
costs a tree walk, not a data copy.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Optional

from repro.errors import SysError
from repro.kernel import errno_

if TYPE_CHECKING:
    from repro.kernel.devices import CharDevice

NAME_MAX = 255


class VType(enum.Enum):
    """Vnode types (a subset of FreeBSD's ``vtype``)."""

    VREG = "regular"
    VDIR = "directory"
    VLNK = "symlink"
    VCHR = "chardev"
    VFIFO = "fifo"
    VSOCK = "socket"


class Label:
    """A MAC label: per-policy storage attached to a kernel object.

    The MAC framework provides "a policy-agnostic mechanism for attaching
    security labels to kernel objects" (section 3.2).  Policies index into
    the label by their registered name; SHILL stores its privilege map
    under ``"shill"``.
    """

    __slots__ = ("_slots",)

    def __init__(self) -> None:
        self._slots: dict[str, object] = {}

    def get(self, policy: str) -> object | None:
        return self._slots.get(policy)

    def set(self, policy: str, value: object) -> None:
        self._slots[policy] = value

    def clear(self, policy: str) -> None:
        self._slots.pop(policy, None)

    def clone(self) -> "Label":
        """Per-policy state is cloned when it knows how (privilege maps
        define ``clone``); immutable state is shared."""
        new = Label()
        for policy, value in self._slots.items():
            clone = getattr(value, "clone", None)
            new._slots[policy] = clone() if callable(clone) else value
        return new


# Fallback allocator for vnodes constructed outside any VFS tree (the
# runtime's per-session device vnodes, test scaffolding).  It starts far
# above any per-tree vid so the two ranges can never collide inside one
# kernel.
_vid_counter = itertools.count(1 << 32)


class Vnode:
    """A single filesystem object.

    Regular files store bytes in ``data``; directories store a name→vnode
    map in ``entries``; symlinks store their target path in ``linktarget``;
    character devices reference a :class:`~repro.kernel.devices.CharDevice`.
    Executable regular files additionally carry ``program`` (the registered
    simulated-binary name) and ``needed`` (shared-library basenames reported
    by ``ldd``).
    """

    __slots__ = (
        "vid",
        "vtype",
        "mode",
        "uid",
        "gid",
        "flags",
        "nlink",
        "data",
        "entries",
        "linktarget",
        "device",
        "program",
        "needed",
        "label",
        "nc_parent",
        "nc_name",
        "mtime",
        "data_shared",
    )

    def __init__(
        self,
        vtype: VType,
        mode: int,
        uid: int,
        gid: int,
    ) -> None:
        self.vid: int = next(_vid_counter)
        self.vtype = vtype
        self.mode = mode
        self.uid = uid
        self.gid = gid
        self.flags = 0
        self.nlink = 1
        self.data = bytearray() if vtype is VType.VREG else None
        self.entries: dict[str, Vnode] | None = {} if vtype is VType.VDIR else None
        self.linktarget: str | None = None
        self.device: Optional["CharDevice"] = None
        self.program: str | None = None
        self.needed: list[str] = []
        self.label = Label()
        # Name-cache backpointer: last (parent vnode, name) this vnode was
        # reachable at.  Supports the `path` syscall; invalidated on unlink.
        self.nc_parent: Vnode | None = None
        self.nc_name: str | None = None
        self.mtime: int = 0
        # Copy-on-write marker: True while ``data`` is a buffer shared
        # with a forked (or template) vnode.  Mutators must go through
        # ``writable_data()``, which unshares first.
        self.data_shared: bool = False

    def __getstate__(self) -> dict:
        """Snapshot state (:mod:`repro.kernel.serialize`): every slot, in
        declaration order.  Cycles (entries ↔ nc_parent) are safe — the
        pickle memo registers the vnode before its state is traversed —
        and hard links stay shared the same way.  ``data_shared`` crosses
        verbatim: a buffer shared with a *template* serializes as this
        side's private copy, and the first write after restore unshares
        exactly as it would have before."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for name in self.__slots__:
            setattr(self, name, state[name])

    def writable_data(self) -> bytearray:
        """The file's byte buffer, for mutation: unshares a copy-on-write
        buffer first so forks never observe each other's writes."""
        assert self.data is not None
        if self.data_shared:
            self.data = bytearray(self.data)
            self.data_shared = False
        return self.data

    # -- convenience predicates -------------------------------------------------

    @property
    def is_dir(self) -> bool:
        return self.vtype is VType.VDIR

    @property
    def is_reg(self) -> bool:
        return self.vtype is VType.VREG

    @property
    def is_symlink(self) -> bool:
        return self.vtype is VType.VLNK

    @property
    def is_chardev(self) -> bool:
        return self.vtype is VType.VCHR

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Vnode {self.vid} {self.vtype.value} {self.nc_name or '?'}>"


class VFS:
    """The filesystem tree and its mechanical operations.

    All methods operate on already-resolved directory vnodes with a single
    name component — multi-component resolution, symlink following, and
    security checks are the syscall layer's job.  This split mirrors the
    kernel, where ``namei`` drives per-component VOP_LOOKUPs.
    """

    def __init__(self) -> None:
        # Tree vids are allocated per-VFS (and the watermark crosses
        # fork()), so two forks performing identical operations assign
        # identical vids — vids leak into observable output (Stat.vid,
        # audit fallbacks), and "parallel equals sequential" needs them
        # reproducible.
        self._next_vid = 1
        self.root = Vnode(VType.VDIR, 0o755, 0, 0)
        self.root.vid = self._alloc_vid()
        self.root.nc_name = "/"
        self._generation = 0
        # Optional stats sink (set by the Kernel): an object with a
        # ``count_vnode_op(name)`` method.  Deterministic op counts back
        # the benchmark harness's noise-free shape assertions.
        self.stats = None

    def _alloc_vid(self) -> int:
        vid = self._next_vid
        self._next_vid += 1
        return vid

    @property
    def generation(self) -> int:
        """Monotonic mutation counter: bumps on every structural or data
        change.  Equal generations ⇒ the tree has not been modified."""
        return self._generation

    def _vop(self, name: str) -> None:
        if self.stats is not None:
            self.stats.count_vnode_op(name)

    # -- lookup -----------------------------------------------------------------

    def lookup(self, dvp: Vnode, name: str) -> Vnode:
        """Look up ``name`` in directory ``dvp``. Handles ``.`` and ``..``.

        ``..`` is resolved through the name cache backpointer, as the real
        kernel resolves it through the directory entry; at the root, ``..``
        is the root itself.
        """
        self._check_component(name)
        self._vop("lookup")
        if not dvp.is_dir:
            raise SysError(errno_.ENOTDIR, f"lookup {name!r} in non-directory")
        if name == ".":
            return dvp
        if name == "..":
            return dvp.nc_parent if dvp.nc_parent is not None else self.root
        assert dvp.entries is not None
        try:
            vp = dvp.entries[name]
        except KeyError:
            raise SysError(errno_.ENOENT, f"no entry {name!r}") from None
        # Refresh the name cache on every successful lookup.
        vp.nc_parent = dvp
        vp.nc_name = name
        return vp

    def exists(self, dvp: Vnode, name: str) -> bool:
        return bool(dvp.is_dir and dvp.entries is not None and name in dvp.entries)

    def contents(self, dvp: Vnode) -> list[str]:
        if not dvp.is_dir:
            raise SysError(errno_.ENOTDIR, "contents of non-directory")
        assert dvp.entries is not None
        return sorted(dvp.entries)

    # -- creation ---------------------------------------------------------------

    def create(self, dvp: Vnode, name: str, vtype: VType, mode: int, uid: int, gid: int) -> Vnode:
        """Create a new vnode of ``vtype`` named ``name`` inside ``dvp``."""
        self._check_component(name)
        self._vop("create")
        if name in (".", ".."):
            raise SysError(errno_.EEXIST, name)
        if not dvp.is_dir:
            raise SysError(errno_.ENOTDIR, "create in non-directory")
        if dvp.nlink <= 0:
            raise SysError(errno_.ENOENT, "directory has been removed")
        assert dvp.entries is not None
        if name in dvp.entries:
            raise SysError(errno_.EEXIST, f"entry {name!r} exists")
        vp = Vnode(vtype, mode, uid, gid)
        vp.vid = self._alloc_vid()
        dvp.entries[name] = vp
        vp.nc_parent = dvp
        vp.nc_name = name
        self._generation += 1
        return vp

    def symlink(self, dvp: Vnode, name: str, target: str, uid: int, gid: int) -> Vnode:
        vp = self.create(dvp, name, VType.VLNK, 0o777, uid, gid)
        vp.linktarget = target
        return vp

    # -- link / unlink / rename ---------------------------------------------------

    def link(self, file_vp: Vnode, dvp: Vnode, name: str) -> None:
        """Install a hard link to ``file_vp`` at ``dvp``/``name``.

        This is the mechanism behind the paper's ``flinkat`` system call,
        which "installs a link to a file in a directory given file
        descriptors for both the file and the directory" — no path ever
        designates the source, so there is no TOCTTOU window.
        """
        self._check_component(name)
        self._vop("link")
        if file_vp.is_dir:
            raise SysError(errno_.EPERM, "hard link to directory")
        if not dvp.is_dir:
            raise SysError(errno_.ENOTDIR, "link target not a directory")
        if dvp.nlink <= 0:
            raise SysError(errno_.ENOENT, "directory has been removed")
        assert dvp.entries is not None
        if name in dvp.entries:
            raise SysError(errno_.EEXIST, f"entry {name!r} exists")
        dvp.entries[name] = file_vp
        file_vp.nlink += 1
        self._generation += 1

    def unlink(self, dvp: Vnode, name: str, expect: Vnode | None = None) -> Vnode:
        """Remove entry ``name`` from ``dvp``; returns the unlinked vnode.

        With ``expect`` set this is ``funlinkat``: the entry is removed only
        if it still refers to that exact vnode, otherwise ``EDEADLK`` — the
        fd-based race-free unlink from section 3.1.3.
        """
        self._check_component(name)
        self._vop("unlink")
        if name in (".", ".."):
            raise SysError(errno_.EINVAL, name)
        if not dvp.is_dir:
            raise SysError(errno_.ENOTDIR, "unlink in non-directory")
        assert dvp.entries is not None
        try:
            vp = dvp.entries[name]
        except KeyError:
            raise SysError(errno_.ENOENT, f"no entry {name!r}") from None
        if expect is not None and vp is not expect:
            raise SysError(errno_.EDEADLK, f"entry {name!r} no longer refers to the expected file")
        if vp.is_dir:
            assert vp.entries is not None
            if vp.entries:
                raise SysError(errno_.ENOTEMPTY, f"directory {name!r} not empty")
        del dvp.entries[name]
        vp.nlink -= 1
        if vp.nc_parent is dvp and vp.nc_name == name:
            vp.nc_parent = None
            vp.nc_name = None
        self._generation += 1
        return vp

    def rename(self, src_dvp: Vnode, src_name: str, dst_dvp: Vnode, dst_name: str) -> Vnode:
        """Move ``src_dvp``/``src_name`` to ``dst_dvp``/``dst_name``."""
        self._check_component(src_name)
        self._check_component(dst_name)
        self._vop("rename")
        vp = self.lookup(src_dvp, src_name)
        if vp.is_dir and self._in_subtree(vp, dst_dvp):
            # Moving a directory into itself/its own subtree would orphan
            # a cycle; the real kernel refuses with EINVAL.
            raise SysError(errno_.EINVAL, "rename would move a directory into itself")
        if self.exists(dst_dvp, dst_name):
            existing = self.lookup(dst_dvp, dst_name)
            if existing is vp:
                return vp
            if existing.is_dir:
                raise SysError(errno_.EISDIR, f"rename target {dst_name!r} is a directory")
            self.unlink(dst_dvp, dst_name)
        if dst_dvp.nlink <= 0:
            raise SysError(errno_.ENOENT, "target directory has been removed")
        assert src_dvp.entries is not None and dst_dvp.entries is not None
        del src_dvp.entries[src_name]
        dst_dvp.entries[dst_name] = vp
        vp.nc_parent = dst_dvp
        vp.nc_name = dst_name
        self._generation += 1
        return vp

    @staticmethod
    def _in_subtree(root: Vnode, candidate: Vnode) -> bool:
        """Is ``candidate`` inside (or equal to) the tree rooted at ``root``?"""
        stack = [root]
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if node is candidate:
                return True
            if node.vid in seen or node.entries is None:
                continue
            seen.add(node.vid)
            stack.extend(child for child in node.entries.values() if child.is_dir)
        return False

    # -- the name cache / `path` -----------------------------------------------

    def path_of(self, vp: Vnode) -> str:
        """Reconstruct an accessible path for ``vp`` from the name cache.

        Raises ``ENOENT`` when the chain is broken (e.g. the file was
        unlinked), matching the paper's note that "if the path system call
        fails, SHILL uses the last known path at which the file was
        accessible" — that fallback lives in the capability layer.
        """
        if vp is self.root:
            return "/"
        parts: list[str] = []
        node = vp
        seen: set[int] = set()
        while node is not self.root:
            if node.vid in seen or node.nc_parent is None or node.nc_name is None:
                raise SysError(errno_.ENOENT, "name cache cannot resolve a path")
            # Verify the cached entry is still live.
            parent = node.nc_parent
            if not parent.is_dir or parent.entries is None or parent.entries.get(node.nc_name) is not node:
                raise SysError(errno_.ENOENT, "stale name cache entry")
            seen.add(node.vid)
            parts.append(node.nc_name)
            node = parent
        return "/" + "/".join(reversed(parts))

    # -- attributes --------------------------------------------------------------

    def set_meta(self, vp: Vnode, *, mode: int | None = None,
                 uid: int | None = None, gid: int | None = None,
                 mtime: int | None = None) -> None:
        """Change DAC attributes.  All metadata mutation funnels through
        here so the generation counter (which backs "world unmodified
        since boot" checks) never misses a change."""
        self._vop("setattr")
        if mode is not None:
            vp.mode = mode
        if uid is not None:
            vp.uid = uid
        if gid is not None:
            vp.gid = gid
        if mtime is not None:
            vp.mtime = mtime
        self._generation += 1

    # -- data I/O ----------------------------------------------------------------

    def read_file(self, vp: Vnode, offset: int, size: int) -> bytes:
        self._vop("read")
        if not vp.is_reg:
            raise SysError(errno_.EINVAL, "read from non-regular file")
        assert vp.data is not None
        if offset < 0:
            raise SysError(errno_.EINVAL, "negative offset")
        return bytes(vp.data[offset : offset + size])

    def write_file(self, vp: Vnode, offset: int, data: bytes) -> int:
        self._vop("write")
        if not vp.is_reg:
            raise SysError(errno_.EINVAL, "write to non-regular file")
        assert vp.data is not None
        if offset < 0:
            raise SysError(errno_.EINVAL, "negative offset")
        buf = vp.writable_data()
        end = offset + len(data)
        if len(buf) < offset:
            buf.extend(b"\x00" * (offset - len(buf)))
        buf[offset:end] = data
        self._generation += 1
        return len(data)

    def truncate_file(self, vp: Vnode, length: int) -> None:
        self._vop("truncate")
        if not vp.is_reg:
            raise SysError(errno_.EINVAL, "truncate non-regular file")
        assert vp.data is not None
        if length < 0:
            raise SysError(errno_.EINVAL, "negative length")
        buf = vp.writable_data()
        if length <= len(buf):
            del buf[length:]
        else:
            buf.extend(b"\x00" * (length - len(buf)))
        self._generation += 1

    # -- forking -----------------------------------------------------------------

    def fork(self) -> "VFS":
        """An isolated copy of the tree in O(changed-state).

        Every vnode is cloned (hard links and the name cache are
        preserved through a vid-keyed memo); regular-file buffers are
        shared copy-on-write; character devices in the base image are
        stateless and shared.  The mutation generation carries over so
        "has this tree changed since boot" answers stay meaningful on
        forks.
        """
        clone = VFS.__new__(VFS)
        clone.stats = None
        clone._next_vid = self._next_vid
        memo: dict[int, Vnode] = {}
        clone.root = self._fork_node(self.root, memo)
        clone.root.nc_name = "/"
        clone._generation = self._generation
        return clone

    def _fork_node(self, vp: Vnode, memo: dict[int, Vnode]) -> Vnode:
        cached = memo.get(vp.vid)
        if cached is not None:
            return cached
        # Slot-by-slot copy via __new__ (skipping __init__ keeps the fork
        # cheap and, deliberately, keeps the original vid: vids only need
        # to be unique within one kernel, and identical ids keep fork
        # behaviour byte-for-byte comparable with the template's).
        new = Vnode.__new__(Vnode)
        new.vid = vp.vid
        new.vtype = vp.vtype
        new.mode = vp.mode
        new.uid = vp.uid
        new.gid = vp.gid
        new.flags = vp.flags
        new.nlink = vp.nlink
        new.entries = None
        new.linktarget = vp.linktarget
        new.device = vp.device
        new.program = vp.program
        new.needed = list(vp.needed) if vp.needed else []
        new.label = vp.label.clone()
        new.nc_parent = None
        new.nc_name = None
        new.mtime = vp.mtime
        if vp.data is not None:
            vp.data_shared = True
            new.data = vp.data
            new.data_shared = True
        else:
            new.data = None
            new.data_shared = False
        memo[vp.vid] = new
        if vp.entries is not None:
            new.entries = {}
            for name, child in vp.entries.items():
                child_clone = self._fork_node(child, memo)
                new.entries[name] = child_clone
                if child.nc_parent is vp and child.nc_name == name:
                    child_clone.nc_parent = new
                    child_clone.nc_name = name
        return new

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _check_component(name: str) -> None:
        if not name:
            raise SysError(errno_.EINVAL, "empty name component")
        if "/" in name:
            raise SysError(errno_.EINVAL, f"component {name!r} contains '/'")
        if len(name) > NAME_MAX:
            raise SysError(errno_.ENAMETOOLONG, name[:32] + "...")
