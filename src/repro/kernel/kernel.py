"""The Kernel façade: wires VFS, MAC, processes, network, and programs.

A :class:`Kernel` is one booted machine.  Tests and benchmarks construct
fresh kernels; the world-image builder (:mod:`repro.world.image`)
populates the filesystem and registers users and simulated binaries.

Program execution follows the dynamic-linking story that makes the
paper's *wallets* necessary: an executable vnode names a registered
:class:`~repro.programs.base.Program` and lists ``NEEDED`` shared
libraries; at exec time the loader opens the runtime linker and every
needed library **through ordinary path resolution in the executing
process's context**.  Inside a sandbox those opens are subject to the
session's privileges — which is exactly why "executing cat in a sandbox
requires providing eight capabilities to libraries and configuration
files in addition to capabilities for the executable itself" (§2.4.1).
"""

from __future__ import annotations

import time
from collections import Counter
from typing import TYPE_CHECKING

from repro.errors import SysError
from repro.kernel import errno_
from repro.kernel.cred import Credential, UserDB
from repro.kernel.ipc import IpcRegistry
from repro.kernel.kenv import KernelEnv, KldManager
from repro.kernel.mac import MacFramework
from repro.kernel.proc import Process, ProcessTable
from repro.kernel.sockets import Network
from repro.kernel.syscalls import O_RDONLY, SyscallInterface
from repro.kernel.sysctl import SysctlTree
from repro.kernel.vfs import VFS, Vnode

if TYPE_CHECKING:
    from repro.policy.engine import PolicyEngine
    from repro.programs.base import Program
    from repro.sandbox.policy import ShillPolicy

RTLD_PATH = "/libexec/ld-elf.so.1"
DEFAULT_LIB_PATH = "/lib:/usr/lib:/usr/local/lib"
DEFAULT_ENV = {
    "PATH": "/bin:/usr/bin:/usr/local/bin",
    "LD_LIBRARY_PATH": DEFAULT_LIB_PATH,
}


class KernelStats:
    """Cheap deterministic counters used by the benchmark harness.

    Wall-clock timings are noisy under load; these counters are exact and
    reproducible, so shape assertions ("installed ≈ baseline", "the SHILL
    Find creates a sandbox per file") gate on them instead.  The batch
    runner surfaces per-run deltas as ``RunResult.ops``.
    """

    def __init__(self) -> None:
        self.syscalls: Counter[str] = Counter()
        self.vnode_ops: Counter[str] = Counter()
        self.mac_checks = 0
        self.mac_denials = 0
        self.sandboxes_created = 0
        self.execs = 0
        self.dcache_hits = 0
        self.dcache_misses = 0
        # Per-hook-name MAC attribution (check_* and post_* alike), for
        # `repro bench profile`.  mac_checks/mac_denials stay the gated
        # aggregates; this counter only feeds traces.
        self.mac_hooks: Counter[str] = Counter()

    def count_syscall(self, name: str) -> None:
        self.syscalls[name] += 1

    def count_vnode_op(self, name: str) -> None:
        self.vnode_ops[name] += 1

    @property
    def total_syscalls(self) -> int:
        return sum(self.syscalls.values())

    @property
    def total_vnode_ops(self) -> int:
        return sum(self.vnode_ops.values())

    def snapshot(self) -> dict[str, int]:
        return {
            "total_syscalls": self.total_syscalls,
            "vnode_ops": self.total_vnode_ops,
            "mac_checks": self.mac_checks,
            "mac_denials": self.mac_denials,
            "sandboxes_created": self.sandboxes_created,
            "execs": self.execs,
            "dcache_hits": self.dcache_hits,
            "dcache_misses": self.dcache_misses,
        }

    @staticmethod
    def delta(before: dict[str, int], after: dict[str, int]) -> dict[str, int]:
        """Per-run op counts between two :meth:`snapshot` calls."""
        return {key: after[key] - before.get(key, 0) for key in after}

    def trace(self) -> dict[str, dict[str, int]]:
        """Per-operation-name counters — finer than :meth:`snapshot`'s
        aggregates, for assertions that two runs did *exactly* the same
        operations, not merely the same number of them."""
        return {
            "syscalls": dict(self.syscalls),
            "vnode_ops": dict(self.vnode_ops),
            "mac_hooks": dict(self.mac_hooks),
        }

    @staticmethod
    def trace_delta(before: dict[str, dict[str, int]],
                    after: dict[str, dict[str, int]]) -> dict[str, dict[str, int]]:
        """Per-name deltas between two :meth:`trace` calls (zero rows
        dropped, so equal traces compare equal structurally)."""
        out: dict[str, dict[str, int]] = {}
        for group, names in after.items():
            base = before.get(group, {})
            out[group] = {name: count - base.get(name, 0)
                          for name, count in names.items()
                          if count - base.get(name, 0)}
        return out

    def clone(self) -> "KernelStats":
        new = KernelStats()
        new.syscalls = Counter(self.syscalls)
        new.vnode_ops = Counter(self.vnode_ops)
        new.mac_checks = self.mac_checks
        new.mac_denials = self.mac_denials
        new.sandboxes_created = self.sandboxes_created
        new.execs = self.execs
        new.dcache_hits = self.dcache_hits
        new.dcache_misses = self.dcache_misses
        new.mac_hooks = Counter(self.mac_hooks)
        return new


class Kernel:
    """One booted simulated machine."""

    # Backing store for the interpose_devices property.  Class defaults,
    # because the getter (and the setter's comparison) must work before
    # any setter call — __init__ never assigns these, and fork() writes
    # the instance attributes directly.
    _interpose_devices = False
    _epoch = 0

    def __init__(self) -> None:
        self.vfs = VFS()
        self.mac = MacFramework()
        self.procs = ProcessTable()
        self.network = Network()
        self.users = UserDB()
        self.sysctl = SysctlTree(self.mac)
        self.ipc = IpcRegistry(self.mac)
        self.kenv = KernelEnv(self.mac)
        self.kld = KldManager(self.mac)
        self.programs: dict[str, "Program"] = {}
        self.stats = KernelStats()
        self.mac.stats = self.stats
        self.vfs.stats = self.stats
        self.boot_time = time.monotonic()
        # Resolved-path dcache (runtime-only: never pickled, never forked).
        # Keyed/validated by SyscallInterface._resolve; stored here because
        # syscall interfaces are constructed per call.
        self._resolve_cache: dict = {}
        self._resolve_stamp: tuple | None = None
        # Touched-path recording (runtime-only, like the dcache): every
        # successful final-op MAC check appends ("read"/"write"/"execute",
        # path).  Sessions slice it into RunResult.touched; the dependency
        # analyzer (repro.analysis.deps) gates static footprints against it.
        self._touched: list = []

    @property
    def interpose_devices(self) -> bool:
        """Extension (off by default, reproducing the paper's §3.2.3
        limitation): when True, the MAC framework gains entry points
        around character-device read/write, closing the stdio bypass.
        Toggling it is a configuration change and advances the state
        epoch."""
        return self._interpose_devices

    @interpose_devices.setter
    def interpose_devices(self, value: bool) -> None:
        if value != self._interpose_devices:
            self._interpose_devices = value
            self._epoch += 1

    @property
    def state_epoch(self) -> int:
        """Monotonic counter over the machine's non-VFS configuration:
        users, sysctl, kenv, IPC objects, registered network
        services/hooks, the MAC policy set, and device interposition.
        Together with ``vfs.generation`` this answers "has this machine
        changed since?" — the world layer's pristine check (and thus the
        batch result cache's eligibility test) compares both.

        The pid and SHILL-sid watermarks are included: audit lines embed
        sids (and can embed pids), so watermark drift changes what an
        identical future run observes even though no object mutated."""
        shill = self.mac.find("shill")
        last_sid = shill.sessions.last_sid if shill is not None else 0
        return (self.users.mutations + self.sysctl.mutations
                + self.kenv.mutations + self.ipc.mutations
                + self.network.mutations + self.mac.mutations
                + self.procs.allocated + last_sid
                + self._epoch)

    # ------------------------------------------------------------------
    # forking
    # ------------------------------------------------------------------

    def fork(self) -> "Kernel":
        """An isolated copy of this machine in O(changed-state).

        The vnode tree is cloned with copy-on-write file buffers; users,
        sysctl/kenv/IPC state, registered network services, program
        registry, op-count stats, and every loaded MAC policy (via
        :meth:`~repro.kernel.mac.MacPolicy.fork_for`, so the SHILL
        module's audit history carries over too) are preserved.  Per-run
        state — live processes, open sockets, live sandbox sessions —
        is not: execution is synchronous, so forks are taken between
        runs, when none of it is load-bearing.  Allocation watermarks
        (pid counter, session sid) and all mutation counters carry over,
        so a fork is epoch-identical to the machine it was forked from.
        """
        new = Kernel.__new__(Kernel)
        new.vfs = self.vfs.fork()
        new.mac = MacFramework()
        new.procs = self.procs.clone_empty()
        new.network = self.network.fork()
        new.users = self.users.clone()
        new.sysctl = self.sysctl.fork(new.mac)
        new.ipc = self.ipc.fork(new.mac)
        new.kenv = self.kenv.fork(new.mac)
        new.kld = KldManager(new.mac)
        # Programs are stateless callables operating through the syscall
        # interface; the registry dict is copied, the instances shared.
        new.programs = dict(self.programs)
        new.stats = self.stats.clone()
        new.mac.stats = new.stats
        new.vfs.stats = new.stats
        new._interpose_devices = self._interpose_devices
        new._epoch = self._epoch
        new.boot_time = time.monotonic()
        new._resolve_cache = {}
        new._resolve_stamp = None
        new._touched = []
        # Every loaded policy crosses the fork, in registration order
        # (restrictive composition is order-sensitive for audit output).
        for policy in self.mac.policies:
            new.mac.register(policy.fork_for(new))
        new.mac.mutations = self.mac.mutations
        # Carry the label epoch too: a fork is epoch-identical to its
        # template, and the dependency analyzer diffs the two epochs to
        # detect label mutations since the fork.
        new.mac.label_epoch = self.mac.label_epoch
        if self.mac.engine is not None:
            new.mac.engine = self.mac.engine.fork_for(new)
        return new

    # ------------------------------------------------------------------
    # snapshots (see repro.kernel.serialize for the codec contract)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Everything a fork would carry, in a fixed field order so equal
        machines produce equal snapshots.  Per-run state is excluded by
        the subsystems' own hooks (ProcessTable keeps only the pid
        watermark, Network drops listeners/hooks, the SHILL session
        manager keeps audit history + sid watermark); ``boot_time`` is
        wall-clock and deliberately left out."""
        return {
            "vfs": self.vfs,
            "mac": self.mac,
            "procs": self.procs,
            "network": self.network,
            "users": self.users,
            "sysctl": self.sysctl,
            "ipc": self.ipc,
            "kenv": self.kenv,
            "kld": self.kld,
            "programs": self.programs,
            "stats": self.stats,
            "interpose_devices": self._interpose_devices,
            "epoch": self._epoch,
        }

    def __setstate__(self, state: dict) -> None:
        for field in ("vfs", "mac", "procs", "network", "users", "sysctl",
                      "ipc", "kenv", "kld", "programs", "stats"):
            setattr(self, field, state[field])
        self._interpose_devices = state["interpose_devices"]
        self._epoch = state["epoch"]
        # Re-wire the stats sinks: the pickle memo keeps them identical
        # to self.stats already, but the invariant is load-bearing (op
        # counters must keep working across the process boundary), so
        # restore re-asserts it rather than trusting graph structure.
        self.mac.stats = self.stats
        self.vfs.stats = self.stats
        self.boot_time = time.monotonic()
        self._resolve_cache = {}
        self._resolve_stamp = None
        self._touched = []

    # ------------------------------------------------------------------
    # policy management
    # ------------------------------------------------------------------

    def label_mutation(self, sid: int | None = None) -> None:
        """Record that a MAC label (or the privilege map stored in one)
        changed: bumps the label epoch so the resolved-path dcache drops
        cached walks, and forces lazy forks to materialize first — label
        objects on still-shared vnodes are shared with the template, so
        a mutation must not be observable across the fork boundary.

        ``sid`` attributes the mutation to the sandbox session whose
        action caused it (grants, auto-grants, propagation, teardown
        revocation), so audit consumers can tell *who* moved the label
        epoch; None means no session context (e.g. ambient chmod)."""
        self.mac.bump_label_epoch()
        self.mac.last_label_sid = sid
        self.vfs._unshare_forks()

    @property
    def policy_engine(self) -> "PolicyEngine | None":
        """The kernel-wide policy engine (see :mod:`repro.policy`), or
        None for pure SHILL capability semantics.  Lives on the MAC
        framework so it crosses forks and snapshots with the policy set."""
        return self.mac.engine

    @policy_engine.setter
    def policy_engine(self, engine: "PolicyEngine | None") -> None:
        if engine is self.mac.engine:
            return
        self.mac.engine = engine
        # An engine swap is a configuration change: future runs may be
        # judged differently, so the machine is no longer pristine.
        self._epoch += 1

    def install_shill_module(self) -> "ShillPolicy":
        """Load the SHILL kernel module (the MAC policy).  Idempotent."""
        from repro.sandbox.policy import ShillPolicy

        existing = self.mac.find("shill")
        if existing is not None:
            assert isinstance(existing, ShillPolicy)
            return existing
        policy = ShillPolicy(self)
        self.mac.register(policy)
        return policy

    def shill_policy(self) -> "ShillPolicy":
        policy = self.mac.find("shill")
        if policy is None:
            raise SysError(errno_.ENOSYS, "shill kernel module not loaded")
        from repro.sandbox.policy import ShillPolicy

        assert isinstance(policy, ShillPolicy)
        return policy

    @property
    def shill_installed(self) -> bool:
        return self.mac.find("shill") is not None

    # ------------------------------------------------------------------
    # processes and syscalls
    # ------------------------------------------------------------------

    def spawn_process(self, user: str | Credential = "root", cwd: str = "/") -> Process:
        cred = self.users.lookup(user) if isinstance(user, str) else user
        cwd_vp = self._resolve_boot_path(cwd)
        return self.procs.spawn(cred, cwd_vp)

    def syscalls(self, proc: Process) -> SyscallInterface:
        return SyscallInterface(self, proc)

    def _resolve_boot_path(self, path: str) -> Vnode:
        """Resolve a path with no subject (used only for kernel-side setup)."""
        node = self.vfs.root
        for comp in [p for p in path.split("/") if p]:
            node = self.vfs.lookup(node, comp)
        if not node.is_dir:
            raise SysError(errno_.ENOTDIR, path)
        return node

    # ------------------------------------------------------------------
    # program registry and exec
    # ------------------------------------------------------------------

    def register_program(self, program: "Program") -> None:
        if program.name in self.programs:
            raise ValueError(f"program {program.name!r} already registered")
        self.programs[program.name] = program

    def exec_file(
        self,
        proc: Process,
        vp: Vnode,
        argv: list[str],
        env: dict[str, str] | None = None,
    ) -> int:
        """Execute the program image ``vp`` in process ``proc`` and run it
        to completion; returns the exit status and reaps the process.

        Loader errors and uncaught syscall errors are reported on the
        process's stderr (fd 2) when present, mirroring how a shell user
        experiences them, and yield conventional statuses: 126 for "found
        but cannot execute / crashed", 127 for "missing program image".
        """
        sys = self.syscalls(proc)
        environ = dict(DEFAULT_ENV)
        if env:
            environ.update(env)
        self.stats.execs += 1
        try:
            self._exec_checks(sys, vp)
            self._hydrate_image(vp)
            vp, argv = self._maybe_shebang(sys, vp, list(argv))
            program = self.programs.get(vp.program or "")
            if program is None:
                raise SysError(errno_.ENOEXEC, "not a registered program image")
            self._load_dynamic(sys, vp, environ)
            proc.argv = list(argv)
            status = program.main(sys, list(argv), environ)
            proc.exit_status = int(status or 0)
        except SysError as err:
            self._report_exec_error(sys, argv, err)
            proc.exit_status = 127 if err.errno == errno_.ENOENT else 126
        finally:
            self.procs.reap(proc)
        return proc.exit_status

    def _exec_checks(self, sys: SyscallInterface, vp: Vnode) -> None:
        from repro.kernel.cred import X_OK, dac_check

        if not vp.is_reg:
            raise SysError(errno_.EACCES, "exec of non-file")
        if not dac_check(sys.proc.cred, mode=vp.mode, uid=vp.uid, gid=vp.gid, want=X_OK):
            raise SysError(errno_.EACCES, "dac: exec")
        self.mac.check("vnode_check_exec", sys.proc, vp)
        # exec bypasses SyscallInterface._mac, so record its touch here.
        try:
            self._touched.append(("execute", self.vfs.path_of(vp)))
        except SysError:
            self._touched.append(("execute", "<detached>"))

    def _hydrate_image(self, vp: Vnode) -> None:
        """Derive (program, needed) from a pseudo-ELF header in the file
        data when the vnode carries no metadata — this is how executables
        extracted from tarballs (e.g. emacs's configure) become runnable.
        """
        if vp.program or not vp.is_reg or not vp.data:
            return
        if not bytes(vp.data[:5]) == b"#!ELF":
            return
        from repro.programs.base import parse_elf

        program, needed = parse_elf(bytes(vp.data))
        vp.program = program
        vp.needed = needed

    def _maybe_shebang(
        self, sys: SyscallInterface, vp: Vnode, argv: list[str]
    ) -> tuple[Vnode, list[str]]:
        """Interpreter scripts: a ``#!/path`` first line re-invokes the
        interpreter with the script path prepended to argv.  The
        interpreter binary is resolved and checked *in the executing
        process's context*, so a sandbox needs it granted (wallets'
        PATH capabilities cover this)."""
        if vp.program or not vp.is_reg or not vp.data:
            return vp, argv
        data = bytes(vp.data[:64])
        if not data.startswith(b"#!") or data.startswith(b"#!ELF"):
            return vp, argv
        first_line = data.split(b"\n", 1)[0][2:].decode(errors="replace").strip()
        interp_path = first_line.split()[0] if first_line else ""
        if not interp_path:
            raise SysError(errno_.ENOEXEC, "empty shebang")
        try:
            script_path = self.vfs.path_of(vp)
        except SysError:
            script_path = argv[0] if argv else "?"
        _, _, ivp = sys._resolve(interp_path)
        if ivp is None:
            raise SysError(errno_.ENOENT, f"interpreter {interp_path!r}")
        self._exec_checks(sys, ivp)
        self._hydrate_image(ivp)
        return ivp, [interp_path, script_path] + argv[1:]

    def _load_dynamic(self, sys: SyscallInterface, vp: Vnode, env: dict[str, str]) -> None:
        """Simulate the runtime linker: open rtld and every NEEDED library
        via normal path resolution (MAC-mediated in the caller's session).
        """
        if not vp.needed:
            return  # static binary
        sys.close(sys.open(RTLD_PATH, O_RDONLY))
        libpath = env.get("LD_LIBRARY_PATH", DEFAULT_LIB_PATH).split(":")
        for lib in vp.needed:
            self._open_library(sys, lib, libpath)

    def _open_library(self, sys: SyscallInterface, lib: str, libpath: list[str]) -> None:
        last_error: SysError | None = None
        for directory in libpath:
            if not directory:
                continue
            candidate = directory.rstrip("/") + "/" + lib
            try:
                sys.close(sys.open(candidate, O_RDONLY))
                return
            except SysError as err:
                last_error = err
        detail = f"shared library {lib!r} not found in {':'.join(libpath)}"
        if last_error is not None and last_error.errno != errno_.ENOENT:
            raise SysError(last_error.errno, detail)
        raise SysError(errno_.ENOENT, detail)

    @staticmethod
    def _report_exec_error(sys: SyscallInterface, argv: list[str], err: SysError) -> None:
        name = argv[0] if argv else "?"
        try:
            if 2 in sys.proc.fdtable:
                sys.write(2, f"{name}: {err}\n".encode())
        except SysError:
            pass
