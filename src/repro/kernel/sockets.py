"""Sockets and a loopback network.

The simulated network supports the two domains SHILL's sandbox controls
with capabilities (Figure 7: "Sockets (IP, Unix): Capabilities"; all other
socket families are denied outright).  Delivery is synchronous loopback:
``connect`` pairs the client socket with a server-side socket queued on a
listener, and ``send``/``recv`` move bytes between paired buffers.

Network *services* (e.g. the origin server the Download benchmark's
``curl`` talks to) are Python callables registered on the
:class:`Network`; when a client connects to a service address the service
is run immediately against the server-side socket.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.errors import SysError
from repro.kernel import errno_
from repro.kernel.vfs import Label


class AddressFamily(enum.IntEnum):
    AF_UNIX = 1
    AF_INET = 2
    # A representative "other" family, denied everywhere (Figure 7).
    AF_NETGRAPH = 32


class SocketType(enum.IntEnum):
    SOCK_STREAM = 1
    SOCK_DGRAM = 2


class Socket:
    """A kernel socket object with MAC label."""

    def __init__(self, domain: AddressFamily, stype: SocketType) -> None:
        self.domain = domain
        self.stype = stype
        self.label = Label()
        self.bound_addr: tuple | None = None
        self.listening = False
        self.backlog: list[Socket] = []
        self.peer: Socket | None = None
        self.recv_buffer = bytearray()
        self.closed = False
        self.network: "Network | None" = None

    def on_last_close(self) -> None:
        self.closed = True
        if self.peer is not None:
            self.peer.peer = None
        if self.network is not None and self.listening:
            self.network.unlisten(self)


Service = Callable[[Socket], None]


class Network:
    """The loopback network: listener registry plus in-kernel services."""

    def __init__(self) -> None:
        self._listeners: dict[tuple, Socket] = {}
        self._services: dict[tuple, Service] = {}
        self._listen_hooks: dict[tuple, Callable[[Socket], None]] = {}
        #: configuration mutation counter (part of the kernel state
        #: epoch): registered services/hooks change what runs observe;
        #: live listeners are per-run state and do not count.
        self.mutations = 0

    def fork(self) -> "Network":
        """A network for a forked kernel: registered services (world
        plumbing over immutable payloads) carry over; live listeners AND
        listen hooks do not — hooks are benchmark-driver plumbing that
        closes over the *parent* kernel's processes and sockets, so
        inheriting them would let a fork's listen() mutate another
        world's run state."""
        new = Network()
        new._services = dict(self._services)
        new.mutations = self.mutations
        return new

    def __getstate__(self) -> dict:
        """Snapshot state (:mod:`repro.kernel.serialize`): registered
        services and the mutation watermark cross the snapshot, exactly
        as they cross :meth:`fork`; live listeners and listen hooks are
        per-run plumbing (hooks close over the source kernel's processes)
        and are dropped."""
        return {"services": dict(self._services), "mutations": self.mutations}

    def __setstate__(self, state: dict) -> None:
        self._listeners = {}
        self._services = dict(state["services"])
        self._listen_hooks = {}
        self.mutations = state["mutations"]

    # -- service registration (world/benchmark plumbing, not a syscall) ------

    def register_service(self, addr: tuple, service: Service) -> None:
        """Register a host-side service reachable at ``addr``.

        Used to simulate remote servers (e.g. the GNU mirror that the
        Emacs Download benchmark fetches from).
        """
        self._services[addr] = service
        self.mutations += 1

    def register_listen_hook(self, addr: tuple, hook: Callable[[Socket], None]) -> None:
        """Run ``hook(listener)`` the moment a socket starts listening on
        ``addr``.  Benchmark drivers use this to enqueue client
        connections for a synchronous server (e.g. the Apache Benchmark
        tool flooding httpd with requests)."""
        self._listen_hooks[addr] = hook
        self.mutations += 1

    # -- socket operations called by the syscall layer ------------------------

    def bind(self, sock: Socket, addr: tuple) -> None:
        if sock.bound_addr is not None:
            raise SysError(errno_.EINVAL, "already bound")
        if addr in self._listeners or addr in self._services:
            raise SysError(errno_.EADDRINUSE, str(addr))
        sock.bound_addr = addr
        sock.network = self

    def listen(self, sock: Socket) -> None:
        if sock.bound_addr is None:
            raise SysError(errno_.EINVAL, "not bound")
        sock.listening = True
        self._listeners[sock.bound_addr] = sock
        hook = self._listen_hooks.get(sock.bound_addr)
        if hook is not None:
            hook(sock)

    def connect(self, sock: Socket, addr: tuple) -> None:
        if sock.peer is not None:
            raise SysError(errno_.EISCONN, "already connected")
        service = self._services.get(addr)
        if service is not None:
            server_side = Socket(sock.domain, sock.stype)
            self._pair(sock, server_side)
            service(server_side)
            return
        listener = self._listeners.get(addr)
        if listener is None or not listener.listening:
            raise SysError(errno_.ECONNREFUSED, str(addr))
        server_side = Socket(listener.domain, listener.stype)
        self._pair(sock, server_side)
        listener.backlog.append(server_side)

    def accept(self, sock: Socket) -> Socket:
        if not sock.listening:
            raise SysError(errno_.EINVAL, "not listening")
        if not sock.backlog:
            raise SysError(errno_.EAGAIN, "no pending connections")
        return sock.backlog.pop(0)

    def send(self, sock: Socket, data: bytes) -> int:
        if sock.peer is None:
            raise SysError(errno_.ENOTCONN, "not connected")
        sock.peer.recv_buffer.extend(data)
        return len(data)

    def recv(self, sock: Socket, size: int) -> bytes:
        if sock.peer is None and not sock.recv_buffer:
            raise SysError(errno_.ENOTCONN, "not connected")
        out = bytes(sock.recv_buffer[:size])
        del sock.recv_buffer[:size]
        return out

    def unlisten(self, sock: Socket) -> None:
        if sock.bound_addr in self._listeners and self._listeners[sock.bound_addr] is sock:
            del self._listeners[sock.bound_addr]
        sock.listening = False

    @staticmethod
    def _pair(a: Socket, b: Socket) -> None:
        a.peer = b
        b.peer = a
