"""Errno constants for the simulated kernel.

Values follow FreeBSD's ``sys/errno.h`` so that logs read like the real
system. Only the constants the simulated syscall layer actually raises are
defined; ``errorcode`` maps numbers back to names for error messages.
"""

from __future__ import annotations

EPERM = 1  # Operation not permitted
ENOENT = 2  # No such file or directory
ESRCH = 3  # No such process
EINTR = 4  # Interrupted system call
EIO = 5  # Input/output error
ENXIO = 6  # Device not configured
E2BIG = 7  # Argument list too long
ENOEXEC = 8  # Exec format error
EBADF = 9  # Bad file descriptor
ECHILD = 10  # No child processes
EDEADLK = 11  # Resource deadlock avoided
ENOMEM = 12  # Cannot allocate memory
EACCES = 13  # Permission denied
EFAULT = 14  # Bad address
ENOTBLK = 15  # Block device required
EBUSY = 16  # Device busy
EEXIST = 17  # File exists
EXDEV = 18  # Cross-device link
ENODEV = 19  # Operation not supported by device
ENOTDIR = 20  # Not a directory
EISDIR = 21  # Is a directory
EINVAL = 22  # Invalid argument
ENFILE = 23  # Too many open files in system
EMFILE = 24  # Too many open files
ENOTTY = 25  # Inappropriate ioctl for device
ETXTBSY = 26  # Text file busy
EFBIG = 27  # File too large
ENOSPC = 28  # No space left on device
ESPIPE = 29  # Illegal seek
EROFS = 30  # Read-only filesystem
EMLINK = 31  # Too many links
EPIPE = 32  # Broken pipe
EAGAIN = 35  # Resource temporarily unavailable
EADDRINUSE = 48  # Address already in use
EADDRNOTAVAIL = 49  # Can't assign requested address
ENETUNREACH = 51  # Network is unreachable
ECONNRESET = 54  # Connection reset by peer
ENOBUFS = 55  # No buffer space available
EISCONN = 56  # Socket is already connected
ENOTCONN = 57  # Socket is not connected
ECONNREFUSED = 61  # Connection refused
ELOOP = 62  # Too many levels of symbolic links
ENAMETOOLONG = 63  # File name too long
ENOTEMPTY = 66  # Directory not empty
ENOSYS = 78  # Function not implemented
ENOTCAPABLE = 93  # Capabilities insufficient (Capsicum's errno, reused for MAC denials)

errorcode: dict[int, str] = {
    value: name
    for name, value in list(globals().items())
    if name.startswith("E") and isinstance(value, int)
}
