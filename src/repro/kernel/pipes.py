"""Pipes: unidirectional byte channels between processes.

A :class:`Pipe` is the labelled kernel object (SHILL attaches privilege
maps to it); its two :class:`PipeEnd` halves are what file descriptors
reference.  The language-level *pipe factory* capability (section 3.1.1)
"has a create operation that returns a pair of pipe ends"; each end is a
file capability.
"""

from __future__ import annotations

from repro.errors import SysError
from repro.kernel import errno_
from repro.kernel.vfs import Label


class Pipe:
    """The kernel pipe object: a bounded FIFO byte buffer plus MAC label."""

    BUFSIZE = 64 * 1024

    def __init__(self) -> None:
        self.buffer = bytearray()
        self.read_open = True
        self.write_open = True
        self.label = Label()

    def write(self, data: bytes) -> int:
        if not self.write_open:
            raise SysError(errno_.EBADF, "write end closed")
        if not self.read_open:
            raise SysError(errno_.EPIPE, "reader gone")
        self.buffer.extend(data)
        return len(data)

    def read(self, size: int) -> bytes:
        if not self.read_open:
            raise SysError(errno_.EBADF, "read end closed")
        out = bytes(self.buffer[:size])
        del self.buffer[:size]
        return out


class PipeEnd:
    """One half of a pipe; referenced by an :class:`OpenFile`."""

    __slots__ = ("pipe", "writable")

    def __init__(self, pipe: Pipe, writable: bool) -> None:
        self.pipe = pipe
        self.writable = writable

    @property
    def label(self) -> Label:
        # Both ends share the pipe's label: privileges are per-pipe.
        return self.pipe.label

    def on_last_close(self) -> None:
        if self.writable:
            self.pipe.write_open = False
        else:
            self.pipe.read_open = False


def make_pipe() -> tuple[PipeEnd, PipeEnd]:
    """Create a pipe; returns ``(read_end, write_end)``."""
    pipe = Pipe()
    return PipeEnd(pipe, writable=False), PipeEnd(pipe, writable=True)
