"""Persistent, content-addressed snapshot store: booted machines on disk.

The snapshot codec (:mod:`repro.kernel.serialize`) turns a booted
machine into deterministic bytes; this module gives those bytes a home
that outlives the process.  A :class:`SnapshotStore` is a directory of
**blobs keyed by snapshot digest** (the SHA-256 of the snapshot bytes,
exactly :func:`repro.kernel.serialize.snapshot_digest`), plus an index
mapping **world digests** (the `repro.api.World` configuration hash) to
the snapshot they boot to.  Worker fleets — the ``StoreExecutor`` in
:mod:`repro.api.executors` — boot by reading a blob from disk instead of
receiving a multi-hundred-KiB pickle over process ``initargs``, and a
coordinator whose world digest is already linked skips the template
build entirely: zero kernel ops, straight from disk.

Layout (everything under ``root``)::

    blobs/<snapshot-digest>.snap     the snapshot bytes, content-addressed
    worlds/<world-digest>.link       pickled {snapshot, fixtures, stats, ...}

Guarantees:

* **atomic writes** — blobs and links are written to a unique temp file
  and ``os.replace``\\ d into place, so a concurrent reader never sees a
  torn file and racing writers of the same digest agree byte-for-byte
  (content addressing makes the race benign);
* **LRU cap** — at most ``max_blobs`` blobs are retained; ``put`` and
  ``get`` refresh a blob's mtime and eviction drops the stalest first
  (an evicted snapshot is just rebuilt and re-put on the next miss);
* **hit/miss stats** — every lookup is counted, so cache efficacy is
  observable (the ``repro store ls`` CLI and the store benchmarks read
  these).

The store holds only deterministic machine state; it is a cache, never a
source of truth — deleting the directory merely makes the next boot pay
the build again.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.kernel.serialize import SNAPSHOT_PROTOCOL, SnapshotError

#: Default blob cap: a blob is a whole machine image (~100s of KiB), and
#: a long-lived fleet sweeping many configurations must not fill the disk.
DEFAULT_MAX_BLOBS = 64

_BLOB_SUFFIX = ".snap"
_LINK_SUFFIX = ".link"

#: Self-describing framing for blobs that leave the store — over the
#: agent wire protocol or as files copied between hosts.  The digest
#: rides with the bytes so the importer can verify integrity before the
#: payload is trusted: magic, then the 64 hex chars of the SHA-256, then
#: the snapshot bytes themselves.
BLOB_EXPORT_MAGIC = b"SHBLOB1\n"
_DIGEST_HEX_LEN = 64


def default_store_root() -> Path:
    """Where stores live when the caller names none: ``$REPRO_STORE`` if
    set (the CI workflow points this at a cached workspace directory),
    else an XDG-style per-user cache path."""
    env = os.environ.get("REPRO_STORE")
    if env:
        return Path(env)
    cache_home = Path(os.environ.get("XDG_CACHE_HOME", "~/.cache")).expanduser()
    return cache_home / "repro" / "snapshots"


@dataclass(frozen=True)
class StoreEntry:
    """One blob as ``ls`` reports it."""

    digest: str
    size: int
    mtime: float
    worlds: tuple[str, ...]


class SnapshotStore:
    """On-disk, content-addressed snapshot blobs with a world index.

    ``root`` may be a path-like or ``None`` (then
    :func:`default_store_root` decides).  The directory tree is created
    eagerly so a freshly constructed store is immediately usable by
    worker processes that only ever read from it.
    """

    def __init__(self, root: "Path | str | None" = None, *,
                 max_blobs: int = DEFAULT_MAX_BLOBS) -> None:
        if max_blobs < 1:
            raise ValueError("max_blobs must be positive")
        self.root = Path(root) if root is not None else default_store_root()
        self.max_blobs = max_blobs
        self._blobs = self.root / "blobs"
        self._worlds = self.root / "worlds"
        self._blobs.mkdir(parents=True, exist_ok=True)
        self._worlds.mkdir(parents=True, exist_ok=True)
        self.stats = {"hits": 0, "misses": 0, "writes": 0, "evictions": 0}

    # -- blobs -------------------------------------------------------------

    def blob_path(self, digest: str) -> Path:
        return self._blobs / f"{digest}{_BLOB_SUFFIX}"

    def has(self, digest: str) -> bool:
        return self.blob_path(digest).exists()

    def put(self, payload: bytes) -> str:
        """Store snapshot bytes; returns their digest.

        Content-addressed, so a re-put of identical bytes is a cheap
        touch (the digest *is* the identity) and concurrent writers of
        the same snapshot cannot disagree.
        """
        digest = hashlib.sha256(payload).hexdigest()
        path = self.blob_path(digest)
        if path.exists():
            self._touch(path)
            return digest
        self._atomic_write(path, payload)
        self.stats["writes"] += 1
        self._evict()
        return digest

    def get(self, digest: str) -> bytes | None:
        """The snapshot bytes for ``digest``, or ``None`` (a miss)."""
        path = self.blob_path(digest)
        try:
            payload = path.read_bytes()
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        self._touch(path)
        return payload

    def load(self, digest: str) -> bytes:
        """Like :meth:`get` but a miss is an error — for callers that
        were promised the blob exists (worker boot)."""
        payload = self.get(digest)
        if payload is None:
            raise SnapshotError(
                f"snapshot {digest[:12]}… is not in the store at {self.root} "
                "(evicted between scheduling and worker boot?)")
        return payload

    def restore(self, digest: str):
        """Restore the machine stored under ``digest``.

        Full blobs restore directly; delta blobs resolve their base
        chain against this store (every base a delta references must be
        a blob here, or the restore is a
        :class:`~repro.kernel.serialize.SnapshotError`).  This is the
        one call worker processes and agents boot through, so a blob's
        kind is an encoding detail, never a caller concern.
        """
        from repro.kernel.serialize import restore_any

        return restore_any(self.load(digest), self.load)

    def is_delta(self, digest: str) -> bool:
        """Is the stored blob an incremental (delta) frame?"""
        from repro.kernel.serialize import is_delta

        return is_delta(self.load(digest))

    # -- wire transfer -----------------------------------------------------

    def export_blob(self, digest: str) -> bytes:
        """The stored snapshot as a self-describing transfer frame.

        This is what crosses the agent wire protocol (and what a
        ``scp``'d blob file should look like): the digest travels with
        the bytes, so :meth:`import_blob` on the far side can verify the
        payload before anything trusts it.  A missing blob is an error,
        exactly like :meth:`load` — exporters are callers who were
        promised the blob exists.
        """
        return BLOB_EXPORT_MAGIC + digest.encode("ascii") + self.load(digest)

    def import_blob(self, frame: bytes) -> str:
        """Verify and store an :meth:`export_blob` frame; returns the
        digest the blob now lives under.

        Integrity is checked twice over: the frame must carry the magic
        and a well-formed digest, and the payload must actually hash to
        that digest — a truncated or tampered transfer is a
        :class:`~repro.kernel.serialize.SnapshotError`, never a silently
        poisoned cache entry.
        """
        head_len = len(BLOB_EXPORT_MAGIC) + _DIGEST_HEX_LEN
        if not frame.startswith(BLOB_EXPORT_MAGIC) or len(frame) <= head_len:
            raise SnapshotError("not a blob export frame (bad magic or truncated)")
        claimed = frame[len(BLOB_EXPORT_MAGIC):head_len].decode("ascii")
        payload = frame[head_len:]
        actual = hashlib.sha256(payload).hexdigest()
        if actual != claimed:
            raise SnapshotError(
                f"blob transfer corrupt: frame claims {claimed[:12]}…, "
                f"payload hashes to {actual[:12]}…")
        return self.put(payload)

    # -- the world index ---------------------------------------------------

    def link_world(self, world_digest: str, snapshot_digest: str,
                   meta: "dict[str, Any] | None" = None) -> None:
        """Record that the world configuration hashing to ``world_digest``
        boots to the stored snapshot ``snapshot_digest``.  ``meta`` is
        plain data carried alongside (fixture values, build-time op
        totals) — whatever a store boot needs to fully reconstitute a
        :class:`repro.api.World` without running its build steps."""
        record = {"snapshot": snapshot_digest, "meta": dict(meta or {})}
        self._atomic_write(self._worlds / f"{world_digest}{_LINK_SUFFIX}",
                           pickle.dumps(record, protocol=SNAPSHOT_PROTOCOL))

    def resolve_world(self, world_digest: str) -> "tuple[str, dict] | None":
        """(snapshot digest, meta) for a linked world, or ``None`` when
        the world was never linked — or its blob has since been evicted
        (a dangling link counts as a miss and is left for ``gc``)."""
        path = self._worlds / f"{world_digest}{_LINK_SUFFIX}"
        try:
            record = pickle.loads(path.read_bytes())
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        except Exception:
            # A torn/corrupt link is a cache miss, never an error: the
            # caller rebuilds and re-links over it.
            self.stats["misses"] += 1
            return None
        snapshot = record["snapshot"]
        if not self.has(snapshot):
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        return snapshot, record["meta"]

    def world_links(self) -> dict[str, str]:
        """world digest -> snapshot digest, for every readable link."""
        links: dict[str, str] = {}
        for path in sorted(self._worlds.glob(f"*{_LINK_SUFFIX}")):
            try:
                links[path.name[: -len(_LINK_SUFFIX)]] = \
                    pickle.loads(path.read_bytes())["snapshot"]
            except Exception:
                continue
        return links

    # -- inspection / maintenance ------------------------------------------

    def entries(self) -> list[StoreEntry]:
        """Every blob, stalest first (the eviction order)."""
        links = self.world_links()
        by_blob: dict[str, list[str]] = {}
        for world, snapshot in links.items():
            by_blob.setdefault(snapshot, []).append(world)
        out = []
        for path in self._blob_paths_stalest_first():
            digest = path.name[: -len(_BLOB_SUFFIX)]
            stat = path.stat()
            out.append(StoreEntry(digest, stat.st_size, stat.st_mtime,
                                  tuple(sorted(by_blob.get(digest, ())))))
        return out

    def gc(self, keep: "int | None" = None) -> list[str]:
        """Evict stalest blobs beyond ``keep`` (default: ``max_blobs``)
        and drop world links whose blob is gone.  Returns the evicted
        blob digests, stalest first."""
        limit = self.max_blobs if keep is None else max(keep, 0)
        evicted = self._evict(limit)
        for path in self._worlds.glob(f"*{_LINK_SUFFIX}"):
            try:
                snapshot = pickle.loads(path.read_bytes())["snapshot"]
            except Exception:
                snapshot = None
            if snapshot is None or not self.has(snapshot):
                path.unlink(missing_ok=True)
        return evicted

    def __len__(self) -> int:
        return sum(1 for _ in self._blobs.glob(f"*{_BLOB_SUFFIX}"))

    def __repr__(self) -> str:
        return f"<SnapshotStore {self.root} blobs={len(self)}>"

    # -- plumbing ----------------------------------------------------------

    def _blob_paths_stalest_first(self) -> list[Path]:
        paths = list(self._blobs.glob(f"*{_BLOB_SUFFIX}"))
        # mtime first, digest as the deterministic tie-break (filesystem
        # timestamps are coarse enough for same-second writes to tie).
        return sorted(paths, key=lambda p: (p.stat().st_mtime, p.name))

    def _evict(self, limit: "int | None" = None) -> list[str]:
        """Drop stalest blobs over ``limit`` — but never a blob some
        *live* delta frame's chain is based on (evicting the base would
        turn every restore through that delta into a
        :class:`~repro.kernel.serialize.SnapshotError`).  The pin set is
        recomputed after each eviction, so once a delta itself goes its
        base becomes evictable; when everything over the cap is pinned
        the store stays over cap rather than orphan a chain."""
        limit = self.max_blobs if limit is None else limit
        evicted: list[str] = []
        while True:
            paths = self._blob_paths_stalest_first()
            if len(paths) <= limit:
                break
            pinned = self._chain_bases(paths)
            victim = next(
                (p for p in paths
                 if p.name[: -len(_BLOB_SUFFIX)] not in pinned), None)
            if victim is None:
                break
            victim.unlink(missing_ok=True)
            evicted.append(victim.name[: -len(_BLOB_SUFFIX)])
            self.stats["evictions"] += 1
        return evicted

    def _chain_bases(self, paths: "list[Path]") -> set[str]:
        """Every digest some live delta blob directly references.  Each
        link of a longer chain is itself a live delta pinning *its*
        base, so direct references cover chains transitively.  Only the
        72-byte frame header is read per blob — no op counters, no
        payload decode."""
        from repro.kernel.serialize import delta_base_digest, is_delta

        # magic(6) + version(1) + kind(1) + the base digest hex.
        head_len = 8 + _DIGEST_HEX_LEN
        pinned: set[str] = set()
        for path in paths:
            try:
                with path.open("rb") as fh:
                    head = fh.read(head_len)
            except OSError:
                continue
            try:
                if is_delta(head):
                    pinned.add(delta_base_digest(head))
            except SnapshotError:
                continue
        return pinned

    def _atomic_write(self, path: Path, payload: bytes) -> None:
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(payload)
        os.replace(tmp, path)

    @staticmethod
    def _touch(path: Path) -> None:
        try:
            os.utime(path)
        except OSError:
            pass
