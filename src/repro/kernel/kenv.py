"""Kernel environment and kernel module (kld) management.

Figure 7: the kernel environment and kernel modules are denied both in
the SHILL language and in sandboxes.  The paper's security argument
depends on the latter: "no sandboxed executable has a capability to
unload kernel modules, including the module that enforces the MAC
policy" (section 2.3) — a test asserts exactly this.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SysError
from repro.kernel import errno_

if TYPE_CHECKING:
    from repro.kernel.mac import MacFramework, MacPolicy
    from repro.kernel.proc import Process


class KernelEnv:
    def __init__(self, mac: "MacFramework") -> None:
        self._mac = mac
        self._env: dict[str, str] = {"kernelname": "/boot/kernel/kernel"}
        #: mutation counter (part of the kernel state epoch).
        self.mutations = 0

    def fork(self, mac: "MacFramework") -> "KernelEnv":
        """A copy bound to the forked kernel's MAC framework."""
        new = KernelEnv(mac)
        new._env = dict(self._env)
        new.mutations = self.mutations
        return new

    def get(self, proc: "Process", name: str) -> str:
        self._mac.check("kenv_check", proc, "get", name)
        try:
            return self._env[name]
        except KeyError:
            raise SysError(errno_.ENOENT, f"kenv {name!r}") from None

    def set(self, proc: "Process", name: str, value: str) -> None:
        self._mac.check("kenv_check", proc, "set", name)
        self._env[name] = value
        self.mutations += 1


class KldManager:
    """kldload/kldunload: loading/unloading kernel modules (MAC policies)."""

    def __init__(self, mac: "MacFramework") -> None:
        self._mac = mac

    def kldload(self, proc: "Process", name: str, policy: "MacPolicy") -> None:
        self._mac.check("kld_check_load", proc, name)
        if not proc.cred.is_root:
            raise SysError(errno_.EPERM, "kldload requires root")
        self._mac.register(policy)

    def kldunload(self, proc: "Process", name: str) -> None:
        self._mac.check("kld_check_unload", proc, name)
        if not proc.cred.is_root:
            raise SysError(errno_.EPERM, "kldunload requires root")
        if self._mac.find(name) is None:
            raise SysError(errno_.ENOENT, f"module {name!r} not loaded")
        self._mac.unregister(name)
