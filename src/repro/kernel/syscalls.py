"""The system-call layer: every operation a process can ask of the kernel.

A :class:`SyscallInterface` binds the kernel to one process and exposes
Unix-flavoured entry points.  Each call performs, in order:

1. **path resolution** (for path-taking calls): component-at-a-time walk
   with per-component DAC execute checks, ``vnode_check_lookup`` MAC
   checks, and — on success — the ``vnode_post_lookup`` notification the
   paper's kernel module added so the SHILL policy can propagate
   privileges to derived objects;
2. **DAC** mode-bit checks with the process credential;
3. **MAC** checks via the framework (all registered policies must allow);
4. the mechanical VFS/pipe/socket operation.

The module includes the paper's four new/changed system calls
(section 3.1.3): ``flinkat``, ``funlinkat``, ``frenameat`` (fd-designated
files, closing the TOCTTOU window that path-based ``linkat``/``unlinkat``/
``renameat`` leave open), the fd-returning ``mkdirat``, and ``path``
(fd → pathname via the name cache).

Per the paper's limitation discussion (section 3.2.3), read/write MAC
hooks are **not** invoked for character-device vnodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import SysError
from repro.kernel import errno_
from repro.kernel.cred import R_OK, W_OK, X_OK, dac_check
from repro.kernel.fdesc import OpenFile, OpenFlags
from repro.kernel.pipes import PipeEnd, make_pipe
from repro.kernel.proc import Process
from repro.kernel.sockets import AddressFamily, Socket, SocketType
from repro.kernel.vfs import Vnode, VType

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel

SYMLOOP_MAX = 32

# Final-op MAC hooks whose first argument is the vnode (or, for the
# namespace mutators, the parent directory) a run observably touched.
# Traversal hooks (vnode_check_lookup) are deliberately absent: the paths
# a walk crosses are captured by the read/readlink checks that actually
# observe data.  SyscallInterface._mac appends (kind, path) for these to
# Kernel._touched after the check succeeds; sessions slice that log into
# RunResult.touched and repro.analysis.deps gates static footprints on it.
_TOUCH_HOOKS = {
    "vnode_check_read": "read",
    "vnode_check_readdir": "read",
    "vnode_check_readlink": "read",
    "vnode_check_write": "write",
    "vnode_check_truncate": "write",
    "vnode_check_setmode": "write",
    "vnode_check_setowner": "write",
    "vnode_check_setutimes": "write",
    "vnode_check_create": "write",
    "vnode_check_unlink": "write",
    "vnode_check_link": "write",
    "vnode_check_rename_from": "write",
    "vnode_check_rename_to": "write",
}

O_RDONLY = OpenFlags.O_RDONLY
O_WRONLY = OpenFlags.O_WRONLY
O_RDWR = OpenFlags.O_RDWR
O_APPEND = OpenFlags.O_APPEND
O_CREAT = OpenFlags.O_CREAT
O_TRUNC = OpenFlags.O_TRUNC
O_EXCL = OpenFlags.O_EXCL
O_DIRECTORY = OpenFlags.O_DIRECTORY
O_EXEC = OpenFlags.O_EXEC
O_NOFOLLOW = OpenFlags.O_NOFOLLOW


@dataclass(frozen=True)
class Stat:
    """Result of ``stat``-family calls."""

    vid: int
    vtype: VType
    mode: int
    uid: int
    gid: int
    size: int
    nlink: int
    mtime: int

    @property
    def is_dir(self) -> bool:
        return self.vtype is VType.VDIR

    @property
    def is_file(self) -> bool:
        return self.vtype is VType.VREG


def _dac(proc: Process, vp: Vnode, want: int, what: str) -> None:
    if not dac_check(proc.cred, mode=vp.mode, uid=vp.uid, gid=vp.gid, want=want):
        raise SysError(errno_.EACCES, f"dac: {what}")


class SyscallInterface:
    """System calls bound to one process.

    ``sys = kernel.syscalls(proc)`` and then ``sys.open(...)`` etc.
    """

    def __init__(self, kernel: "Kernel", proc: Process) -> None:
        self.kernel = kernel
        self.proc = proc

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _count(self, name: str) -> None:
        self.kernel.stats.count_syscall(name)

    def _mac(self, hook: str, *args) -> None:
        self.kernel.mac.check(hook, self.proc, *args)
        kind = _TOUCH_HOOKS.get(hook)
        if kind is not None and args and isinstance(args[0], Vnode):
            # Record only allowed operations: a denial is not a touch.
            # path_of is a pure name-cache walk — no op counters move.
            try:
                path = self.kernel.vfs.path_of(args[0])
            except SysError:
                path = "<detached>"
            self.kernel._touched.append((kind, path))

    def _post(self, hook: str, *args) -> None:
        self.kernel.mac.post(hook, self.proc, *args)

    def _lookup_once(self, dvp: Vnode, name: str) -> Vnode:
        """One component lookup: DAC X on dir, MAC lookup hook, post hook."""
        _dac(self.proc, dvp, X_OK, f"search {name!r}")
        self._mac("vnode_check_lookup", dvp, name)
        vp = self.kernel.vfs.lookup(dvp, name)
        self._post("vnode_post_lookup", dvp, vp, name)
        return vp

    def _start_dir(self, path: str) -> Vnode:
        return self.kernel.vfs.root if path.startswith("/") else self.proc.cwd

    def _resolve(
        self, path: str, *, follow: bool = True, want_parent: bool = False, _depth: int = 0
    ) -> tuple[Vnode, str, Vnode | None]:
        """Resolve ``path`` to ``(parent_dir, final_name, vnode_or_None)``.

        ``follow`` controls whether a symlink in the final component is
        chased.  With ``want_parent`` the final component may not exist
        (creation); otherwise a missing final component raises ``ENOENT``
        only when the caller demands it (callers check ``vp is None``).

        Successful resolutions by *sessionless* processes are cached on
        the kernel (the resolved-path dcache).  A hit is legal only while
        nothing the skipped walk consulted can have changed: the key
        carries (start-dir vid, path, credential, follow, want_parent)
        and the whole cache is invalidated when the VFS generation, the
        MAC label epoch, or the MAC policy set moves.  Sandboxed
        processes never hit the cache — their per-component MAC checks
        and post-lookup privilege propagation are side-effecting, and
        denial behaviour must stay byte-identical.  Hits may reduce
        mac_check counts, never denials.
        """
        if _depth > SYMLOOP_MAX:
            raise SysError(errno_.ELOOP, path)
        if not path:
            raise SysError(errno_.ENOENT, "empty path")
        kernel = self.kernel
        cache_key = None
        if _depth == 0 and self.proc.session is None and kernel.vfs.dcache_enabled:
            # The engine component folds policy-engine swaps *and* engine
            # reconfiguration (FakePolicyEngine.set bumps ``mutations``)
            # into the stamp: cached walks must be re-judged when future
            # decisions can differ.  id() is fine — the cache is
            # runtime-only and never outlives the engine object.
            engine = kernel.mac.engine
            engine_stamp = None if engine is None else (id(engine), engine.mutations)
            stamp = (kernel.vfs.generation, kernel.mac.label_epoch,
                     kernel.mac.mutations, engine_stamp)
            if kernel._resolve_stamp != stamp:
                kernel._resolve_cache.clear()
                kernel._resolve_stamp = stamp
            cache_key = (self._start_dir(path).vid, path, self.proc.cred, follow, want_parent)
            hit = kernel._resolve_cache.get(cache_key)
            if hit is not None:
                kernel.stats.dcache_hits += 1
                dvp, name, vp = hit
                if vp is not None and name != "." and name != "..":
                    # Same name-cache effect the final lookup would have.
                    vp.nc_parent = dvp
                    vp.nc_name = name
                return dvp, name, vp
        result = self._resolve_walk(path, follow=follow, want_parent=want_parent, _depth=_depth)
        if cache_key is not None and result[2] is not None:
            kernel._resolve_cache[cache_key] = result
        return result

    def _resolve_walk(
        self, path: str, *, follow: bool, want_parent: bool, _depth: int
    ) -> tuple[Vnode, str, Vnode | None]:
        """The uncached component walk behind :meth:`_resolve`."""
        node = self._start_dir(path)
        parts = [p for p in path.split("/") if p]
        if not parts:
            # Path was "/" (or all slashes).
            return node, ".", node
        for i, comp in enumerate(parts):
            is_last = i == len(parts) - 1
            if not node.is_dir:
                raise SysError(errno_.ENOTDIR, comp)
            if is_last and want_parent:
                try:
                    vp = self._lookup_once(node, comp)
                except SysError as err:
                    if err.errno == errno_.ENOENT:
                        return node, comp, None
                    raise
                if vp.is_symlink and follow:
                    assert vp.linktarget is not None
                    return self._resolve(
                        self._rebase(vp.linktarget, node),
                        follow=follow,
                        want_parent=True,
                        _depth=_depth + 1,
                    )
                return node, comp, vp
            vp = self._lookup_once(node, comp)
            if vp.is_symlink and (not is_last or follow):
                self._mac("vnode_check_readlink", vp)
                assert vp.linktarget is not None
                rest = "/".join(parts[i + 1 :])
                target = self._rebase(vp.linktarget, node)
                newpath = target + ("/" + rest if rest else "")
                return self._resolve(
                    newpath, follow=follow, want_parent=want_parent, _depth=_depth + 1
                )
            if is_last:
                return node, comp, vp
            node = vp
        raise AssertionError("unreachable")

    def _rebase(self, target: str, dvp: Vnode) -> str:
        """Turn a symlink target into an absolute-or-cwd path for re-resolution."""
        if target.startswith("/"):
            return target
        base = self.kernel.vfs.path_of(dvp)
        return base.rstrip("/") + "/" + target

    def _alloc_fd(self, of: OpenFile) -> int:
        limit = self.proc.ulimits.open_files
        if limit is not None and len(self.proc.fdtable.fds()) >= limit:
            raise SysError(errno_.EMFILE, "ulimit: open files")
        return self.proc.fdtable.alloc(of)

    def _vnode_for_fd(self, fd: int, *, directory: bool = False) -> Vnode:
        obj = self.proc.fdtable.get(fd).obj
        if not isinstance(obj, Vnode):
            raise SysError(errno_.EINVAL, "fd is not a vnode")
        if directory and not obj.is_dir:
            raise SysError(errno_.ENOTDIR, "fd is not a directory")
        return obj

    # ------------------------------------------------------------------
    # open / close / io
    # ------------------------------------------------------------------

    def open(self, path: str, flags: OpenFlags = O_RDONLY, mode: int = 0o644) -> int:
        self._count("open")
        follow = not (flags & O_NOFOLLOW)
        dvp, name, vp = self._resolve(path, follow=follow, want_parent=bool(flags & O_CREAT))
        return self._open_vnode(dvp, name, vp, flags, mode)

    def openat(self, dirfd: int, path: str, flags: OpenFlags = O_RDONLY, mode: int = 0o644) -> int:
        """Open relative to a directory fd.

        The kernel accepts multi-component relative paths (ordinary
        executables use them); the *SHILL runtime* additionally restricts
        its own use of ``openat`` to single-component names — that
        restriction lives in :mod:`repro.capability.caps`.
        """
        self._count("openat")
        if path.startswith("/"):
            return self.open(path, flags, mode)
        start = self._vnode_for_fd(dirfd, directory=True)
        saved_cwd = self.proc.cwd
        self.proc.cwd = start
        try:
            return self.open(path, flags, mode)
        finally:
            self.proc.cwd = saved_cwd

    def _open_vnode(
        self, dvp: Vnode, name: str, vp: Vnode | None, flags: OpenFlags, mode: int
    ) -> int:
        if vp is None:
            if not flags & O_CREAT:
                raise SysError(errno_.ENOENT, name)
            _dac(self.proc, dvp, W_OK, f"create {name!r}")
            self._mac("vnode_check_create", dvp, name, VType.VREG)
            vp = self.kernel.vfs.create(
                dvp, name, VType.VREG, mode & 0o777, self.proc.cred.uid, self.proc.cred.gid
            )
            self._post("vnode_post_create", dvp, vp, name, VType.VREG)
        else:
            if flags & O_CREAT and flags & O_EXCL:
                raise SysError(errno_.EEXIST, name)
            if vp.is_symlink:
                raise SysError(errno_.ELOOP, f"{name!r} is a symlink (O_NOFOLLOW)")
            if flags & O_DIRECTORY and not vp.is_dir:
                raise SysError(errno_.ENOTDIR, name)
            if vp.is_dir and flags.writable:
                raise SysError(errno_.EISDIR, name)
            accmode = 0
            if flags.readable:
                accmode |= R_OK
            if flags.writable or flags & O_APPEND:
                accmode |= W_OK
            if flags & O_EXEC:
                accmode |= X_OK
            if accmode:
                _dac(self.proc, vp, accmode, f"open {name!r}")
            self._mac("vnode_check_open", vp, accmode)
            if flags & O_TRUNC and vp.is_reg:
                if not vp.is_chardev:
                    self._mac("vnode_check_write", vp)
                self.kernel.vfs.truncate_file(vp, 0)
        of = OpenFile(vp, flags)
        return self._alloc_fd(of)

    def close(self, fd: int) -> None:
        self._count("close")
        self.proc.fdtable.close(fd)

    def read(self, fd: int, size: int) -> bytes:
        self._count("read")
        of = self.proc.fdtable.get(fd)
        data = self._read_obj(of, size, of.offset)
        of.offset += len(data)
        return data

    def pread(self, fd: int, size: int, offset: int) -> bytes:
        self._count("pread")
        of = self.proc.fdtable.get(fd)
        return self._read_obj(of, size, offset)

    def _read_obj(self, of: OpenFile, size: int, offset: int) -> bytes:
        obj = of.obj
        if isinstance(obj, Vnode):
            if obj.is_chardev:
                # By default MAC does not interpose on character-device
                # I/O (§3.2.3).  The paper notes the limitation "can be
                # resolved by adding entry points to the MAC framework
                # around unprotected operations" — that extension is the
                # kernel's `interpose_devices` switch.
                if self.kernel.interpose_devices:
                    self._mac("vnode_check_read", obj)
                assert obj.device is not None
                return obj.device.read(size)
            if not of.flags.readable:
                raise SysError(errno_.EBADF, "fd not open for reading")
            self._mac("vnode_check_read", obj)
            if obj.is_dir:
                raise SysError(errno_.EISDIR, "read on directory")
            return self.kernel.vfs.read_file(obj, offset, size)
        if isinstance(obj, PipeEnd):
            if obj.writable:
                raise SysError(errno_.EBADF, "write end of pipe")
            self._mac("pipe_check_read", obj.pipe)
            return obj.pipe.read(size)
        if isinstance(obj, Socket):
            self._mac("socket_check_receive", obj)
            return self.kernel.network.recv(obj, size)
        raise SysError(errno_.EINVAL, "unreadable object")

    def write(self, fd: int, data: bytes) -> int:
        self._count("write")
        of = self.proc.fdtable.get(fd)
        obj = of.obj
        if isinstance(obj, Vnode):
            if obj.is_chardev:
                if self.kernel.interpose_devices:
                    self._mac("vnode_check_write", obj)
                assert obj.device is not None
                return obj.device.write(data)
            if not (of.flags.writable or of.flags & O_APPEND):
                raise SysError(errno_.EBADF, "fd not open for writing")
            self._mac("vnode_check_write", obj)
            assert obj.data is not None
            offset = len(obj.data) if of.flags & O_APPEND else of.offset
            limit = self.proc.ulimits.file_size
            if limit is not None and offset + len(data) > limit:
                raise SysError(errno_.EFBIG, "ulimit: file size")
            n = self.kernel.vfs.write_file(obj, offset, data)
            if not of.flags & O_APPEND:
                of.offset = offset + n
            return n
        if isinstance(obj, PipeEnd):
            if not obj.writable:
                raise SysError(errno_.EBADF, "read end of pipe")
            self._mac("pipe_check_write", obj.pipe)
            return obj.pipe.write(data)
        if isinstance(obj, Socket):
            self._mac("socket_check_send", obj)
            return self.kernel.network.send(obj, data)
        raise SysError(errno_.EINVAL, "unwritable object")

    def lseek(self, fd: int, offset: int) -> int:
        self._count("lseek")
        of = self.proc.fdtable.get(fd)
        if isinstance(of.obj, (PipeEnd, Socket)):
            raise SysError(errno_.ESPIPE, "seek on pipe/socket")
        if offset < 0:
            raise SysError(errno_.EINVAL, "negative offset")
        of.offset = offset
        return offset

    def ftruncate(self, fd: int, length: int) -> None:
        self._count("ftruncate")
        of = self.proc.fdtable.get(fd)
        vp = of.obj
        if not isinstance(vp, Vnode) or not vp.is_reg:
            raise SysError(errno_.EINVAL, "ftruncate target")
        if not (of.flags.writable or of.flags & O_APPEND):
            raise SysError(errno_.EBADF, "fd not open for writing")
        self._mac("vnode_check_truncate", vp)
        self.kernel.vfs.truncate_file(vp, length)

    # ------------------------------------------------------------------
    # directory operations
    # ------------------------------------------------------------------

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self._count("mkdir")
        dvp, name, vp = self._resolve(path, want_parent=True)
        if vp is not None:
            raise SysError(errno_.EEXIST, name)
        self._create_dir(dvp, name, mode)

    def mkdirat(self, dirfd: int, name: str, mode: int = 0o755) -> int:
        """The paper's variant: creates the directory **and returns an fd**
        for it, so a capability for the new directory exists immediately.
        """
        self._count("mkdirat")
        dvp = self._vnode_for_fd(dirfd, directory=True)
        vp = self._create_dir(dvp, name, mode)
        return self._alloc_fd(OpenFile(vp, O_RDONLY))

    def _create_dir(self, dvp: Vnode, name: str, mode: int) -> Vnode:
        _dac(self.proc, dvp, W_OK, f"mkdir {name!r}")
        self._mac("vnode_check_create", dvp, name, VType.VDIR)
        vp = self.kernel.vfs.create(
            dvp, name, VType.VDIR, mode & 0o777, self.proc.cred.uid, self.proc.cred.gid
        )
        self._post("vnode_post_create", dvp, vp, name, VType.VDIR)
        return vp

    def getdents(self, fd: int) -> list[str]:
        self._count("getdents")
        vp = self._vnode_for_fd(fd, directory=True)
        self._mac("vnode_check_readdir", vp)
        return self.kernel.vfs.contents(vp)

    def contents(self, path: str) -> list[str]:
        """Convenience: readdir by path."""
        self._count("getdents")
        _, _, vp = self._resolve(path)
        if vp is None:
            raise SysError(errno_.ENOENT, path)
        if not vp.is_dir:
            raise SysError(errno_.ENOTDIR, path)
        _dac(self.proc, vp, R_OK, "readdir")
        self._mac("vnode_check_readdir", vp)
        return self.kernel.vfs.contents(vp)

    # ------------------------------------------------------------------
    # link / unlink / rename — path-based (racy) and fd-based (new)
    # ------------------------------------------------------------------

    def unlink(self, path: str) -> None:
        self._count("unlink")
        dvp, name, vp = self._resolve(path, follow=False)
        if vp is None:
            raise SysError(errno_.ENOENT, path)
        self._unlink_common(dvp, name, vp)

    def unlinkat(self, dirfd: int, name: str) -> None:
        self._count("unlinkat")
        dvp = self._vnode_for_fd(dirfd, directory=True)
        vp = self._lookup_once(dvp, name)
        self._unlink_common(dvp, name, vp)

    def funlinkat(self, dirfd: int, name: str, filefd: int) -> None:
        """Race-free unlink: removes ``name`` only if it still refers to the
        vnode behind ``filefd`` (paper, section 3.1.3).
        """
        self._count("funlinkat")
        dvp = self._vnode_for_fd(dirfd, directory=True)
        expect = self._vnode_for_fd(filefd)
        vp = self._lookup_once(dvp, name)
        _dac(self.proc, dvp, W_OK, f"unlink {name!r}")
        self._mac("vnode_check_unlink", dvp, vp, name)
        self.kernel.vfs.unlink(dvp, name, expect=expect)

    def _unlink_common(self, dvp: Vnode, name: str, vp: Vnode) -> None:
        _dac(self.proc, dvp, W_OK, f"unlink {name!r}")
        self._mac("vnode_check_unlink", dvp, vp, name)
        self.kernel.vfs.unlink(dvp, name)

    def link(self, oldpath: str, newpath: str) -> None:
        self._count("link")
        _, _, vp = self._resolve(oldpath)
        if vp is None:
            raise SysError(errno_.ENOENT, oldpath)
        dvp, name, existing = self._resolve(newpath, want_parent=True)
        if existing is not None:
            raise SysError(errno_.EEXIST, newpath)
        self._link_common(vp, dvp, name)

    def flinkat(self, filefd: int, dirfd: int, name: str) -> None:
        """Race-free link: both the file and the target directory are
        designated by file descriptors (paper, section 3.1.3).
        """
        self._count("flinkat")
        vp = self._vnode_for_fd(filefd)
        dvp = self._vnode_for_fd(dirfd, directory=True)
        self._link_common(vp, dvp, name)

    def _link_common(self, vp: Vnode, dvp: Vnode, name: str) -> None:
        _dac(self.proc, dvp, W_OK, f"link {name!r}")
        self._mac("vnode_check_link", dvp, vp)
        self.kernel.vfs.link(vp, dvp, name)
        self._post("vnode_post_create", dvp, vp, name, vp.vtype)

    def rename(self, oldpath: str, newpath: str) -> None:
        self._count("rename")
        src_dvp, src_name, vp = self._resolve(oldpath, follow=False)
        if vp is None:
            raise SysError(errno_.ENOENT, oldpath)
        dst_dvp, dst_name, _ = self._resolve(newpath, want_parent=True, follow=False)
        self._rename_common(src_dvp, src_name, vp, dst_dvp, dst_name)

    def frenameat(self, filefd: int, src_dirfd: int, src_name: str, dst_dirfd: int, dst_name: str) -> None:
        """Race-free rename: unlinks ``src_name`` only if it refers to the
        file behind ``filefd`` and installs a link in the target directory
        (paper, section 3.1.3).
        """
        self._count("frenameat")
        expect = self._vnode_for_fd(filefd)
        src_dvp = self._vnode_for_fd(src_dirfd, directory=True)
        dst_dvp = self._vnode_for_fd(dst_dirfd, directory=True)
        vp = self._lookup_once(src_dvp, src_name)
        if vp is not expect:
            raise SysError(errno_.EDEADLK, f"{src_name!r} no longer refers to the expected file")
        self._rename_common(src_dvp, src_name, vp, dst_dvp, dst_name)

    def _rename_common(
        self, src_dvp: Vnode, src_name: str, vp: Vnode, dst_dvp: Vnode, dst_name: str
    ) -> None:
        _dac(self.proc, src_dvp, W_OK, "rename from")
        _dac(self.proc, dst_dvp, W_OK, "rename to")
        self._mac("vnode_check_rename_from", src_dvp, vp)
        self._mac("vnode_check_rename_to", dst_dvp, vp)
        self.kernel.vfs.rename(src_dvp, src_name, dst_dvp, dst_name)
        self._post("vnode_post_create", dst_dvp, vp, dst_name, vp.vtype)

    # ------------------------------------------------------------------
    # symlinks
    # ------------------------------------------------------------------

    def symlink(self, target: str, linkpath: str) -> None:
        self._count("symlink")
        dvp, name, existing = self._resolve(linkpath, want_parent=True, follow=False)
        if existing is not None:
            raise SysError(errno_.EEXIST, linkpath)
        _dac(self.proc, dvp, W_OK, f"symlink {name!r}")
        self._mac("vnode_check_create", dvp, name, VType.VLNK)
        vp = self.kernel.vfs.symlink(dvp, name, target, self.proc.cred.uid, self.proc.cred.gid)
        self._post("vnode_post_create", dvp, vp, name, VType.VLNK)

    def readlink(self, path: str) -> str:
        self._count("readlink")
        _, _, vp = self._resolve(path, follow=False)
        if vp is None:
            raise SysError(errno_.ENOENT, path)
        if not vp.is_symlink:
            raise SysError(errno_.EINVAL, "not a symlink")
        self._mac("vnode_check_readlink", vp)
        assert vp.linktarget is not None
        return vp.linktarget

    # ------------------------------------------------------------------
    # stat / metadata
    # ------------------------------------------------------------------

    def _stat_of(self, vp: Vnode) -> Stat:
        size = 0
        if vp.is_reg and vp.data is not None:
            size = len(vp.data)
        elif vp.is_dir and vp.entries is not None:
            size = len(vp.entries)
        return Stat(
            vid=vp.vid,
            vtype=vp.vtype,
            mode=vp.mode,
            uid=vp.uid,
            gid=vp.gid,
            size=size,
            nlink=vp.nlink,
            mtime=vp.mtime,
        )

    def stat(self, path: str) -> Stat:
        self._count("stat")
        _, _, vp = self._resolve(path)
        if vp is None:
            raise SysError(errno_.ENOENT, path)
        self._mac("vnode_check_stat", vp)
        return self._stat_of(vp)

    def lstat(self, path: str) -> Stat:
        self._count("lstat")
        _, _, vp = self._resolve(path, follow=False)
        if vp is None:
            raise SysError(errno_.ENOENT, path)
        self._mac("vnode_check_stat", vp)
        return self._stat_of(vp)

    def fstat(self, fd: int) -> Stat:
        self._count("fstat")
        obj = self.proc.fdtable.get(fd).obj
        if isinstance(obj, Vnode):
            self._mac("vnode_check_stat", obj)
            return self._stat_of(obj)
        if isinstance(obj, PipeEnd):
            self._mac("pipe_check_stat", obj.pipe)
            return Stat(0, VType.VFIFO, 0o600, self.proc.cred.uid, self.proc.cred.gid,
                        len(obj.pipe.buffer), 1, 0)
        raise SysError(errno_.EINVAL, "fstat target")

    def fstatat(self, dirfd: int, name: str) -> Stat:
        self._count("fstatat")
        dvp = self._vnode_for_fd(dirfd, directory=True)
        vp = self._lookup_once(dvp, name)
        self._mac("vnode_check_stat", vp)
        return self._stat_of(vp)

    def chmod(self, path: str, mode: int) -> None:
        self._count("chmod")
        _, _, vp = self._resolve(path)
        if vp is None:
            raise SysError(errno_.ENOENT, path)
        if not self.proc.cred.is_root and self.proc.cred.uid != vp.uid:
            raise SysError(errno_.EPERM, "chmod: not owner")
        self._mac("vnode_check_setmode", vp, mode)
        self.kernel.vfs.set_meta(vp, mode=mode & 0o7777)

    def fchmod(self, fd: int, mode: int) -> None:
        self._count("fchmod")
        vp = self._vnode_for_fd(fd)
        if not self.proc.cred.is_root and self.proc.cred.uid != vp.uid:
            raise SysError(errno_.EPERM, "chmod: not owner")
        self._mac("vnode_check_setmode", vp, mode)
        self.kernel.vfs.set_meta(vp, mode=mode & 0o7777)

    def chown(self, path: str, uid: int, gid: int) -> None:
        self._count("chown")
        _, _, vp = self._resolve(path)
        if vp is None:
            raise SysError(errno_.ENOENT, path)
        if not self.proc.cred.is_root:
            raise SysError(errno_.EPERM, "chown requires root")
        self._mac("vnode_check_setowner", vp, uid, gid)
        self.kernel.vfs.set_meta(vp, uid=uid, gid=gid)

    def utimes(self, path: str, mtime: int) -> None:
        self._count("utimes")
        _, _, vp = self._resolve(path)
        if vp is None:
            raise SysError(errno_.ENOENT, path)
        if not self.proc.cred.is_root and self.proc.cred.uid != vp.uid:
            raise SysError(errno_.EPERM, "utimes: not owner")
        self._mac("vnode_check_setutimes", vp)
        self.kernel.vfs.set_meta(vp, mtime=mtime)

    # ------------------------------------------------------------------
    # cwd and the new `path` syscall
    # ------------------------------------------------------------------

    def chdir(self, path: str) -> None:
        self._count("chdir")
        _, _, vp = self._resolve(path)
        if vp is None:
            raise SysError(errno_.ENOENT, path)
        if not vp.is_dir:
            raise SysError(errno_.ENOTDIR, path)
        _dac(self.proc, vp, X_OK, "chdir")
        self._mac("vnode_check_chdir", vp)
        self.proc.cwd = vp

    def fchdir(self, fd: int) -> None:
        self._count("fchdir")
        vp = self._vnode_for_fd(fd, directory=True)
        _dac(self.proc, vp, X_OK, "fchdir")
        self._mac("vnode_check_chdir", vp)
        self.proc.cwd = vp

    def getcwd(self) -> str:
        self._count("getcwd")
        return self.kernel.vfs.path_of(self.proc.cwd)

    def path(self, fd: int) -> str:
        """The paper's new syscall: retrieve an accessible path for a file
        descriptor from the filesystem's lookup (name) cache.  Fails with
        ``ENOENT`` when the cache cannot produce one; callers (the SHILL
        runtime) then fall back to the last known path.
        """
        self._count("path")
        vp = self._vnode_for_fd(fd)
        return self.kernel.vfs.path_of(vp)

    # ------------------------------------------------------------------
    # pipes
    # ------------------------------------------------------------------

    def pipe(self) -> tuple[int, int]:
        self._count("pipe")
        self._mac("pipe_check_create")
        rend, wend = make_pipe()
        self._post("pipe_post_create", rend.pipe)
        rfd = self._alloc_fd(OpenFile(rend, O_RDONLY))
        wfd = self._alloc_fd(OpenFile(wend, O_WRONLY))
        return rfd, wfd

    # ------------------------------------------------------------------
    # sockets
    # ------------------------------------------------------------------

    def socket(self, domain: AddressFamily, stype: SocketType) -> int:
        self._count("socket")
        self._mac("socket_check_create", int(domain), int(stype))
        sock = Socket(domain, stype)
        return self._alloc_fd(OpenFile(sock, O_RDWR))

    def _socket_for_fd(self, fd: int) -> Socket:
        obj = self.proc.fdtable.get(fd).obj
        if not isinstance(obj, Socket):
            raise SysError(errno_.EINVAL, "fd is not a socket")
        return obj

    def bind(self, fd: int, addr: tuple) -> None:
        self._count("bind")
        sock = self._socket_for_fd(fd)
        self._mac("socket_check_bind", sock, addr)
        self.kernel.network.bind(sock, addr)

    def listen(self, fd: int) -> None:
        self._count("listen")
        sock = self._socket_for_fd(fd)
        self._mac("socket_check_listen", sock)
        self.kernel.network.listen(sock)

    def accept(self, fd: int) -> int:
        self._count("accept")
        sock = self._socket_for_fd(fd)
        self._mac("socket_check_accept", sock)
        conn = self.kernel.network.accept(sock)
        return self._alloc_fd(OpenFile(conn, O_RDWR))

    def connect(self, fd: int, addr: tuple) -> None:
        self._count("connect")
        sock = self._socket_for_fd(fd)
        self._mac("socket_check_connect", sock, addr)
        self.kernel.network.connect(sock, addr)

    def send(self, fd: int, data: bytes) -> int:
        self._count("send")
        sock = self._socket_for_fd(fd)
        self._mac("socket_check_send", sock)
        return self.kernel.network.send(sock, data)

    def recv(self, fd: int, size: int) -> bytes:
        self._count("recv")
        sock = self._socket_for_fd(fd)
        self._mac("socket_check_receive", sock)
        return self.kernel.network.recv(sock, size)

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------

    def fork(self) -> Process:
        self._count("fork")
        limit = self.proc.ulimits.processes
        if limit is not None and len([c for c in self.proc.children if not c.exited]) >= limit:
            raise SysError(errno_.EAGAIN, "ulimit: processes")
        return self.kernel.procs.fork(self.proc)

    def kill(self, pid: int, signum: int) -> None:
        self._count("kill")
        target = self.kernel.procs.get(pid)
        self._mac("proc_check_signal", target, signum)
        if not self.proc.cred.is_root and self.proc.cred.uid != target.cred.uid:
            raise SysError(errno_.EPERM, "kill: different user")
        target.deliver(signum)

    def wait(self, pid: int) -> int:
        self._count("wait")
        target = self.kernel.procs.get(pid)
        if target.ppid != self.proc.pid:
            raise SysError(errno_.ECHILD, f"pid {pid} is not a child")
        self._mac("proc_check_wait", target)
        if not target.exited:
            raise SysError(errno_.EAGAIN, "child still running")
        return target.exit_status

    def ptrace_attach(self, pid: int) -> None:
        self._count("ptrace")
        target = self.kernel.procs.get(pid)
        self._mac("proc_check_debug", target)
        if not self.proc.cred.is_root and self.proc.cred.uid != target.cred.uid:
            raise SysError(errno_.EPERM, "ptrace: different user")

    def exec_fd(self, fd: int, argv: list[str], env: dict[str, str] | None = None) -> int:
        """Execute the program behind ``fd`` in a forked child, wait for it,
        and return its exit status.  This is how sandboxed programs (e.g.
        ``gmake``) spawn sub-programs: the child inherits the session.
        """
        self._count("exec")
        vp = self._vnode_for_fd(fd)
        child = self.fork()
        return self.kernel.exec_file(child, vp, argv, env)

    def spawn(self, path: str, argv: list[str], env: dict[str, str] | None = None) -> int:
        """fork + exec by path + wait: the everyday way programs run other
        programs.  Path resolution happens in the caller's context, so a
        sandboxed caller needs lookup privileges along the way.
        """
        self._count("exec")
        _, _, vp = self._resolve(path)
        if vp is None:
            raise SysError(errno_.ENOENT, path)
        child = self.fork()
        return self.kernel.exec_file(child, vp, argv, env)

    # ------------------------------------------------------------------
    # system-wide: sysctl, kenv, kld, IPC
    # ------------------------------------------------------------------

    def sysctl_get(self, name: str) -> object:
        self._count("sysctl")
        return self.kernel.sysctl.get(self.proc, name)

    def sysctl_set(self, name: str, value: object) -> None:
        self._count("sysctl")
        self.kernel.sysctl.set(self.proc, name, value)

    def kenv_get(self, name: str) -> str:
        self._count("kenv")
        return self.kernel.kenv.get(self.proc, name)

    def kenv_set(self, name: str, value: str) -> None:
        self._count("kenv")
        self.kernel.kenv.set(self.proc, name, value)

    def kldunload(self, name: str) -> None:
        self._count("kld")
        self.kernel.kld.kldunload(self.proc, name)

    def shm_open(self, name: str, create: bool = True) -> bytearray:
        self._count("shm_open")
        return self.kernel.ipc.shm_open(self.proc, name, create)

    def msgget(self, key: int) -> int:
        self._count("msgget")
        return self.kernel.ipc.msgget(self.proc, key)

    # ------------------------------------------------------------------
    # SHILL sandbox syscalls (provided by the kernel module)
    # ------------------------------------------------------------------

    def shill_init(self):
        """Create a new session and associate it with the current process
        (section 3.2.1).  Requires the SHILL policy module to be loaded.
        """
        self._count("shill_init")
        policy = self.kernel.shill_policy()
        return policy.sessions.shill_init(self.proc)

    def shill_enter(self) -> None:
        """Seal the current process's session: from now on "the session
        allows only operations permitted by capabilities it was granted
        explicitly" (section 3.2.1).
        """
        self._count("shill_enter")
        policy = self.kernel.shill_policy()
        policy.sessions.shill_enter(self.proc)

    # -- convenience helpers used by programs and tests --------------------

    def read_whole(self, path: str) -> bytes:
        fd = self.open(path, O_RDONLY)
        try:
            chunks = []
            while True:
                chunk = self.read(fd, 1 << 16)
                if not chunk:
                    return b"".join(chunks)
                chunks.append(chunk)
        finally:
            self.close(fd)

    def write_whole(self, path: str, data: bytes, *, append: bool = False, mode: int = 0o644) -> None:
        flags = O_WRONLY | O_CREAT | (O_APPEND if append else O_TRUNC)
        fd = self.open(path, flags, mode)
        try:
            self.write(fd, data)
        finally:
            self.close(fd)
