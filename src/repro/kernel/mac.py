"""The MAC framework: pluggable mandatory access control.

A faithful miniature of the TrustedBSD MAC Framework (Watson & Vance)
that the paper builds on: the kernel "mediat[es] access to sensitive
kernel objects and invok[es] access control checks specified by
third-party policy modules", and offers label storage on kernel objects.

Policies subclass :class:`MacPolicy` and override the hooks they care
about.  Every ``check_*`` hook returns ``0`` to allow or an errno to deny;
the framework denies if *any* registered policy denies (restrictive
composition, as in TrustedBSD).  ``post_*`` hooks are notifications fired
after an operation succeeds — the paper *adds two of these*
(``mac_vnode_post_lookup`` and ``mac_vnode_post_create``) so the SHILL
policy can propagate privileges to derived objects (section 3.2.2).

The framework deliberately reproduces the granularity limits the paper
works around (section 3.2.3):

* there is a **single write entry point** for filesystem objects
  (``vnode_check_write``) — no separate append hook, which is why the
  SHILL policy conservatively demands both ``+write`` and ``+append``;
* there are **no hooks around character-device read/write** — the syscall
  layer simply does not call the vnode read/write hooks for ``VCHR``
  vnodes, reproducing the documented stdin/stdout bypass.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import SysError
from repro.kernel import errno_
from repro.policy.engine import Decision, PolicyEngine, PolicyRequest

if TYPE_CHECKING:
    from repro.kernel.proc import Process
    from repro.kernel.vfs import Vnode


class MacPolicy:
    """Base policy: every hook allows.  Override to restrict.

    Subjects are :class:`~repro.kernel.proc.Process` objects (which carry
    both the credential and, for SHILL, the session).  Objects are kernel
    objects with ``.label`` attributes.
    """

    name = "abstract"

    def fork_for(self, kernel: Any) -> "MacPolicy":
        """The policy instance to register on a forked kernel.

        The default shares ``self``, which is right for stateless
        policies (every base hook just allows).  Policies holding
        per-kernel state — like SHILL's session manager — override this
        to build an isolated copy bound to the fork.
        """
        return self

    # -- vnode checks -------------------------------------------------------

    def vnode_check_lookup(self, proc: "Process", dvp: "Vnode", name: str) -> int:
        return 0

    def vnode_check_open(self, proc: "Process", vp: "Vnode", accmode: int) -> int:
        return 0

    def vnode_check_read(self, proc: "Process", vp: "Vnode") -> int:
        return 0

    def vnode_check_write(self, proc: "Process", vp: "Vnode") -> int:
        # NB: single entry point for write AND append, per TrustedBSD.
        return 0

    def vnode_check_create(self, proc: "Process", dvp: "Vnode", name: str, vtype: Any) -> int:
        return 0

    def vnode_check_unlink(self, proc: "Process", dvp: "Vnode", vp: "Vnode", name: str) -> int:
        return 0

    def vnode_check_rename_from(self, proc: "Process", dvp: "Vnode", vp: "Vnode") -> int:
        return 0

    def vnode_check_rename_to(self, proc: "Process", dvp: "Vnode", vp: "Vnode") -> int:
        return 0

    def vnode_check_link(self, proc: "Process", dvp: "Vnode", vp: "Vnode") -> int:
        return 0

    def vnode_check_stat(self, proc: "Process", vp: "Vnode") -> int:
        return 0

    def vnode_check_readdir(self, proc: "Process", vp: "Vnode") -> int:
        return 0

    def vnode_check_readlink(self, proc: "Process", vp: "Vnode") -> int:
        return 0

    def vnode_check_exec(self, proc: "Process", vp: "Vnode") -> int:
        return 0

    def vnode_check_setmode(self, proc: "Process", vp: "Vnode", mode: int) -> int:
        return 0

    def vnode_check_setowner(self, proc: "Process", vp: "Vnode", uid: int, gid: int) -> int:
        return 0

    def vnode_check_setutimes(self, proc: "Process", vp: "Vnode") -> int:
        return 0

    def vnode_check_setflags(self, proc: "Process", vp: "Vnode", flags: int) -> int:
        return 0

    def vnode_check_truncate(self, proc: "Process", vp: "Vnode") -> int:
        return 0

    def vnode_check_chdir(self, proc: "Process", vp: "Vnode") -> int:
        return 0

    # -- vnode post hooks (added by SHILL's kernel module) -------------------

    def vnode_post_lookup(self, proc: "Process", dvp: "Vnode", vp: "Vnode", name: str) -> None:
        return None

    def vnode_post_create(self, proc: "Process", dvp: "Vnode", vp: "Vnode", name: str, vtype: Any) -> None:
        return None

    # -- pipes ---------------------------------------------------------------

    def pipe_check_create(self, proc: "Process") -> int:
        return 0

    def pipe_post_create(self, proc: "Process", pipe: Any) -> None:
        return None

    def pipe_check_read(self, proc: "Process", pipe: Any) -> int:
        return 0

    def pipe_check_write(self, proc: "Process", pipe: Any) -> int:
        return 0

    def pipe_check_stat(self, proc: "Process", pipe: Any) -> int:
        return 0

    # -- sockets --------------------------------------------------------------

    def socket_check_create(self, proc: "Process", domain: int, stype: int) -> int:
        return 0

    def socket_check_bind(self, proc: "Process", sock: Any, addr: tuple) -> int:
        return 0

    def socket_check_listen(self, proc: "Process", sock: Any) -> int:
        return 0

    def socket_check_accept(self, proc: "Process", sock: Any) -> int:
        return 0

    def socket_check_connect(self, proc: "Process", sock: Any, addr: tuple) -> int:
        return 0

    def socket_check_send(self, proc: "Process", sock: Any) -> int:
        return 0

    def socket_check_receive(self, proc: "Process", sock: Any) -> int:
        return 0

    # -- processes -------------------------------------------------------------

    def proc_check_signal(self, proc: "Process", target: "Process", signum: int) -> int:
        return 0

    def proc_check_wait(self, proc: "Process", target: "Process") -> int:
        return 0

    def proc_check_debug(self, proc: "Process", target: "Process") -> int:
        return 0

    # -- system-wide resources ---------------------------------------------------

    def system_check_sysctl(self, proc: "Process", name: str, write: bool) -> int:
        return 0

    def kenv_check(self, proc: "Process", op: str, name: str) -> int:
        return 0

    def kld_check_load(self, proc: "Process", name: str) -> int:
        return 0

    def kld_check_unload(self, proc: "Process", name: str) -> int:
        return 0

    def ipc_check(self, proc: "Process", kind: str, op: str, name: str) -> int:
        return 0


class MacFramework:
    """Registry of policies plus the check/post dispatch machinery."""

    # Class-level defaults (not set in __init__) so snapshot blobs
    # pickled before these fields existed still restore cleanly.
    #
    #: kernel-wide policy engine (see :mod:`repro.policy`).  ``None`` —
    #: the default — means pure capability semantics, byte-identical to
    #: the pre-engine framework.  Set via ``Kernel.policy_engine``.
    engine: PolicyEngine | None = None
    #: sid of the session whose action caused the most recent label
    #: mutation (None when the mutation had no session context) — audit
    #: attribution for label-epoch bumps.
    last_label_sid: int | None = None

    def __init__(self) -> None:
        self._policies: list[MacPolicy] = []
        # Optional stats sink (set by the Kernel) with integer attributes
        # ``mac_checks`` and ``mac_denials``.
        self.stats: Any = None
        #: policy-set mutation counter (part of the kernel state epoch).
        self.mutations = 0
        #: label mutation counter.  Policies must call
        #: :meth:`bump_label_epoch` whenever they mutate a MAC label (or
        #: the privilege map stored in one), so caches keyed on resolution
        #: state — the syscall-layer dcache — can tell that a previously
        #: cached walk might now be judged differently.
        self.label_epoch = 0

    def bump_label_epoch(self) -> None:
        """Record that some kernel object's MAC label changed."""
        self.label_epoch += 1

    @property
    def policies(self) -> tuple[MacPolicy, ...]:
        return tuple(self._policies)

    def register(self, policy: MacPolicy) -> None:
        """Load a policy module (``kldload`` of e.g. the SHILL module)."""
        if any(p.name == policy.name for p in self._policies):
            raise ValueError(f"policy {policy.name!r} already registered")
        self._policies.append(policy)
        self.mutations += 1

    def unregister(self, name: str) -> None:
        self._policies = [p for p in self._policies if p.name != name]
        self.mutations += 1

    def find(self, name: str) -> MacPolicy | None:
        for policy in self._policies:
            if policy.name == name:
                return policy
        return None

    # -- dispatch ---------------------------------------------------------------

    def check(self, hook: str, *args: Any) -> None:
        """Run ``check_``-style hook ``hook`` on every policy.

        Raises :class:`SysError` with the first non-zero errno returned.
        Restrictive composition: all policies must allow.

        A non-passive kernel-wide engine is consulted first with a
        ``mac``-domain request: ALLOW skips policy dispatch entirely,
        DENY raises before any policy runs, DEFER dispatches normally
        (and the outcome is reported to ``post_check``).  Framework-level
        requests carry no session context — sid is 0 and denials here
        produce no session audit record, which is why data-driven rules
        only reach this domain when they name it explicitly.
        """
        if self.stats is not None:
            self.stats.mac_checks += 1
            self.stats.mac_hooks[hook] += 1
        engine = self.engine
        if engine is not None and not engine.passive:
            proc = args[0] if args else None
            user = getattr(getattr(proc, "cred", None), "username", "") or ""
            request = PolicyRequest(domain="mac", operation=hook, target="", user=user)
            decision = engine.pre_check(request)
            if decision is Decision.ALLOW:
                return
            if decision is Decision.DENY:
                if self.stats is not None:
                    self.stats.mac_denials += 1
                raise SysError(errno_.EACCES, f"mac:engine:{engine.name}:{hook}")
            try:
                self._dispatch(hook, args)
            except SysError:
                engine.post_check(request, False)
                raise
            engine.post_check(request, True)
            return
        self._dispatch(hook, args)

    def _dispatch(self, hook: str, args: tuple) -> None:
        for policy in self._policies:
            error = getattr(policy, hook)(*args)
            if error:
                if self.stats is not None:
                    self.stats.mac_denials += 1
                raise SysError(error, f"mac:{policy.name}:{hook}")

    def post(self, hook: str, *args: Any) -> None:
        """Fire a ``post_``-style notification hook on every policy."""
        if self.stats is not None:
            self.stats.mac_hooks[hook] += 1
        for policy in self._policies:
            getattr(policy, hook)(*args)
