"""Processes: creation, exec, wait, signals, and resource limits.

Execution in the simulated kernel is synchronous and cooperative —
``exec`` runs the target program to completion on the caller's stack —
which keeps every security decision deterministic while exercising the
same mediation points a preemptive kernel would.

Two properties from the paper are modelled here:

* **Session confinement of process interaction** (section 3.2.2):
  "processes in a session can only interact with processes in the same
  session or a descendent session.  A process in a sandbox cannot debug,
  send signals to, or wait for a process outside of its session."  The
  checks themselves live in the SHILL MAC policy; this module routes
  ``kill``/``wait``/``ptrace`` through the MAC hooks.
* **ulimits** (Figure 7, note ‡): "SHILL allows calls to the exec function
  to specify ulimit parameters for the child process."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import SysError
from repro.kernel import errno_
from repro.kernel.cred import Credential
from repro.kernel.fdesc import FDTable

if TYPE_CHECKING:
    from repro.kernel.vfs import Vnode
    from repro.sandbox.session import Session

SIGKILL = 9
SIGTERM = 15
SIGUSR1 = 30


@dataclass
class Ulimits:
    """Per-process resource limits (the subset exec can set)."""

    cpu_seconds: Optional[int] = None
    file_size: Optional[int] = None
    open_files: Optional[int] = None
    processes: Optional[int] = None

    def merged_with(self, overrides: dict[str, int] | None) -> "Ulimits":
        if not overrides:
            return self
        known = {"cpu_seconds", "file_size", "open_files", "processes"}
        bad = set(overrides) - known
        if bad:
            raise SysError(errno_.EINVAL, f"unknown ulimit(s): {sorted(bad)}")
        merged = Ulimits(self.cpu_seconds, self.file_size, self.open_files, self.processes)
        for key, value in overrides.items():
            setattr(merged, key, value)
        return merged


@dataclass
class Process:
    """A simulated process."""

    pid: int
    ppid: int
    cred: Credential
    cwd: "Vnode"
    fdtable: FDTable = field(default_factory=FDTable)
    session: Optional["Session"] = None
    ulimits: Ulimits = field(default_factory=Ulimits)
    exited: bool = False
    exit_status: int = 0
    killed_by: int | None = None
    pending_signals: list[int] = field(default_factory=list)
    children: list["Process"] = field(default_factory=list)
    argv: list[str] = field(default_factory=list)

    def deliver(self, signum: int) -> None:
        if signum == SIGKILL:
            self.exited = True
            self.killed_by = signum
            self.exit_status = 128 + signum
        else:
            self.pending_signals.append(signum)


class ProcessTable:
    """All live (and zombie) processes, keyed by pid."""

    def __init__(self) -> None:
        self._procs: dict[int, Process] = {}
        self._next_pid = 1

    def _alloc_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        return pid

    @property
    def allocated(self) -> int:
        """Pids handed out so far (part of the kernel state epoch:
        audit output can embed pids, so watermark drift makes results
        non-reproducible)."""
        return self._next_pid - 1

    def clone_empty(self) -> "ProcessTable":
        """A table for a forked kernel: live processes are per-run state
        (execution is synchronous, so forks happen between runs) and are
        not carried over, but the pid counter is — a fork and its
        template hand out the same pid sequence a fresh boot would."""
        new = ProcessTable()
        new._next_pid = self._next_pid
        return new

    def __getstate__(self) -> dict:
        """Snapshot state (:mod:`repro.kernel.serialize`): only the pid
        watermark crosses — live processes are per-run state, exactly as
        in :meth:`clone_empty` (pids leak into audit output, so the
        watermark must be preserved for reproducible results)."""
        return {"next_pid": self._next_pid}

    def __setstate__(self, state: dict) -> None:
        self._procs = {}
        self._next_pid = state["next_pid"]

    def spawn(self, cred: Credential, cwd: "Vnode", ppid: int = 0) -> Process:
        proc = Process(pid=self._alloc_pid(), ppid=ppid, cred=cred, cwd=cwd)
        self._procs[proc.pid] = proc
        return proc

    def fork(self, parent: Process) -> Process:
        """Create a child: same credential and cwd, *shared* open files
        (each descriptor is duplicated into the child's table), inherited
        session (per the paper: "Processes spawned by a process in a
        session are by default placed in the same session").
        """
        child = Process(
            pid=self._alloc_pid(),
            ppid=parent.pid,
            cred=parent.cred,
            cwd=parent.cwd,
            session=parent.session,
            ulimits=parent.ulimits,
        )
        for fd in parent.fdtable.fds():
            parent.fdtable.dup_into(child.fdtable, fd, fd)
        self._procs[child.pid] = child
        parent.children.append(child)
        if parent.session is not None:
            parent.session.attach(child)
        return child

    def get(self, pid: int) -> Process:
        try:
            return self._procs[pid]
        except KeyError:
            raise SysError(errno_.ESRCH, f"pid {pid}") from None

    def reap(self, proc: Process) -> None:
        """Tear down an exited process: close fds, detach from session."""
        proc.exited = True
        proc.fdtable.close_all()
        if proc.session is not None:
            proc.session.detach(proc)
            proc.session = None

    def live_processes(self) -> list[Process]:
        return [p for p in self._procs.values() if not p.exited]
