"""Deterministic kernel snapshots: one booted machine as bytes.

The snapshot codec is what lets the batch engine scale past the GIL: a
booted template kernel is serialized **once**, shipped to worker
processes, and each worker restores a private machine and forks it per
job — the process-parallel analogue of handing every workload its own
cheaply-instantiated OS instance.

The codec is a thin, versioned wrapper over :mod:`pickle`; the real
contract lives in explicit ``__getstate__``/``__setstate__``/
``__reduce__`` hooks on the kernel's subsystems:

* :class:`~repro.kernel.vfs.Vnode` — slot-by-slot state; hard links and
  the name cache survive via the pickle memo, copy-on-write buffer flags
  cross verbatim;
* :class:`~repro.kernel.proc.ProcessTable` — pid watermark only (live
  processes are per-run state, as across :meth:`Kernel.fork`);
* :class:`~repro.kernel.sockets.Network` — registered services and the
  mutation watermark; live listeners and listen hooks are dropped;
* :class:`~repro.sandbox.session.SessionManager` — audit history and
  the sid watermark; live sessions are dropped;
* :class:`~repro.kernel.devices.CharDevice` — stateless devices reduce
  to a registered factory name; :class:`~repro.kernel.devices.TtyDevice`
  snapshots its capture buffers;
* :class:`~repro.kernel.kernel.Kernel` — fixed field order, stats sinks
  re-wired on restore.

**Determinism.**  Two machines with the same construction history (same
build steps, same run history) produce byte-identical snapshots: every
container in the state graph is either insertion-ordered (dicts, lists)
or explicitly ordered by the hooks, and wall-clock fields
(``boot_time``) are excluded.  ``snapshot_digest`` exposes that property
as a hash — the process backend's determinism tests gate on it.  (A
machine and its *restore* are behaviourally identical but may snapshot
to different bytes once — restoring normalises pickle's identity-based
string sharing — after which re-snapshotting is a fixed point.)

**What does not cross** (same list as :meth:`Kernel.fork`, documented
in README "Choosing a batch backend"): live processes, open sockets and
listeners, and entered sandbox sessions.  Snapshots, like forks, are
taken *between* runs, when none of that state is load-bearing.
"""

from __future__ import annotations

import hashlib
import io
import pickle
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel
    from repro.kernel.vfs import Vnode

#: Pinned pickle protocol: snapshots must mean the same bytes on every
#: interpreter the CI matrix runs (3.10–3.12), so the codec never floats
#: with ``pickle.HIGHEST_PROTOCOL``.
SNAPSHOT_PROTOCOL = 5

#: Bumped whenever the snapshot state layout changes incompatibly.
#: v2: kind byte after the version (full vs. delta frames), lazily
#: allocated Label slots, Vnode state without the runtime lazy flag.
SNAPSHOT_VERSION = 2

_MAGIC = b"SHILLK"

#: Frame kinds (one byte after the version).
_KIND_FULL = b"F"
_KIND_DELTA = b"D"

#: Hex digest length of the delta's base reference.
_DIGEST_LEN = 64


class SnapshotError(Exception):
    """A snapshot could not be encoded or decoded."""


def snapshot_kernel(kernel: "Kernel") -> bytes:
    """Serialize one booted machine to self-describing bytes."""
    try:
        body = pickle.dumps(kernel, protocol=SNAPSHOT_PROTOCOL)
    except Exception as err:  # unpicklable state is a caller bug worth naming
        raise SnapshotError(
            f"kernel state did not serialize: {type(err).__name__}: {err}"
        ) from err
    return _MAGIC + bytes([SNAPSHOT_VERSION]) + _KIND_FULL + body


def _parse_frame(data: bytes) -> tuple[bytes, bytes]:
    """Validate the header; return ``(kind, body)``."""
    if len(data) <= len(_MAGIC) + 2:
        raise SnapshotError("truncated snapshot")
    if data[: len(_MAGIC)] != _MAGIC:
        raise SnapshotError("not a kernel snapshot (bad magic)")
    version = data[len(_MAGIC)]
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version} != supported {SNAPSHOT_VERSION}"
        )
    kind = data[len(_MAGIC) + 1 : len(_MAGIC) + 2]
    if kind not in (_KIND_FULL, _KIND_DELTA):
        raise SnapshotError(f"unknown snapshot kind {kind!r}")
    return kind, data[len(_MAGIC) + 2 :]


def is_delta(data: bytes) -> bool:
    """Is this frame an incremental (delta) snapshot?"""
    return _parse_frame(data)[0] == _KIND_DELTA


def delta_base_digest(data: bytes) -> str:
    """The full-snapshot digest a delta frame must be applied against."""
    kind, body = _parse_frame(data)
    if kind != _KIND_DELTA:
        raise SnapshotError("not a delta snapshot")
    return body[:_DIGEST_LEN].decode("ascii")


def restore_kernel(data: bytes) -> "Kernel":
    """Rebuild a machine from :func:`snapshot_kernel` bytes.

    The restored kernel is indistinguishable from a fork of the source:
    same vnode tree, users, programs, MAC policies, op counters, audit
    history, and allocation watermarks — and therefore the same
    ``state_epoch``, so world-layer pristine checks keep holding.

    Delta frames need their base machine: use :func:`restore_any` (or
    :func:`apply_kernel_delta` directly) for those.
    """
    from repro.kernel.kernel import Kernel

    kind, body = _parse_frame(data)
    if kind != _KIND_FULL:
        raise SnapshotError(
            "delta snapshot: restore it against its base with restore_any()"
        )
    try:
        kernel = pickle.loads(body)
    except Exception as err:  # truncated/corrupt body: uphold the contract
        raise SnapshotError(
            f"snapshot body did not decode: {type(err).__name__}: {err}"
        ) from err
    if not isinstance(kernel, Kernel):
        raise SnapshotError(f"snapshot decoded to {type(kernel).__name__}, not Kernel")
    return kernel


def snapshot_digest(kernel: "Kernel") -> str:
    """SHA-256 of the machine's snapshot — equal digests mean "restores
    to an identical machine".  Deterministic for epoch-identical kernels
    (the codec excludes wall-clock state)."""
    return hashlib.sha256(snapshot_kernel(kernel)).hexdigest()


# ----------------------------------------------------------------------
# incremental (delta) snapshots
# ----------------------------------------------------------------------
#
# A delta frame pickles the whole kernel graph *except* vnodes whose
# entire subtree is unchanged versus a referenced base snapshot: those
# pickle as external references (pickle's persistent-id mechanism) named
# by vid, and resolve against the base machine at apply time.  Since the
# vnode tree — file data above all — dominates snapshot size, a delta
# for a lightly-mutated machine is a few KB where the full blob is MBs.
#
# The "entire subtree" rule keeps the restored graph consistent: an
# externalized directory adopts its base subtree wholesale, so it must
# not contain any vnode that also ships inline (two objects for one vid).
# Upward nc_parent pointers can still cross from adopted base vnodes to
# stale base parents; apply canonicalizes them in a fixup pass.
#
# Applying a delta *adopts* vnodes from the base machine object — the
# caller hands over ownership and must not use the base afterwards.


def _index_vnodes(root: "Vnode") -> dict[int, "Vnode"]:
    """vid → vnode for every vnode reachable through directory entries."""
    index: dict[int, "Vnode"] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        if node.vid in index:
            continue
        index[node.vid] = node
        if node.entries:
            stack.extend(node.entries.values())
    return index


def _vnode_fingerprint(vp: "Vnode") -> tuple:
    """Canonical comparable state for one vnode, with object references
    flattened to vids (labels and devices compare by pickled bytes —
    spurious mismatches only cost delta size, never correctness)."""
    entries = (
        None if vp.entries is None
        else tuple((name, child.vid) for name, child in vp.entries.items())
    )
    return (
        vp.vid, vp.vtype.value, vp.mode, vp.uid, vp.gid, vp.flags, vp.nlink,
        None if vp.data is None else bytes(vp.data),
        entries, vp.linktarget,
        pickle.dumps(vp.device, protocol=SNAPSHOT_PROTOCOL),
        vp.program, tuple(vp.needed),
        pickle.dumps(vp.label, protocol=SNAPSHOT_PROTOCOL),
        vp.nc_parent.vid if vp.nc_parent is not None else None,
        vp.nc_name, vp.mtime, vp.data_shared,
    )


def _unchanged_subtrees(cur_root: "Vnode", base_root: "Vnode") -> dict[int, "Vnode"]:
    """vid → current vnode for every vnode whose whole entries-subtree is
    state-identical to the base's vnode of the same vid."""
    base_index = _index_vnodes(base_root)
    cur_index = _index_vnodes(cur_root)
    own_ok: dict[int, bool] = {}
    for vid, vp in cur_index.items():
        base_vp = base_index.get(vid)
        own_ok[vid] = (
            base_vp is not None
            and _vnode_fingerprint(vp) == _vnode_fingerprint(base_vp)
        )
    # Directories form a tree (no hard links to directories), so a
    # reversed DFS preorder sees children before parents; files are
    # leaves and need no ordering.
    order: list["Vnode"] = []
    seen: set[int] = set()
    stack = [cur_root]
    while stack:
        node = stack.pop()
        if node.vid in seen:
            continue
        seen.add(node.vid)
        order.append(node)
        if node.entries:
            stack.extend(node.entries.values())
    subtree_ok: dict[int, bool] = {}
    for node in reversed(order):
        ok = own_ok[node.vid]
        if ok and node.entries:
            ok = all(subtree_ok.get(child.vid, False) for child in node.entries.values())
        subtree_ok[node.vid] = ok
    return {vid: cur_index[vid] for vid, ok in subtree_ok.items() if ok}


class _DeltaPickler(pickle.Pickler):
    def __init__(self, file, external: dict[int, "Vnode"]) -> None:
        super().__init__(file, protocol=SNAPSHOT_PROTOCOL)
        self._external = external

    def persistent_id(self, obj):  # noqa: A003 - pickle API name
        vid = getattr(obj, "vid", None)
        if vid is not None and self._external.get(vid) is obj:
            return ("vnode", vid)
        return None


class _DeltaUnpickler(pickle.Unpickler):
    def __init__(self, file, base_index: dict[int, "Vnode"]) -> None:
        super().__init__(file)
        self._base_index = base_index

    def persistent_load(self, pid):
        kind, vid = pid
        if kind != "vnode":
            raise SnapshotError(f"unknown persistent reference {pid!r}")
        try:
            return self._base_index[vid]
        except KeyError:
            raise SnapshotError(
                f"delta references vnode {vid} absent from the base snapshot"
            ) from None


def snapshot_kernel_delta(kernel: "Kernel", base: "Kernel", base_digest: str) -> bytes:
    """Serialize ``kernel`` as a delta against ``base`` (whose full
    snapshot has digest ``base_digest``).

    ``base`` must be a machine restored from (or snapshotting to) that
    digest; the encoder only trusts the digest string for naming, the
    diff itself runs against the ``base`` object."""
    if len(base_digest) != _DIGEST_LEN:
        raise SnapshotError(f"base digest must be {_DIGEST_LEN} hex chars")
    # The diff below walks the current tree; shared lazy-fork subtrees
    # must be private first (pickling would materialize anyway).
    kernel.vfs._materialize_all()
    external = _unchanged_subtrees(kernel.vfs.root, base.vfs.root)
    buf = io.BytesIO()
    try:
        _DeltaPickler(buf, external).dump(kernel)
    except Exception as err:
        raise SnapshotError(
            f"kernel state did not serialize: {type(err).__name__}: {err}"
        ) from err
    return (
        _MAGIC + bytes([SNAPSHOT_VERSION]) + _KIND_DELTA
        + base_digest.encode("ascii") + buf.getvalue()
    )


def apply_kernel_delta(data: bytes, base: "Kernel") -> "Kernel":
    """Rebuild a machine from a delta frame plus its base machine.

    **Consumes** ``base``: unchanged subtrees are adopted by object
    reference, so the base must not be used (or mutated) afterwards.
    """
    from repro.kernel.kernel import Kernel

    kind, body = _parse_frame(data)
    if kind != _KIND_DELTA:
        raise SnapshotError("not a delta snapshot")
    base_index = _index_vnodes(base.vfs.root)
    try:
        kernel = _DeltaUnpickler(io.BytesIO(body[_DIGEST_LEN:]), base_index).load()
    except SnapshotError:
        raise
    except Exception as err:
        raise SnapshotError(
            f"delta body did not decode: {type(err).__name__}: {err}"
        ) from err
    if not isinstance(kernel, Kernel):
        raise SnapshotError(f"delta decoded to {type(kernel).__name__}, not Kernel")
    # Canonicalize nc_parent backpointers: an adopted base vnode may
    # still point at the *base* version of a parent that shipped inline.
    new_index = _index_vnodes(kernel.vfs.root)
    for vp in new_index.values():
        parent = vp.nc_parent
        if parent is not None:
            canonical = new_index.get(parent.vid)
            if canonical is not None and canonical is not parent:
                vp.nc_parent = canonical
    return kernel


def restore_any(data: bytes, load_base: Callable[[str], bytes] | None = None) -> "Kernel":
    """Restore a snapshot of either kind.

    For delta frames, ``load_base`` maps the base digest to its full
    snapshot bytes (e.g. ``SnapshotStore.load``); chained deltas resolve
    recursively."""
    kind, _ = _parse_frame(data)
    if kind == _KIND_FULL:
        return restore_kernel(data)
    if load_base is None:
        raise SnapshotError("delta snapshot but no base loader provided")
    base = restore_any(load_base(delta_base_digest(data)), load_base)
    return apply_kernel_delta(data, base)
