"""Deterministic kernel snapshots: one booted machine as bytes.

The snapshot codec is what lets the batch engine scale past the GIL: a
booted template kernel is serialized **once**, shipped to worker
processes, and each worker restores a private machine and forks it per
job — the process-parallel analogue of handing every workload its own
cheaply-instantiated OS instance.

The codec is a thin, versioned wrapper over :mod:`pickle`; the real
contract lives in explicit ``__getstate__``/``__setstate__``/
``__reduce__`` hooks on the kernel's subsystems:

* :class:`~repro.kernel.vfs.Vnode` — slot-by-slot state; hard links and
  the name cache survive via the pickle memo, copy-on-write buffer flags
  cross verbatim;
* :class:`~repro.kernel.proc.ProcessTable` — pid watermark only (live
  processes are per-run state, as across :meth:`Kernel.fork`);
* :class:`~repro.kernel.sockets.Network` — registered services and the
  mutation watermark; live listeners and listen hooks are dropped;
* :class:`~repro.sandbox.session.SessionManager` — audit history and
  the sid watermark; live sessions are dropped;
* :class:`~repro.kernel.devices.CharDevice` — stateless devices reduce
  to a registered factory name; :class:`~repro.kernel.devices.TtyDevice`
  snapshots its capture buffers;
* :class:`~repro.kernel.kernel.Kernel` — fixed field order, stats sinks
  re-wired on restore.

**Determinism.**  Two machines with the same construction history (same
build steps, same run history) produce byte-identical snapshots: every
container in the state graph is either insertion-ordered (dicts, lists)
or explicitly ordered by the hooks, and wall-clock fields
(``boot_time``) are excluded.  ``snapshot_digest`` exposes that property
as a hash — the process backend's determinism tests gate on it.  (A
machine and its *restore* are behaviourally identical but may snapshot
to different bytes once — restoring normalises pickle's identity-based
string sharing — after which re-snapshotting is a fixed point.)

**What does not cross** (same list as :meth:`Kernel.fork`, documented
in README "Choosing a batch backend"): live processes, open sockets and
listeners, and entered sandbox sessions.  Snapshots, like forks, are
taken *between* runs, when none of that state is load-bearing.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel

#: Pinned pickle protocol: snapshots must mean the same bytes on every
#: interpreter the CI matrix runs (3.10–3.12), so the codec never floats
#: with ``pickle.HIGHEST_PROTOCOL``.
SNAPSHOT_PROTOCOL = 5

#: Bumped whenever the snapshot state layout changes incompatibly.
SNAPSHOT_VERSION = 1

_MAGIC = b"SHILLK"


class SnapshotError(Exception):
    """A snapshot could not be encoded or decoded."""


def snapshot_kernel(kernel: "Kernel") -> bytes:
    """Serialize one booted machine to self-describing bytes."""
    try:
        body = pickle.dumps(kernel, protocol=SNAPSHOT_PROTOCOL)
    except Exception as err:  # unpicklable state is a caller bug worth naming
        raise SnapshotError(
            f"kernel state did not serialize: {type(err).__name__}: {err}"
        ) from err
    return _MAGIC + bytes([SNAPSHOT_VERSION]) + body


def restore_kernel(data: bytes) -> "Kernel":
    """Rebuild a machine from :func:`snapshot_kernel` bytes.

    The restored kernel is indistinguishable from a fork of the source:
    same vnode tree, users, programs, MAC policies, op counters, audit
    history, and allocation watermarks — and therefore the same
    ``state_epoch``, so world-layer pristine checks keep holding.
    """
    from repro.kernel.kernel import Kernel

    if len(data) <= len(_MAGIC):
        raise SnapshotError("truncated snapshot")
    if data[: len(_MAGIC)] != _MAGIC:
        raise SnapshotError("not a kernel snapshot (bad magic)")
    version = data[len(_MAGIC)]
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version} != supported {SNAPSHOT_VERSION}"
        )
    try:
        kernel = pickle.loads(data[len(_MAGIC) + 1 :])
    except Exception as err:  # truncated/corrupt body: uphold the contract
        raise SnapshotError(
            f"snapshot body did not decode: {type(err).__name__}: {err}"
        ) from err
    if not isinstance(kernel, Kernel):
        raise SnapshotError(f"snapshot decoded to {type(kernel).__name__}, not Kernel")
    return kernel


def snapshot_digest(kernel: "Kernel") -> str:
    """SHA-256 of the machine's snapshot — equal digests mean "restores
    to an identical machine".  Deterministic for epoch-identical kernels
    (the codec excludes wall-clock state)."""
    return hashlib.sha256(snapshot_kernel(kernel)).hexdigest()
