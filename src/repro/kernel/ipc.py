"""POSIX and System V IPC.

Figure 7: both IPC families are **denied** in the SHILL language and in
capability-based sandboxes.  The registries below exist so that the
denial is observable behaviour (an unsandboxed process can use them; a
sandboxed one gets ``EACCES`` from the SHILL policy's ``ipc_check`` hook)
rather than a missing feature.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SysError
from repro.kernel import errno_

if TYPE_CHECKING:
    from repro.kernel.mac import MacFramework
    from repro.kernel.proc import Process


class IpcRegistry:
    """Named shared-memory segments (POSIX) and message queues (System V)."""

    def __init__(self, mac: "MacFramework") -> None:
        self._mac = mac
        self._shm: dict[str, bytearray] = {}
        self._msgq: dict[int, list[bytes]] = {}
        #: mutation counter (part of the kernel state epoch).
        self.mutations = 0

    def fork(self, mac: "MacFramework") -> "IpcRegistry":
        """A deep copy bound to the forked kernel's MAC framework."""
        new = IpcRegistry(mac)
        new._shm = {name: bytearray(data) for name, data in self._shm.items()}
        new._msgq = {key: list(msgs) for key, msgs in self._msgq.items()}
        new.mutations = self.mutations
        return new

    # -- POSIX shared memory --------------------------------------------------

    def shm_open(self, proc: "Process", name: str, create: bool) -> bytearray:
        self._mac.check("ipc_check", proc, "posixshm", "open", name)
        if name not in self._shm:
            if not create:
                raise SysError(errno_.ENOENT, f"shm {name!r}")
            self._shm[name] = bytearray()
            self.mutations += 1
        return self._shm[name]

    def shm_unlink(self, proc: "Process", name: str) -> None:
        self._mac.check("ipc_check", proc, "posixshm", "unlink", name)
        if name not in self._shm:
            raise SysError(errno_.ENOENT, f"shm {name!r}")
        del self._shm[name]
        self.mutations += 1

    # -- System V message queues -------------------------------------------------

    def msgget(self, proc: "Process", key: int) -> int:
        self._mac.check("ipc_check", proc, "sysvmsg", "get", str(key))
        if key not in self._msgq:
            self._msgq[key] = []
            self.mutations += 1
        return key

    def msgsnd(self, proc: "Process", key: int, data: bytes) -> None:
        self._mac.check("ipc_check", proc, "sysvmsg", "send", str(key))
        if key not in self._msgq:
            raise SysError(errno_.EINVAL, f"msgq {key}")
        self._msgq[key].append(data)
        self.mutations += 1

    def msgrcv(self, proc: "Process", key: int) -> bytes:
        self._mac.check("ipc_check", proc, "sysvmsg", "recv", str(key))
        queue = self._msgq.get(key)
        if not queue:
            raise SysError(errno_.EAGAIN, f"msgq {key} empty")
        self.mutations += 1
        return queue.pop(0)
