"""SHILL's standard library: filesys, io, contracts, wallets, native."""

from repro.stdlib.wallet import Wallet

__all__ = ["Wallet"]
