"""``shill/native``: native wallets — running executables without tears.

Section 3.1.4 describes the two key functions reproduced here:

* :func:`populate_native_wallet` — "Its arguments include path
  specifications for where to search for executables and libraries
  (i.e., colon-separated strings, analogous to environment variables
  $PATH and $LD_LIBRARY_PATH), and a directory capability to use as a
  root for the path specifications.  In addition, it takes a map ... from
  known libraries to the file resources those libraries depend on."

* :func:`pkg_native` — "takes a native wallet and a file name (of an
  executable file) and searches the path capabilities in the native
  wallet for a capability for the executable.  The function then invokes
  ldd to obtain a list of libraries that the executable depends on, and
  searches the library-path capabilities for capabilities for the
  required libraries. ... Function pkg_native then returns a function
  that encapsulates a call to exec with all capabilities needed to run
  the executable."

The ``ldd`` invocation really runs in a sandbox (it is one of the two
sandboxes the Download benchmark's profile attributes to ``pkg-native``),
and the returned wrapper carries a function contract — whose check, once
per sandbox, is what dominates contract-checking time in Figure 10.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import ShillRuntimeError, SysError
from repro.capability.caps import FsCap, PipeFactoryCap
from repro.contracts.blame import Blame
from repro.contracts.core import PredicateContract
from repro.contracts.functionctc import FunctionContract
from repro.contracts.library import (
    EXEC_FILE_PRIVS,
    READONLY_FILE_PRIVS,
    is_list_value,
    is_num_value,
)
from repro.sandbox.privileges import Priv, PrivSet
from repro.stdlib.filesys import resolve_chain
from repro.stdlib.wallet import Wallet

if TYPE_CHECKING:
    from repro.lang.runner import ShillRuntime

RTLD = "libexec/ld-elf.so.1"

#: Pre-seeded knowledge about executables whose dependencies go beyond
#: what ldd reports (the paper's grading case study discovered the OCaml
#: entries the hard way: "ocamlc reported that it was unable to read a
#: file in /usr/local/lib/ocaml").
DEFAULT_KNOWN_DEPS: dict[str, list[str]] = {
    "sh": ["dev/null"],
    "grade-sh": ["dev/null"],
    "ocamlc": ["usr/local/lib/ocaml"],
    "ocamlrun": ["usr/local/lib/ocaml"],
    "ocamlyacc": ["usr/local/lib/ocaml"],
    "cat": ["etc/locale.conf"],
    "grep": ["etc/locale.conf"],
    "curl": ["etc/resolv.conf", "etc/ssl/cert.pem"],
    "httpd": ["etc/apache"],
    "configure": ["usr/include"],
    "cc": ["usr/include", "usr/lib/crt1.o"],
}

#: Privileges for lookup-only prefix capabilities: resolution may pass
#: through, but nothing propagates to siblings.
LOOKUP_ONLY = PrivSet.of(Priv.LOOKUP).with_modifier(Priv.LOOKUP, ())

#: Privileges for library directories: the runtime linker may find and
#: read entries *directly inside* them — but the lookup modifier grants
#: no +lookup, so nothing propagates into subdirectories.  That is why
#: ocamlc's /usr/local/lib/ocaml needs an explicit known-dep entry, the
#: exact friction the paper's grading study reports.
LIBDIR_PRIVS = PrivSet.of(
    Priv.CONTENTS, Priv.STAT, Priv.PATH, Priv.READ, Priv.READ_SYMLINK
).adding(Priv.LOOKUP).with_modifier(Priv.LOOKUP, (Priv.READ, Priv.STAT, Priv.PATH))


def create_wallet(kind: str = "native") -> Wallet:
    return Wallet(kind)


def wallet_put(wallet: Wallet, key: str, value: Any):
    from repro.lang.values import VOID

    wallet.put_one(key, value)
    return VOID


def wallet_get(wallet: Wallet, key: str) -> list[Any]:
    return wallet.get(key)


def populate_native_wallet(
    wallet: Wallet,
    root: FsCap,
    path_spec: str,
    libpath_spec: str,
    pipe_factory: PipeFactoryCap | None = None,
    deps: dict[str, list[str]] | None = None,
) -> Wallet:
    """Fill ``wallet`` with the capabilities sandboxes need to run
    executables found under ``path_spec``, using ``root`` as the anchor
    for all resolution (capability safety is preserved: every capability
    in the wallet derives from ``root``).
    """
    if not isinstance(root, FsCap) or not root.is_dir_cap:
        raise ShillRuntimeError("populate_native_wallet needs a directory capability")
    if not wallet.kind:
        wallet.kind = "native"

    def add_prefixes(chain: list[FsCap]) -> None:
        # Everything up to (not including) the final element becomes a
        # lookup-only prefix capability.
        for cap in chain[:-1]:
            wallet.put_one("prefixes", cap.attenuated(LOOKUP_ONLY, blame=cap.blame))

    for directory in _split_spec(path_spec):
        chain = resolve_chain(root, directory)
        if not isinstance(chain, list):
            continue
        add_prefixes(chain)
        wallet.put_one("PATH", chain[-1])

    for directory in _split_spec(libpath_spec):
        chain = resolve_chain(root, directory)
        if not isinstance(chain, list):
            continue
        add_prefixes(chain)
        wallet.put_one("LD_LIBRARY_PATH", chain[-1].attenuated(LIBDIR_PRIVS, blame=chain[-1].blame))

    # The runtime linker itself.
    chain = resolve_chain(root, RTLD)
    if isinstance(chain, list):
        add_prefixes(chain)
        wallet.put_one("rtld", chain[-1].attenuated(READONLY_FILE_PRIVS, blame=chain[-1].blame))

    # Known extra dependencies, resolved from the root now so pkg_native
    # can hand them out later without ambient authority.
    dep_map = dict(DEFAULT_KNOWN_DEPS)
    if deps:
        dep_map.update(deps)
    for key, paths in sorted(dep_map.items()):
        for path in paths:
            chain = resolve_chain(root, path)
            if not isinstance(chain, list):
                continue
            add_prefixes(chain)
            dep = chain[-1]
            # Dependencies are *read* dependencies: attenuate so a program's
            # config/library needs never smuggle write authority in.  The
            # exception is character devices (/dev/null and friends), which
            # programs legitimately write to.
            from repro.kernel.vfs import Vnode

            if isinstance(dep.obj, Vnode) and dep.obj.is_chardev:
                privs = PrivSet.of(Priv.READ, Priv.WRITE, Priv.APPEND, Priv.STAT, Priv.PATH)
            elif dep.is_dir_cap:
                privs = LIBDIR_PRIVS
            else:
                privs = READONLY_FILE_PRIVS
            wallet.put_one(f"deps:{key}", dep.attenuated(privs, blame=dep.blame))

    if pipe_factory is not None:
        wallet.put_one("pipe_factory", pipe_factory)
    return wallet


def _split_spec(spec: str) -> list[str]:
    return [part.strip("/") for part in spec.split(":") if part.strip("/")]


def make_pkg_native(runtime: "ShillRuntime"):
    """Build the ``pkg_native`` export bound to a runtime."""

    def pkg_native(name: str, wallet: Wallet):
        if not isinstance(wallet, Wallet) or wallet.kind != "native":
            raise ShillRuntimeError("pkg_native expects a native wallet")
        execcap = _find_executable(name, wallet)
        libs = _ldd_in_sandbox(runtime, execcap, wallet)
        libcaps = [_find_library(lib, wallet) for lib in libs]
        libcaps = [cap for cap in libcaps if cap is not None]
        # Order matters: the sandbox's no-amplification rule keeps the
        # FIRST grant's derive modifier on conflicts, so the wide grants
        # (library directories, whose lookups must propagate +read to
        # their entries) come before the lookup-only prefix capabilities.
        extras: list[Any] = list(wallet.get("LD_LIBRARY_PATH"))
        extras.extend(wallet.get("rtld"))
        extras.extend(libcaps)
        extras.extend(wallet.get(f"deps:{name}"))
        for lib in libs:
            extras.extend(wallet.get(f"deps:{lib}"))
        extras.extend(wallet.get("prefixes"))

        def wrapper(args: list, stdin=None, stdout=None, stderr=None, extras_extra=None, **kw):
            more = list(extras_extra or [])
            if "extras" in kw:
                more.extend(kw.pop("extras"))
            return runtime.exec_builtin(
                execcap,
                [name] + list(args),
                stdin=stdin,
                stdout=stdout,
                stderr=stderr,
                extras=extras + more,
                **kw,
            )

        wrapper.display_name = f"pkg_native({name})"
        # The contract on pkg_native's result — checked once per sandbox;
        # Figure 10 attributes ~92% of contract-checking time to it.
        contract = FunctionContract(
            [("args", PredicateContract(is_list_value, "is_list"))],
            PredicateContract(is_num_value, "is_num (exit status)"),
        )
        return contract.check(
            wrapper, Blame("pkg_native", f"caller of pkg_native({name})")
        )

    return pkg_native


def _find_executable(name: str, wallet: Wallet) -> FsCap:
    for dircap in wallet.get("PATH"):
        try:
            child = dircap.lookup(name)
        except SysError:
            continue
        if child.is_file_cap:
            return child.attenuated(
                EXEC_FILE_PRIVS.adding(Priv.PATH), blame=child.blame
            )
    raise ShillRuntimeError(f"pkg_native: executable {name!r} not found in wallet PATH")


def _find_library(lib: str, wallet: Wallet) -> FsCap | None:
    for dircap in wallet.get("LD_LIBRARY_PATH"):
        try:
            child = dircap.lookup(lib)
        except SysError:
            continue
        return child.attenuated(READONLY_FILE_PRIVS, blame=child.blame)
    return None


def _ldd_in_sandbox(runtime: "ShillRuntime", execcap: FsCap, wallet: Wallet) -> list[str]:
    """Run ldd on the executable inside a sandbox and parse its output.

    Falls back to an empty dependency list when the wallet has no pipe
    factory to capture output with (static binaries need none anyway).
    """
    factory = wallet.get_one("pipe_factory")
    ldd_cap = None
    for dircap in wallet.get("PATH"):
        try:
            ldd_cap = dircap.lookup("ldd")
            break
        except SysError:
            continue
    if ldd_cap is None or factory is None:
        # No ldd or no way to capture its output: trust the known-deps map.
        return []
    read_end, write_end = factory.create()
    extras: list[Any] = list(wallet.get("rtld")) + list(wallet.get("prefixes"))
    extras.extend(wallet.get("LD_LIBRARY_PATH"))
    extras.append(execcap)
    status = runtime.exec_builtin(
        ldd_cap.attenuated(EXEC_FILE_PRIVS.adding(Priv.PATH), blame=ldd_cap.blame),
        ["ldd", execcap],
        stdout=write_end,
        extras=extras,
    )
    if status != 0:
        return []
    output = read_end.read().decode()
    libs: list[str] = []
    for line in output.splitlines():
        line = line.strip()
        if line and not line.endswith(":"):
            libs.append(line.split()[0])
    return libs


def make_exports(runtime: "ShillRuntime") -> dict[str, Any]:
    return {
        "create_wallet": create_wallet,
        "wallet_put": wallet_put,
        "wallet_get": wallet_get,
        "populate_native_wallet": populate_native_wallet,
        "pkg_native": make_pkg_native(runtime),
    }
