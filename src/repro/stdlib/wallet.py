"""Capability wallets.

Section 2.4.1: "Conceptually, a capability wallet is a map from strings
to lists of capabilities" introduced "to automate and simplify the
discovery, packaging, and management of capabilities that sandboxes need
to run executables."

A wallet is itself a capability-like value: it cannot be forged from
strings, only built from capabilities the user already holds, so "despite
its path-based interface, a native wallet is still capability safe."
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.capability.caps import Capability


class Wallet(Capability):
    """A map from string keys to lists of capabilities (or other values).

    ``kind`` tags the wallet's flavour ("native" for wallets built by
    :func:`repro.stdlib.native.populate_native_wallet`; user scripts may
    define other flavours, e.g. the grade contract's ``ocaml_wallet``).
    """

    def __init__(self, kind: str = "") -> None:
        self.kind = kind
        self._entries: dict[str, list[Any]] = {}

    def put(self, key: str, values: Iterable[Any]) -> None:
        self._entries.setdefault(key, []).extend(values)

    def put_one(self, key: str, value: Any) -> None:
        self._entries.setdefault(key, []).append(value)

    def get(self, key: str) -> list[Any]:
        return list(self._entries.get(key, []))

    def get_one(self, key: str) -> Any | None:
        values = self._entries.get(key)
        return values[0] if values else None

    def has(self, key: str) -> bool:
        return bool(self._entries.get(key))

    def keys(self) -> list[str]:
        return sorted(self._entries)

    def all_values(self) -> list[Any]:
        out: list[Any] = []
        for key in sorted(self._entries):
            out.extend(self._entries[key])
        return out

    def __repr__(self) -> str:
        kind = self.kind or "wallet"
        return f"<{kind}-wallet keys={self.keys()}>"
