"""``shill/io``: printf-like wrappers around write and append.

Section 3.1.4: "The io script provides printf-like wrappers around write
and append for formatted output."  The format directive is ``~a``
(display), following Racket's ``format``.
"""

from __future__ import annotations

from typing import Any

from repro.capability.caps import FsCap
from repro.lang.values import VOID, shill_repr


def _format(fmt: str, args: tuple[Any, ...]) -> str:
    out: list[str] = []
    i = 0
    argi = 0
    while i < len(fmt):
        if fmt.startswith("~a", i):
            if argi >= len(args):
                raise ValueError("format: too few arguments for ~a directives")
            out.append(shill_repr(args[argi]))
            argi += 1
            i += 2
        elif fmt.startswith("~n", i):
            out.append("\n")
            i += 2
        elif fmt.startswith("~~", i):
            out.append("~")
            i += 2
        else:
            out.append(fmt[i])
            i += 1
    if argi != len(args):
        raise ValueError("format: too many arguments")
    return "".join(out)


def writef(cap: FsCap, fmt: str, *args: Any):
    cap.write(_format(fmt, args).encode())
    return VOID


def appendf(cap: FsCap, fmt: str, *args: Any):
    cap.append(_format(fmt, args).encode())
    return VOID


EXPORTS = {
    "writef": writef,
    "appendf": appendf,
}
