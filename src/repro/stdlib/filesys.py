"""``shill/filesys``: capability-based path emulation.

Section 3.1.4: "The filesys script provides capability-based functions
that emulate common tasks such as resolving paths and symlinks."  All
functions consume capabilities — never global names — so they stay
capability safe.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SysError
from repro.capability.caps import FsCap
from repro.lang.values import SysErrorVal


def resolve(cap: FsCap, relpath: str) -> Any:
    """Resolve a multi-component relative path through repeated
    single-component lookups, following symlinks found along the way
    (each hop re-resolved from the current directory capability).
    Returns a capability or a syserror value.
    """
    try:
        node = cap
        for comp in [c for c in relpath.split("/") if c]:
            node = node.lookup(comp)
        return node
    except SysError as err:
        return SysErrorVal(err.name, str(err))


def resolve_chain(cap: FsCap, relpath: str) -> Any:
    """Like :func:`resolve` but returns the list of capabilities for every
    directory along the way (the final element is the target).  Native
    wallets use this to package lookup-only prefix capabilities."""
    try:
        chain = [cap]
        node = cap
        for comp in [c for c in relpath.split("/") if c]:
            node = node.lookup(comp)
            chain.append(node)
        return chain
    except SysError as err:
        return SysErrorVal(err.name, str(err))


def exists(cap: FsCap, name: str) -> bool:
    try:
        cap.lookup(name)
        return True
    except SysError:
        return False


EXPORTS = {
    "resolve": resolve,
    "resolve_chain": resolve_chain,
    "exists": exists,
}
