"""repro — a reproduction of "SHILL: A Secure Shell Scripting Language"
(Moore, Dimoulas, King, Chong; OSDI 2014).

Layers (bottom-up):

* :mod:`repro.kernel` — simulated FreeBSD-like kernel (VFS, MAC framework,
  processes, pipes, sockets) with the paper's new syscalls;
* :mod:`repro.sandbox` — the SHILL MAC policy module: sessions and
  privilege maps;
* :mod:`repro.capability` / :mod:`repro.contracts` — language-level
  capabilities and the contract system (proxies, blame, polymorphism);
* :mod:`repro.lang` — the SHILL language: capability-safe and ambient
  dialects;
* :mod:`repro.stdlib` — filesys/io/contracts/native-wallet libraries;
* :mod:`repro.programs` / :mod:`repro.world` — simulated executables and
  the world image they live in;
* :mod:`repro.casestudies` / :mod:`repro.bench` — the paper's four case
  studies and the benchmark harness reproducing Figures 7/9/10/11.
"""

__version__ = "1.0.0"
