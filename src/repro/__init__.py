"""repro — a reproduction of "SHILL: A Secure Shell Scripting Language"
(Moore, Dimoulas, King, Chong; OSDI 2014).

**Public surface.**  Applications use :mod:`repro.api` — and only
:mod:`repro.api`: a :class:`~repro.api.World` builder boots the
deterministic world image, a :class:`~repro.api.Session` runs SHILL
scripts, a :class:`~repro.api.Sandbox` runs one command under a policy
file, and every run returns a frozen :class:`~repro.api.RunResult`.
The names below are re-exported here for convenience::

    from repro import World
    result = World().for_user("alice").with_jpeg_samples().boot() \\
        .session().run_ambient(src)

**Internal layers** (bottom-up; importable, but not API-stable):

* :mod:`repro.kernel` — simulated FreeBSD-like kernel (VFS, MAC framework,
  processes, pipes, sockets) with the paper's new syscalls;
* :mod:`repro.sandbox` — the SHILL MAC policy module: sessions and
  privilege maps;
* :mod:`repro.capability` / :mod:`repro.contracts` — language-level
  capabilities and the contract system (proxies, blame, polymorphism);
* :mod:`repro.lang` — the SHILL language: capability-safe and ambient
  dialects, and the :class:`~repro.lang.runner.ShillRuntime` engine that
  :class:`~repro.api.Session` drives;
* :mod:`repro.stdlib` — filesys/io/contracts/native-wallet libraries;
* :mod:`repro.programs` / :mod:`repro.world` — simulated executables and
  the world-image primitives :class:`~repro.api.World` builds on;
* :mod:`repro.casestudies` / :mod:`repro.bench` — the paper's four case
  studies and the benchmark harness reproducing Figures 7/9/10/11, both
  written against :mod:`repro.api`.
"""

__version__ = "1.1.0"

_API_NAMES = ("World", "Session", "Sandbox", "RunResult", "ScriptRegistry")

__all__ = ["__version__", *_API_NAMES]


def __getattr__(name: str):
    # Lazy so `import repro` stays cheap and cycle-free for the internal
    # layers that import repro.* during their own initialisation.
    if name in _API_NAMES:
        import repro.api as _api

        return getattr(_api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
