"""Command-line interface.

Usage::

    python -m repro demo
        Boot a world and run the paper's running example end to end.

    python -m repro run AMBIENT.ambient [--cap SCRIPT.cap ...] [--user U]
        Run an ambient SHILL script from the host filesystem against a
        freshly booted world image.  Capability-safe scripts it requires
        are registered from the --cap files (by basename).

    python -m repro shill-run POLICY_FILE -- CMD [ARGS...]
        The section 3.2.2 debugging tool: run one command in a sandbox
        configured from a policy file.  Add --debug to auto-grant and
        report the privileges the command needed.
"""

from __future__ import annotations

import argparse
import pathlib
import sys as _hostsys

from repro.lang.runner import ShillRuntime
from repro.world import add_grading_fixture, add_jpeg_samples, build_world


def cmd_demo(_args: argparse.Namespace) -> int:
    kernel = build_world()
    add_jpeg_samples(kernel, owner="alice")
    runtime = ShillRuntime(kernel, user="alice", cwd="/home/alice")
    runtime.register_script("find_jpg.cap", _DEMO_FIND_JPG)
    runtime.run_ambient(_DEMO_AMBIENT, "demo.ambient")
    print(runtime.tty.text, end="")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    kernel = build_world()
    if args.fixture == "grading":
        add_grading_fixture(kernel)
    elif args.fixture == "jpeg":
        add_jpeg_samples(kernel, owner=args.user)
    runtime = ShillRuntime(kernel, user=args.user, cwd=f"/home/{args.user}"
                           if args.user != "root" else "/root")
    for cap_path in args.cap:
        path = pathlib.Path(cap_path)
        runtime.register_script(path.name, path.read_text())
    source = pathlib.Path(args.script).read_text()
    runtime.run_ambient(source, pathlib.Path(args.script).name)
    print(runtime.tty.text, end="")
    return 0


def cmd_shill_run(args: argparse.Namespace) -> int:
    from repro.kernel.pipes import make_pipe
    from repro.sandbox.shilld import run_with_policy

    kernel = build_world()
    policy_text = pathlib.Path(args.policy).read_text()
    out_r, out_w = make_pipe()
    err_r, err_w = make_pipe()
    result = run_with_policy(
        kernel, args.user, policy_text, args.cmd_argv,
        debug=args.debug, stdout=out_w, stderr=err_w,
    )
    _hostsys.stdout.write(bytes(out_r.pipe.buffer).decode(errors="replace"))
    _hostsys.stderr.write(bytes(err_r.pipe.buffer).decode(errors="replace"))
    if args.debug and result.auto_granted:
        print("-- privileges auto-granted in debug mode --")
        for line in result.auto_granted:
            print("  " + line)
    elif result.log.denials():
        print("-- denied operations --")
        for entry in result.log.denials():
            print("  " + entry.format())
    return result.status


_DEMO_FIND_JPG = """\
#lang shill/cap
provide find_jpg :
  {cur : dir(+contents, +lookup, +path) \\/ file(+path),
   out : file(+append)} -> void;
find_jpg = fun(cur, out) {
  if is_file(cur) && has_ext(cur, "jpg") then
    append(out, path(cur) + "\\n");
  if is_dir(cur) then
    for name in contents(cur) {
      child = lookup(cur, name);
      if !is_syserror(child) then find_jpg(child, out);
    }
}
"""

_DEMO_AMBIENT = """\
#lang shill/ambient
require "find_jpg.cap";
docs = open_dir("~/Documents");
find_jpg(docs, stdout);
"""


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="run the paper's running example")

    run_p = sub.add_parser("run", help="run an ambient script from the host FS")
    run_p.add_argument("script")
    run_p.add_argument("--cap", action="append", default=[],
                       help="capability-safe script file(s) to register")
    run_p.add_argument("--user", default="alice")
    run_p.add_argument("--fixture", choices=["none", "jpeg", "grading"], default="jpeg")

    sr_p = sub.add_parser("shill-run", help="run one command under a policy file")
    sr_p.add_argument("policy")
    sr_p.add_argument("cmd_argv", nargs="+", metavar="command")
    sr_p.add_argument("--user", default="root")
    sr_p.add_argument("--debug", action="store_true")

    args = parser.parse_args(argv)
    if args.command == "demo":
        return cmd_demo(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "shill-run":
        return cmd_shill_run(args)
    parser.error("unknown command")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
