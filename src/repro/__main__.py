"""Command-line interface (a thin shell over :mod:`repro.api`).

Usage::

    python -m repro demo
        Boot a world and run the paper's running example end to end.

    python -m repro run AMBIENT.ambient [--cap SCRIPT.cap ...] [--user U]
        Run an ambient SHILL script from the host filesystem against a
        freshly booted world image.  Capability-safe scripts it requires
        are registered from the --cap files (by basename).

    python -m repro shill-run POLICY_FILE -- CMD [ARGS...]
        The section 3.2.2 debugging tool: run one command in a sandbox
        configured from a policy file.  Add --debug to auto-grant and
        report the privileges the command needed.

    python -m repro batch AMBIENT.ambient [MORE.ambient ...] [--executor E]
        Run many ambient scripts, each against its own copy-on-write
        fork of one world image (boot cost is paid once).  --executor
        picks the execution strategy: sequential (default), thread (a
        thread pool with per-job kernels), process (kernel snapshots
        shipped to worker processes), or store (worker processes boot
        from a persistent on-disk snapshot store; see --store).
        --backend is the deprecated spelling of --executor.  Results
        are byte-identical whatever the strategy.  --json emits a
        machine-readable summary with the deterministic kernel op
        counts per job.  An engine/worker failure (not a script error)
        prints the failing job to stderr and exits 3.

    python -m repro lint PATH [PATH ...] [--format json] [--corpus]
        Statically lint SHILL scripts without executing them: infer each
        script's capability footprint and flag least-privilege gaps
        (over-granted contracts), guaranteed runtime violations
        (under-privileged scripts), shadowed contract clauses, and more
        (rule catalog: docs/linting.md).  Directories are searched for
        *.cap / *.ambient; --corpus adds the shipped demo + case-study
        scripts.  Exits 1 if any error-severity diagnostic fired.

    python -m repro bench profile BENCH/CONFIG [--json]
        Run one Figure 9 cell and report per-syscall / per-vnode-op /
        per-MAC-hook attribution, dcache hit rates, and the full vs
        delta snapshot payload sizes the executors would ship.
        --list names every profileable cell.

    python -m repro store ls [--store DIR]
    python -m repro store gc [--keep N] [--store DIR]
        Inspect / evict the persistent snapshot store the store
        executor boots from (default directory: $REPRO_STORE, else the
        user cache dir).

    python -m repro agent --store DIR --port P [--host H]
        Serve one worker host of a sharded batch cluster: a cluster is
        just N agents.  Pair with
        `python -m repro batch ... --executor remote --hosts H1:P1,H2:P2`
        on the coordinator; snapshot blobs ship by digest and are
        fetched from the agent's own store when it is warm.

    python -m repro serve --store DIR --port P [--rate R] [--policy P]
        Serve a long-lived batch gateway over a dynamic agent fleet:
        agents join with `python -m repro agent --announce HOST:PORT`
        (and rejoin the same way after a restart), clients submit with
        `python -m repro batch ... --executor serve --gateway HOST:PORT`
        or a ServeExecutor.  The gateway owns admission control
        (per-user rate limits, a bounded queue, typed BUSY/RETRY-AFTER
        backpressure) and the scheduling policy.  See docs/serving.md.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys as _hostsys

from repro.api import (
    BATCH_BACKENDS,
    EXECUTOR_CHOICES,
    FIXTURE_CHOICES,
    Batch,
    BatchExecutionError,
    ScriptRegistry,
    SnapshotStore,
    World,
    create_executor,
)

#: Exit status for engine/worker failures (script failures exit with the
#: script's own status, like a shell).
EXIT_BATCH_ERROR = 3


def cmd_demo(_args: argparse.Namespace) -> int:
    world = World().for_user("alice").with_fixture("jpeg").boot()
    session = world.session(scripts=ScriptRegistry().add("find_jpg.cap", _DEMO_FIND_JPG))
    result = session.run_ambient(_DEMO_AMBIENT, "demo.ambient")
    print(result.stdout, end="")
    if result.stderr:
        _hostsys.stderr.write(result.stderr)
    return result.status


def cmd_run(args: argparse.Namespace) -> int:
    # create=False: a typo'd --user must fail, not run as a fresh user.
    world = World().for_user(args.user, create=False).with_fixture(args.fixture).boot()
    registry = ScriptRegistry()
    for cap_path in args.cap:
        registry.add_file(cap_path)
    session = world.session(scripts=registry)
    result = session.run_ambient_file(args.script)
    print(result.stdout, end="")
    if result.stderr:
        _hostsys.stderr.write(result.stderr)
    return result.status


def cmd_shill_run(args: argparse.Namespace) -> int:
    world = World().for_user(args.user, create=False).boot()
    policy_text = pathlib.Path(args.policy).read_text()
    sandbox = world.sandbox(policy_text, debug=args.debug)
    result = sandbox.exec(args.cmd_argv)
    _hostsys.stdout.write(result.stdout)
    _hostsys.stderr.write(result.stderr)
    if args.debug and result.auto_granted:
        print("-- privileges auto-granted in debug mode --")
        for line in result.auto_granted:
            print("  " + line)
    elif result.denials:
        print("-- denied operations --")
        for line in result.denial_lines():
            print("  " + line)
    return result.status


def cmd_batch(args: argparse.Namespace) -> int:
    world = World().for_user(args.user, create=False).with_fixture(args.fixture)
    registry = ScriptRegistry()
    for cap_path in args.cap:
        registry.add_file(cap_path)
    batch = Batch(world, scripts=registry, cache=not args.no_cache,
                  lint=args.lint)
    for script in args.scripts:
        path = pathlib.Path(script)
        batch.add(path.read_text(), name=path.name)
    name = args.executor or args.backend
    if name is None:
        name = "thread" if args.parallel else "sequential"
    if args.store is not None and name not in ("store", "remote", "serve"):
        _hostsys.stderr.write(
            "repro batch: --store only applies to --executor "
            "store/remote/serve\n")
        return 2
    hosts = [spec for spec in (args.hosts or "").split(",") if spec]
    if (hosts or args.policy is not None) and name != "remote":
        _hostsys.stderr.write(
            "repro batch: --hosts/--policy only apply to --executor remote\n")
        return 2
    if name == "remote" and not hosts:
        _hostsys.stderr.write(
            "repro batch: --executor remote needs --hosts HOST:PORT[,...] "
            "(start agents with `python -m repro agent`)\n")
        return 2
    if args.gateway is not None and name != "serve":
        _hostsys.stderr.write(
            "repro batch: --gateway only applies to --executor serve\n")
        return 2
    if name == "serve" and not args.gateway:
        _hostsys.stderr.write(
            "repro batch: --executor serve needs --gateway HOST:PORT "
            "(start one with `python -m repro serve`)\n")
        return 2
    executor = create_executor(name, workers=args.workers, store=args.store,
                               hosts=hosts, policy=args.policy,
                               gateway=args.gateway)
    try:
        with executor:
            results = batch.run(executor=executor)
    except BatchExecutionError as err:
        # Not a script failure (those come back as per-job results):
        # the engine or a worker died, or pre-dispatch lint rejected a
        # job.  Name the job, then whatever detail the error carries —
        # the original traceback, or (lint rejections have none) the
        # full diagnostic list — and exit with the reserved status.
        _hostsys.stderr.write(f"repro batch: {err}\n")
        if err.traceback_text:
            _hostsys.stderr.write(err.traceback_text)
        for diag in getattr(err, "diagnostics", ()):
            _hostsys.stderr.write(f"  {diag.format()}\n")
        return EXIT_BATCH_ERROR

    if args.verbose:
        _hostsys.stderr.write(_boot_note(executor) + "\n")
        # Per-job cache verdicts (same vocabulary the gateway's JSONL
        # request log uses): hit / miss / invalidated-by:<prefix> /
        # uncacheable:<flag>.
        verdicts = batch.verdicts
        for index, job in enumerate(batch.jobs):
            verdict = verdicts.get(index, "miss")
            _hostsys.stderr.write(
                f"repro batch: {job.name}: cache {verdict}\n")
        report = batch.cache_report
        _hostsys.stderr.write(
            f"repro batch: cache report: {report['hits']} hits, "
            f"{report['misses']} misses, {report['invalidated']} "
            f"invalidated, {report['uncacheable']} uncacheable\n")
        for event in batch.audit_events:
            _hostsys.stderr.write(f"repro batch: audit: {event}\n")
    if args.json:
        print(json.dumps([
            {
                "script": job.name,
                "status": result.status,
                "stdout": result.stdout,
                "stderr": result.stderr,
                "sandboxes": result.sandbox_count,
                "ops": dict(result.ops),
            }
            for job, result in zip(batch.jobs, results)
        ], indent=2))
    else:
        for job, result in zip(batch.jobs, results):
            print(f"== {job.name} (status {result.status}) ==")
            print(result.stdout, end="")
            if result.stderr:
                _hostsys.stderr.write(result.stderr)
        stats = batch.stats
        print(f"-- {stats['jobs']} jobs, {stats['forks']} world forks, "
              f"{stats['cache_hits']} result-cache hits --")
    return max((r.status for r in results), default=0)


def _boot_note(executor) -> str:
    """One line for ``batch --verbose``: where this run's workers got
    their machine — ``memory`` (in-process snapshot / forks), ``store``
    (a full blob from the persistent store), or ``delta`` (an
    incremental blob resolved against its base chain)."""
    store = getattr(executor, "store", None)
    info = getattr(executor, "boot_info", None)
    if store is None:
        return (f"repro batch: boot source = memory ({executor.name} "
                "executor; workers restore an in-process snapshot)")
    digest = None
    template = getattr(executor, "_template", None)
    if template is not None:
        digest = getattr(executor, "_snapshots", {}).get(template.token)
    if digest is None and info is not None:
        digest = info.snapshot
    if digest is not None and store.has(digest):
        if store.is_delta(digest):
            from repro.kernel.serialize import delta_base_digest

            base = delta_base_digest(store.load(digest))
            return (f"repro batch: boot source = delta (blob {digest[:12]} "
                    f"against base {base[:12]}, store {store.root})")
        return (f"repro batch: boot source = store (full blob {digest[:12]}, "
                f"store {store.root})")
    return ("repro batch: boot source = "
            f"{info.source if info is not None else 'unknown'}")


def cmd_bench(args: argparse.Namespace) -> int:
    # Imported here: the profile pulls in every case-study world builder,
    # which the other subcommands do not need at startup.
    from repro.bench.profile import list_cells, profile_cell, render_profile

    if args.list or not args.cell:
        for cell in list_cells():
            print(cell)
        return 0 if args.list else 2
    bench, sep, config = args.cell.partition("/")
    if not sep:
        _hostsys.stderr.write(
            "repro bench profile: cell must be BENCH/CONFIG "
            "(see --list)\n")
        return 2
    try:
        report = profile_cell(bench, config)
    except KeyError as err:
        _hostsys.stderr.write(f"repro bench profile: {err.args[0]}\n")
        return 2
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_profile(report))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    # Imported here: the analyzer pulls in the parser and contract
    # elaborator, which the other subcommands do not need at startup.
    from repro.analysis import lint_scripts, render_human, render_json

    reports = {}
    if args.paths:
        files: list[pathlib.Path] = []
        for raw in args.paths:
            path = pathlib.Path(raw)
            if path.is_dir():
                files.extend(sorted(
                    p for pat in ("*.cap", "*.ambient") for p in path.rglob(pat)))
            elif path.exists():
                files.append(path)
            else:
                _hostsys.stderr.write(
                    f"repro lint: no such file or directory: {raw}\n")
                return 2
        scripts = {str(p): p.read_text() for p in files}
        # Requires name scripts by basename, the same way `repro run
        # --cap` registers them.
        registry = {pathlib.Path(name).name: source
                    for name, source in scripts.items() if name.endswith(".cap")}
        reports.update(lint_scripts(scripts, registry=registry))
    if args.corpus:
        from repro.analysis.corpus import lint_corpus

        reports.update(lint_corpus())
    if not reports:
        _hostsys.stderr.write(
            "repro lint: nothing to lint (pass script paths, or --corpus)\n")
        return 2
    if args.format == "json":
        print(json.dumps(render_json(reports), indent=2))
    else:
        print(render_human(reports))
    return 1 if any(r.errors for r in reports.values()) else 0


def cmd_store(args: argparse.Namespace) -> int:
    store = SnapshotStore(args.store)
    if args.store_command == "ls":
        entries = store.entries()
        for entry in entries:
            print(f"{entry.digest[:16]}  {entry.size:>10}B  worlds={len(entry.worlds)}")
        total = sum(entry.size for entry in entries)
        print(f"total: {len(entries)} blob(s), {total} bytes, {store.root}")
        return 0
    evicted = store.gc(keep=args.keep)
    print(f"evicted {len(evicted)} blob(s), {len(store)} kept, {store.root}")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    # Imported here: the fuzzer pulls in hypothesis, which the other
    # subcommands do not need at startup.
    from repro.fuzz import run_fuzz

    checked = [0]

    def on_example(_scenario) -> None:
        checked[0] += 1
        if args.verbose:
            _hostsys.stderr.write(f"repro fuzz: scenario {checked[0]}/{args.runs}\n")

    report = run_fuzz(runs=args.runs, seed=args.seed, on_example=on_example)
    if report.ok:
        print(f"repro fuzz: ok — {report.runs} scenario(s) @ seed {report.seed}, "
              "4 invariants each")
        return 0
    _hostsys.stderr.write(f"repro fuzz: FAILED — {report.failure}\n")
    if report.falsifying is not None:
        path = report.write_falsifying(args.artifact)
        _hostsys.stderr.write(
            f"repro fuzz: shrunk falsifying example written to {path}\n")
    return 1


_DEMO_FIND_JPG = """\
#lang shill/cap
provide find_jpg :
  {cur : dir(+contents, +lookup, +path) \\/ file(+path),
   out : file(+append)} -> void;
find_jpg = fun(cur, out) {
  if is_file(cur) && has_ext(cur, "jpg") then
    append(out, path(cur) + "\\n");
  if is_dir(cur) then
    for name in contents(cur) {
      child = lookup(cur, name);
      if !is_syserror(child) then find_jpg(child, out);
    }
}
"""

_DEMO_AMBIENT = """\
#lang shill/ambient
require "find_jpg.cap";
docs = open_dir("~/Documents");
find_jpg(docs, stdout);
"""


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="run the paper's running example")

    run_p = sub.add_parser("run", help="run an ambient script from the host FS")
    run_p.add_argument("script")
    run_p.add_argument("--cap", action="append", default=[],
                       help="capability-safe script file(s) to register")
    run_p.add_argument("--user", default="alice")
    run_p.add_argument("--fixture", choices=list(FIXTURE_CHOICES), default="jpeg")

    sr_p = sub.add_parser("shill-run", help="run one command under a policy file")
    sr_p.add_argument("policy")
    sr_p.add_argument("cmd_argv", nargs="+", metavar="command")
    sr_p.add_argument("--user", default="root")
    sr_p.add_argument("--debug", action="store_true")

    batch_p = sub.add_parser("batch", help="run many ambient scripts over forked worlds")
    batch_p.add_argument("scripts", nargs="+", metavar="script")
    batch_p.add_argument("--cap", action="append", default=[],
                         help="capability-safe script file(s) to register")
    batch_p.add_argument("--user", default="alice")
    batch_p.add_argument("--fixture", choices=list(FIXTURE_CHOICES), default="jpeg")
    batch_p.add_argument("--executor", choices=list(EXECUTOR_CHOICES), default=None,
                         help="execution strategy (default: sequential); "
                              "'process' fans kernel snapshots out to worker "
                              "processes, 'store' boots workers from the "
                              "persistent snapshot store (see --store)")
    batch_p.add_argument("--backend", choices=list(BATCH_BACKENDS), default=None,
                         help="deprecated spelling of --executor")
    batch_p.add_argument("--parallel", action="store_true",
                         help="deprecated spelling of --executor thread")
    batch_p.add_argument("--store", default=None, metavar="DIR",
                         help="snapshot store directory for --executor "
                              "store/remote (default: $REPRO_STORE, else the "
                              "user cache dir)")
    batch_p.add_argument("--hosts", default=None, metavar="HOST:PORT[,...]",
                         help="agent addresses for --executor remote "
                              "(start them with `python -m repro agent`)")
    batch_p.add_argument("--gateway", default=None, metavar="HOST:PORT",
                         help="gateway address for --executor serve "
                              "(start one with `python -m repro serve`)")
    from repro.remote.hostpool import SHARDING_POLICIES

    batch_p.add_argument("--policy", choices=list(SHARDING_POLICIES),
                         default=None,
                         help="sharding policy for --executor remote "
                              "(default: round-robin)")
    batch_p.add_argument("--workers", type=int, default=None,
                         help="worker/dispatch width (default: each "
                              "executor's own — 4, or the host count for "
                              "--executor remote)")
    batch_p.add_argument("--json", action="store_true",
                         help="machine-readable per-job summary")
    batch_p.add_argument("--verbose", action="store_true",
                         help="print a one-line worker boot-source note "
                              "(memory/store/delta) on stderr")
    batch_p.add_argument("--no-cache", action="store_true",
                         help="bypass the (world, script, user) result cache")
    batch_p.add_argument("--lint", choices=("off", "warn", "strict"),
                         default="off",
                         help="pre-dispatch static lint: 'warn' records each "
                              "job's inferred capability footprint, 'strict' "
                              "additionally rejects statically-doomed jobs "
                              "before any fork (exit 3)")

    lint_p = sub.add_parser(
        "lint", help="statically lint SHILL scripts (no execution)")
    lint_p.add_argument("paths", nargs="*", metavar="path",
                        help="script files, or directories searched for "
                             "*.cap / *.ambient")
    lint_p.add_argument("--format", choices=("human", "json"), default="human",
                        help="report format (default: human)")
    lint_p.add_argument("--corpus", action="store_true",
                        help="also lint the shipped demo + case-study scripts")

    bench_p = sub.add_parser(
        "bench", help="benchmark tooling (op-attribution profiles)")
    bench_sub = bench_p.add_subparsers(dest="bench_command", required=True)
    prof_p = bench_sub.add_parser(
        "profile",
        help="run one fig9 cell; report per-syscall/vnode-op/MAC-hook "
             "attribution and snapshot payload sizes")
    prof_p.add_argument("cell", nargs="?", metavar="BENCH/CONFIG",
                        help="the cell to profile, e.g. Find/sandboxed")
    prof_p.add_argument("--json", action="store_true",
                        help="machine-readable report")
    prof_p.add_argument("--list", action="store_true",
                        help="list profileable cells and exit")

    fuzz_p = sub.add_parser(
        "fuzz", help="property-based cross-check of the sandbox invariants "
                     "over generated (world, policy, script) scenarios")
    fuzz_p.add_argument("--runs", type=int, default=50,
                        help="number of generated scenarios (default: 50)")
    fuzz_p.add_argument("--seed", type=int, default=0,
                        help="generation seed — same (runs, seed) checks the "
                             "same scenarios everywhere (default: 0)")
    fuzz_p.add_argument("--artifact", default="fuzz-falsifying.json",
                        metavar="PATH",
                        help="where to write the shrunk falsifying example "
                             "on failure (default: fuzz-falsifying.json)")
    fuzz_p.add_argument("--verbose", action="store_true",
                        help="progress line per scenario on stderr")

    store_p = sub.add_parser("store", help="inspect/evict the persistent snapshot store")
    store_sub = store_p.add_subparsers(dest="store_command", required=True)
    store_ls = store_sub.add_parser("ls", help="list stored snapshot blobs")
    store_ls.add_argument("--store", default=None, metavar="DIR")
    store_gc = store_sub.add_parser("gc", help="evict stalest blobs and dangling world links")
    store_gc.add_argument("--store", default=None, metavar="DIR")
    store_gc.add_argument("--keep", type=int, default=None,
                          help="blobs to retain (default: the store's LRU cap)")

    # `repro agent` / `repro serve` own their own argparse (each is its
    # own process shape); everything after the subcommand word passes
    # through untouched.
    sub.add_parser("agent", add_help=False,
                   help="serve one worker host of a sharded batch cluster")
    sub.add_parser("serve", add_help=False,
                   help="serve a long-lived batch gateway over a dynamic "
                        "agent fleet")
    if argv is None:
        argv = _hostsys.argv[1:]
    if argv and argv[0] == "agent":
        from repro.remote.agent import serve

        return serve(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve import serve_main

        return serve_main(argv[1:])

    args = parser.parse_args(argv)
    if args.command == "demo":
        return cmd_demo(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "shill-run":
        return cmd_shill_run(args)
    if args.command == "batch":
        return cmd_batch(args)
    if args.command == "lint":
        return cmd_lint(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "store":
        return cmd_store(args)
    if args.command == "fuzz":
        return cmd_fuzz(args)
    parser.error("unknown command")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
