"""Build tools: gmake, cc, configure, and the OCaml toolchain.

The OCaml programs reproduce the exact friction the paper's grading case
study hit (section 4.1): ``ocamlc`` "searches for libraries in
/usr/local/lib/ocaml" (a sandbox without that capability fails the same
way), and ``ocamlyacc`` "could not write to /tmp".

``ocamlrun`` interprets a tiny directive bytecode so that *student
submissions are real programs running inside the sandbox* — including
malicious ones that try to read other students' files:

    print <text>           write text + newline to stdout
    solve                  sum the integers on each stdin line
    readfile <path>        print the contents of <path> (escape attempt!)
    writefile <path> <t>   write <t> to <path> (tamper attempt!)
    exit <n>               exit with status n
"""

from __future__ import annotations

from repro.errors import SysError
from repro.programs.base import Program, elf_image, resolve_in_path

OCAML_LIB = "/usr/local/lib/ocaml"
BYTECODE_MAGIC = "#!OCAMLBC\n"


class Gmake(Program):
    """A small ``make``: ``VAR = value`` assignments, ``target: deps``
    rules with tab-indented command lines, ``$(VAR)`` substitution, and
    ``-C dir`` / ``-f makefile`` flags.  Commands run via fork+exec in the
    caller's session — so every compiler the build invokes is confined by
    the same sandbox."""

    name = "gmake"
    needed = ["libc.so.7"]

    def main(self, sys, argv, env):
        directory = "."
        makefile = "Makefile"
        goals: list[str] = []
        args = iter(argv[1:])
        for arg in args:
            if arg == "-C":
                directory = next(args, ".")
            elif arg == "-f":
                makefile = next(args, "Makefile")
            else:
                goals.append(arg)
        try:
            if directory != ".":
                sys.chdir(directory)
            text = sys.read_whole(makefile).decode()
        except SysError as err:
            self.err(sys, f"gmake: {err.name}\n")
            return 2
        variables, rules, order = self._parse(text)
        if not goals:
            goals = [order[0]] if order else []
        built: set[str] = set()
        for goal in goals:
            status = self._build(sys, goal, variables, rules, built, env)
            if status != 0:
                self.err(sys, f"gmake: *** [{goal}] Error {status}\n")
                return status
        return 0

    @staticmethod
    def _parse(text: str):
        variables: dict[str, str] = {}
        rules: dict[str, tuple[list[str], list[str]]] = {}
        order: list[str] = []
        current: str | None = None
        for line in text.splitlines():
            if not line.strip() or line.lstrip().startswith("#"):
                continue
            if line.startswith("\t"):
                if current is not None:
                    rules[current][1].append(line[1:])
                continue
            if "=" in line and ":" not in line.split("=", 1)[0]:
                key, _, value = line.partition("=")
                variables[key.strip()] = value.strip()
                continue
            if ":" in line:
                target, _, deps = line.partition(":")
                current = target.strip()
                rules[current] = (deps.split(), [])
                order.append(current)
        return variables, rules, order

    def _build(self, sys, goal: str, variables, rules, built: set[str], env) -> int:
        if goal in built:
            return 0
        built.add(goal)
        rule = rules.get(goal)
        if rule is None:
            # Not a rule: fine if the file exists (a source prerequisite).
            try:
                sys.stat(goal)
                return 0
            except SysError:
                self.err(sys, f"gmake: no rule to make target {goal!r}\n")
                return 2
        deps, commands = rule
        for dep in deps:
            status = self._build(sys, dep, variables, rules, built, env)
            if status != 0:
                return status
        for command in commands:
            line = self._substitute(command, variables)
            words = line.split()
            if not words:
                continue
            try:
                prog = resolve_in_path(sys, words[0], env)
                status = sys.spawn(prog, words, env)
            except SysError as err:
                self.err(sys, f"gmake: {words[0]}: {err.name}\n")
                return 2
            if status != 0:
                return status
        return 0

    @staticmethod
    def _substitute(line: str, variables: dict[str, str]) -> str:
        for key, value in variables.items():
            line = line.replace(f"$({key})", value)
        return line


class Cc(Program):
    """The C "compiler": reads every source file plus the headers they
    include (from /usr/include) and the C runtime stub, then writes a
    pseudo-ELF whose program is ``compiled-binary``."""

    name = "cc"
    needed = ["libc.so.7"]

    def main(self, sys, argv, env):
        output = "a.out"
        sources: list[str] = []
        args = iter(argv[1:])
        for arg in args:
            if arg == "-o":
                output = next(args, "a.out")
            elif not arg.startswith("-"):
                sources.append(arg)
        if not sources:
            self.err(sys, "cc: no input files\n")
            return 1
        blob_parts: list[str] = []
        try:
            sys.read_whole("/usr/lib/crt1.o")
            for source in sources:
                text = sys.read_whole(source).decode(errors="replace")
                blob_parts.append(text)
                for line in text.splitlines():
                    line = line.strip()
                    if line.startswith("#include <") and line.endswith(">"):
                        header = line[len("#include <"):-1]
                        sys.read_whole(f"/usr/include/{header}")
            image = elf_image("compiled-binary", ["libc.so.7"]) + "".join(blob_parts).encode()
            sys.write_whole(output, image, mode=0o755)
            return 0
        except SysError as err:
            self.err(sys, f"cc: {err.name}\n")
            return 1


class CompiledBinary(Program):
    """What cc's output runs as (it does nothing observable)."""

    name = "compiled-binary"
    needed = ["libc.so.7"]

    def main(self, sys, argv, env):
        return 0


class EmacsConfigure(Program):
    """The emacs tarball's ./configure: probes /usr/include and writes the
    Makefile that make/install/uninstall run against."""

    name = "emacs-configure"
    needed = ["libc.so.7"]

    PREFIX = "/usr/local/emacs"

    def main(self, sys, argv, env):
        prefix = self.PREFIX
        for arg in argv[1:]:
            if arg.startswith("--prefix="):
                prefix = arg[len("--prefix="):]
        try:
            # Probe the toolchain (reads are confined by the sandbox).
            sys.read_whole("/usr/include/stdio.h")
            sources = sorted(
                f"src/{name}" for name in sys.contents("src") if name.endswith(".c")
            )
            makefile = self._makefile(prefix, sources)
            sys.write_whole("Makefile", makefile.encode())
            sys.write_whole("config.status", b"configured\n")
            self.out(sys, "configure: creating Makefile\n")
            return 0
        except SysError as err:
            self.err(sys, f"configure: {err.name}\n")
            return 1

    @staticmethod
    def _makefile(prefix: str, sources: list[str]) -> str:
        src_list = " ".join(sources)
        return (
            f"PREFIX = {prefix}\n"
            "all: emacs\n"
            "emacs:\n"
            f"\tcc -o emacs {src_list}\n"
            "install: all\n"
            "\tmkdir -p $(PREFIX)/bin\n"
            "\tmkdir -p $(PREFIX)/share\n"
            "\tcp emacs $(PREFIX)/bin/emacs\n"
            "\tcp etc/DOC $(PREFIX)/share/DOC\n"
            "\tcp etc/COPYING $(PREFIX)/share/COPYING\n"
            "uninstall:\n"
            "\trm -f $(PREFIX)/bin/emacs\n"
            "\trm -f $(PREFIX)/share/DOC\n"
            "\trm -f $(PREFIX)/share/COPYING\n"
        )


class OcamlC(Program):
    """ocamlc -o OUT SRC.ml — reads the OCaml standard library directory
    (the dependency the paper discovered by its contract failure)."""

    name = "ocamlc"
    needed = ["libc.so.7", "libocaml.so.1"]

    def main(self, sys, argv, env):
        output = "a.byte"
        sources: list[str] = []
        args = iter(argv[1:])
        for arg in args:
            if arg == "-o":
                output = next(args, "a.byte")
            elif not arg.startswith("-"):
                sources.append(arg)
        if not sources:
            self.err(sys, "ocamlc: no input files\n")
            return 2
        try:
            # The stdlib lookup that fails without the wallet dependency:
            sys.read_whole(f"{OCAML_LIB}/stdlib.cma")
            body: list[str] = []
            for source in sources:
                text = sys.read_whole(source).decode(errors="replace")
                if "syntax-error" in text:
                    self.err(sys, f"ocamlc: {source}: syntax error\n")
                    return 2
                body.append(text)
            sys.write_whole(output, (BYTECODE_MAGIC + "\n".join(body)).encode())
            return 0
        except SysError as err:
            self.err(sys, f"ocamlc: unable to read a file: {err.name}\n")
            return 2


class OcamlYacc(Program):
    """ocamlyacc SRC.mly — needs scratch space in /tmp, exactly the
    second issue the paper's grading study hit."""

    name = "ocamlyacc"
    needed = ["libc.so.7", "libocaml.so.1"]

    def main(self, sys, argv, env):
        sources = [a for a in argv[1:] if not a.startswith("-")]
        if not sources:
            self.err(sys, "ocamlyacc: no input\n")
            return 2
        try:
            scratch = f"/tmp/ocamlyacc.{sys.proc.pid}"
            sys.write_whole(scratch, b"scratch\n")
            for source in sources:
                text = sys.read_whole(source).decode(errors="replace")
                out_path = source[:-4] + ".ml" if source.endswith(".mly") else source + ".ml"
                sys.write_whole(out_path, f"(* generated *)\n{text}".encode())
            sys.unlink(scratch)
            return 0
        except SysError as err:
            self.err(sys, f"ocamlyacc: {err.name}\n")
            return 2


class OcamlRun(Program):
    """ocamlrun BYTECODE — interprets the directive bytecode documented in
    the module docstring.  This is how student-submitted code *actually
    executes* inside the sandbox."""

    name = "ocamlrun"
    needed = ["libc.so.7", "libocaml.so.1"]

    def main(self, sys, argv, env):
        targets = [a for a in argv[1:] if not a.startswith("-")]
        if not targets:
            self.err(sys, "ocamlrun: no bytecode\n")
            return 2
        try:
            sys.read_whole(f"{OCAML_LIB}/stdlib.cma")
            blob = sys.read_whole(targets[0]).decode(errors="replace")
        except SysError as err:
            self.err(sys, f"ocamlrun: {err.name}\n")
            return 2
        if not blob.startswith(BYTECODE_MAGIC):
            self.err(sys, "ocamlrun: not a bytecode file\n")
            return 2
        return self._interpret(sys, blob[len(BYTECODE_MAGIC):])

    def _interpret(self, sys, program: str) -> int:
        for raw in program.splitlines():
            line = raw.strip()
            if not line or line.startswith("(*"):
                continue
            op, _, rest = line.partition(" ")
            if op == "print":
                self.out(sys, rest + "\n")
            elif op == "solve":
                for input_line in self.read_stdin(sys).decode().splitlines():
                    numbers = [int(tok) for tok in input_line.split() if tok.lstrip("-").isdigit()]
                    self.out(sys, f"{sum(numbers)}\n")
            elif op == "readfile":
                try:
                    data = sys.read_whole(rest)
                    self.out(sys, data.decode(errors="replace"))
                except SysError as err:
                    self.err(sys, f"readfile {rest}: {err.name}\n")
                    return 3
            elif op == "writefile":
                path, _, text = rest.partition(" ")
                try:
                    sys.write_whole(path, text.encode())
                except SysError as err:
                    self.err(sys, f"writefile {path}: {err.name}\n")
                    return 3
            elif op == "exit":
                return int(rest or "0")
            else:
                self.err(sys, f"ocamlrun: unknown directive {op!r}\n")
                return 2
        return 0
