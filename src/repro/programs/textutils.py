"""Text utilities: grep, find, diff, wc, head.

``grep`` and ``find`` are the stars of the paper's Find case study:
"find all files with extension .c in the BSD source tree that contain the
string 'mac_'" — either one sandbox around ``find -exec grep`` or one
sandbox per ``grep`` invocation.
"""

from __future__ import annotations

import re

from repro.errors import SysError
from repro.programs.base import Program, resolve_in_path


class Grep(Program):
    name = "grep"
    needed = ["libc.so.7", "libpcre.so.1"]

    def main(self, sys, argv, env):
        args = argv[1:]
        print_names = False
        names_only = False
        positional: list[str] = []
        for arg in args:
            if arg == "-H":
                print_names = True
            elif arg == "-l":
                names_only = True
            elif arg.startswith("-"):
                self.err(sys, f"grep: unknown option {arg}\n")
                return 2
            else:
                positional.append(arg)
        if not positional:
            self.err(sys, "usage: grep [-H|-l] pattern [files...]\n")
            return 2
        pattern, files = positional[0], positional[1:]
        try:
            regex = re.compile(pattern)
        except re.error:
            regex = re.compile(re.escape(pattern))

        matched_any = False
        status = 0
        if not files:
            text = self.read_stdin(sys).decode(errors="replace")
            for line in text.splitlines():
                if regex.search(line):
                    matched_any = True
                    self.out(sys, line + "\n")
            return 0 if matched_any else 1

        for path in files:
            try:
                text = sys.read_whole(path).decode(errors="replace")
            except SysError as err:
                self.err(sys, f"grep: {path}: {err.name}\n")
                status = 2
                continue
            file_matched = False
            for line in text.splitlines():
                if regex.search(line):
                    matched_any = True
                    file_matched = True
                    if names_only:
                        break
                    prefix = f"{path}:" if (print_names or len(files) > 1) else ""
                    self.out(sys, prefix + line + "\n")
            if names_only and file_matched:
                self.out(sys, path + "\n")
        if status:
            return status
        return 0 if matched_any else 1


class Find(Program):
    """``find PATH [-name PAT] [-exec CMD {} ;]`` — recursive walker that
    spawns the -exec command *in the same session* (the whole point of the
    coarse-grained Find case study)."""

    name = "find"
    needed = ["libc.so.7"]

    def main(self, sys, argv, env):
        args = argv[1:]
        if not args:
            self.err(sys, "usage: find path [-name pat] [-exec cmd {} ;]\n")
            return 64
        root = args[0]
        name_pat: str | None = None
        exec_cmd: list[str] | None = None
        i = 1
        while i < len(args):
            if args[i] == "-name" and i + 1 < len(args):
                name_pat = args[i + 1]
                i += 2
            elif args[i] == "-exec":
                j = i + 1
                cmd: list[str] = []
                while j < len(args) and args[j] not in (";", "\\;"):
                    cmd.append(args[j])
                    j += 1
                exec_cmd = cmd
                i = j + 1
            else:
                i += 1
        regex = self._glob_to_regex(name_pat) if name_pat else None
        status = 0
        try:
            status = self._walk(sys, root, regex, exec_cmd, env)
        except SysError as err:
            self.err(sys, f"find: {root}: {err.name}\n")
            return 1
        return status

    @staticmethod
    def _glob_to_regex(pat: str) -> "re.Pattern[str]":
        return re.compile("^" + re.escape(pat).replace(r"\*", ".*").replace(r"\?", ".") + "$")

    def _walk(self, sys, path: str, regex, exec_cmd, env) -> int:
        status = 0
        st = sys.stat(path)
        basename = path.rsplit("/", 1)[-1]
        if regex is None or regex.match(basename):
            if exec_cmd is None:
                self.out(sys, path + "\n")
            elif not st.is_dir:
                cmd = [path if part == "{}" else part for part in exec_cmd]
                try:
                    prog = resolve_in_path(sys, cmd[0], env)
                    sys.spawn(prog, cmd, env)
                except SysError as err:
                    self.err(sys, f"find: {cmd[0]}: {err.name}\n")
                    status = 1
        if st.is_dir:
            for entry in sys.contents(path):
                try:
                    status |= self._walk(sys, f"{path}/{entry}", regex, exec_cmd, env)
                except SysError:
                    status = 1
        return status


class Diff(Program):
    name = "diff"
    needed = ["libc.so.7"]

    def main(self, sys, argv, env):
        paths = [a for a in argv[1:] if not a.startswith("-")]
        if len(paths) != 2:
            self.err(sys, "usage: diff a b\n")
            return 2
        try:
            a = sys.read_whole(paths[0]).decode(errors="replace").splitlines()
            b = sys.read_whole(paths[1]).decode(errors="replace").splitlines()
        except SysError as err:
            self.err(sys, f"diff: {err.name}\n")
            return 2
        if a == b:
            return 0
        for i, (la, lb) in enumerate(zip(a, b)):
            if la != lb:
                self.out(sys, f"{i + 1}c{i + 1}\n< {la}\n---\n> {lb}\n")
        for i in range(len(b), len(a)):
            self.out(sys, f"{i + 1}d{len(b)}\n< {a[i]}\n")
        for i in range(len(a), len(b)):
            self.out(sys, f"{len(a)}a{i + 1}\n> {b[i]}\n")
        return 1


class Wc(Program):
    name = "wc"
    needed = ["libc.so.7"]

    def main(self, sys, argv, env):
        paths = [a for a in argv[1:] if not a.startswith("-")]
        status = 0
        if not paths:
            data = self.read_stdin(sys)
            self._report(sys, data, "")
            return 0
        for path in paths:
            try:
                data = sys.read_whole(path)
            except SysError as err:
                self.err(sys, f"wc: {path}: {err.name}\n")
                status = 1
                continue
            self._report(sys, data, " " + path)
        return status

    def _report(self, sys, data: bytes, suffix: str) -> None:
        text = data.decode(errors="replace")
        self.out(sys, f"{len(text.splitlines())} {len(text.split())} {len(data)}{suffix}\n")


class Head(Program):
    name = "head"
    needed = ["libc.so.7"]

    def main(self, sys, argv, env):
        count = 10
        paths: list[str] = []
        args = iter(argv[1:])
        for arg in args:
            if arg == "-n":
                count = int(next(args, "10"))
            else:
                paths.append(arg)
        for path in paths:
            try:
                text = sys.read_whole(path).decode(errors="replace")
            except SysError as err:
                self.err(sys, f"head: {path}: {err.name}\n")
                return 1
            self.out(sys, "\n".join(text.splitlines()[:count]) + "\n")
        return 0
