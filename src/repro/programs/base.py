"""The simulated-executable ABI.

A :class:`Program` is a "native binary": a Python callable that runs
entirely through the syscall interface of the process executing it.  From
the sandbox's point of view it is indistinguishable from a real binary —
every file, pipe, socket, and process operation crosses the MAC boundary.

Executable *files* in the world image carry a pseudo-ELF header in their
data::

    #!ELF
    PROGRAM:cat
    NEEDED:libc.so.7

The kernel's loader uses the vnode metadata (``program``/``needed``), and
the ``ldd`` program parses the same header from the file *contents* —
which is why running ldd in a sandbox needs read access to the binary,
just like the real one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SysError
from repro.kernel import errno_

if TYPE_CHECKING:
    from repro.kernel.syscalls import SyscallInterface


class Program:
    """Base class for simulated executables."""

    name: str = "program"
    #: Shared libraries (basenames) the dynamic loader opens at exec time.
    needed: list[str] = []

    def main(self, sys: "SyscallInterface", argv: list[str], env: dict[str, str]) -> int:
        raise NotImplementedError

    # -- stdio helpers (fail softly when a descriptor is absent) ---------------

    @staticmethod
    def out(sys: "SyscallInterface", text: str) -> None:
        try:
            sys.write(1, text.encode())
        except SysError:
            pass

    @staticmethod
    def err(sys: "SyscallInterface", text: str) -> None:
        try:
            sys.write(2, text.encode())
        except SysError:
            pass

    @staticmethod
    def read_stdin(sys: "SyscallInterface") -> bytes:
        chunks: list[bytes] = []
        try:
            while True:
                chunk = sys.read(0, 1 << 16)
                if not chunk:
                    break
                chunks.append(chunk)
        except SysError:
            pass
        return b"".join(chunks)


def elf_image(program: str, needed: list[str]) -> bytes:
    """The pseudo-ELF file contents for an executable."""
    lines = ["#!ELF", f"PROGRAM:{program}"]
    lines.extend(f"NEEDED:{lib}" for lib in needed)
    return ("\n".join(lines) + "\n").encode()


def parse_elf(data: bytes) -> tuple[str, list[str]]:
    """Parse a pseudo-ELF image; raises ENOEXEC on anything else."""
    text = data.decode(errors="replace")
    if not text.startswith("#!ELF"):
        raise SysError(errno_.ENOEXEC, "not an ELF image")
    program = ""
    needed: list[str] = []
    for line in text.splitlines()[1:]:
        if line.startswith("PROGRAM:"):
            program = line[len("PROGRAM:"):]
        elif line.startswith("NEEDED:"):
            needed.append(line[len("NEEDED:"):])
    return program, needed


def resolve_in_path(sys: "SyscallInterface", name: str, env: dict[str, str]) -> str:
    """$PATH resolution for programs that run other programs (gmake)."""
    if "/" in name:
        return name
    for directory in env.get("PATH", "/bin:/usr/bin").split(":"):
        candidate = directory.rstrip("/") + "/" + name
        try:
            sys.stat(candidate)
            return candidate
        except SysError:
            continue
    raise SysError(errno_.ENOENT, f"{name}: command not found")
