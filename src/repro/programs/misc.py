"""Miscellaneous programs: jpeginfo, ldd, and the grading shell script."""

from __future__ import annotations

from repro.errors import SysError
from repro.programs.base import Program, parse_elf, resolve_in_path


class JpegInfo(Program):
    """The running example of sections 2.3–2.5."""

    name = "jpeginfo"
    needed = ["libc.so.7", "libjpeg.so.11"]

    def main(self, sys, argv, env):
        show_info = "-i" in argv
        paths = [a for a in argv[1:] if not a.startswith("-")]
        if not paths:
            self.err(sys, "usage: jpeginfo [-i] files...\n")
            return 1
        status = 0
        for path in paths:
            try:
                data = sys.read_whole(path)
            except SysError as err:
                self.err(sys, f"jpeginfo: {path}: {err.name}\n")
                status = 1
                continue
            if data.startswith(b"JPEG"):
                detail = f" {len(data)} bytes, simulated baseline" if show_info else ""
                self.out(sys, f"{path}: OK{detail}\n")
            else:
                self.out(sys, f"{path}: not a JPEG\n")
                status = 1
        return status


class Ldd(Program):
    """Prints the NEEDED entries of an executable — by *reading the file*,
    so a sandboxed ldd needs a capability for the binary (this is the
    sandbox pkg_native creates)."""

    name = "ldd"
    needed = ["libc.so.7"]

    def main(self, sys, argv, env):
        paths = argv[1:]
        if not paths:
            self.err(sys, "usage: ldd file...\n")
            return 1
        status = 0
        for path in paths:
            try:
                data = sys.read_whole(path)
                _, needed = parse_elf(data)
            except SysError as err:
                self.err(sys, f"ldd: {path}: {err.name}\n")
                status = 1
                continue
            if len(paths) > 1:
                self.out(sys, f"{path}:\n")
            for lib in needed:
                self.out(sys, f"\t{lib}\n")
        return status


class GradeSh(Program):
    """The baseline "61-line Bash script" from the grading case study,
    reproduced as a native program: for every student submission, compile
    with ocamlc, run each test with ocamlrun, diff against the expected
    output, and record the score in the grading directory (one file per
    student).

    Usage: grade.sh SUBMISSIONS_DIR TESTS_DIR WORKING_DIR GRADES_DIR
    """

    name = "grade.sh"
    needed = ["libc.so.7"]

    def main(self, sys, argv, env):
        if len(argv) != 5:
            self.err(sys, "usage: grade.sh submissions tests working grades\n")
            return 64
        submissions, tests, working, grades = argv[1:]
        try:
            students = sorted(sys.contents(submissions))
            test_names = sorted(
                name[:-3] for name in sys.contents(tests) if name.endswith(".in")
            )
        except SysError as err:
            self.err(sys, f"grade.sh: {err.name}\n")
            return 1
        for student in students:
            score = self._grade_one(
                sys, env, f"{submissions}/{student}", tests, test_names,
                f"{working}/{student}",
            )
            try:
                sys.write_whole(f"{grades}/{student}",
                                f"{student}: {score}/{len(test_names)}\n".encode(),
                                append=True)
            except SysError as err:
                self.err(sys, f"grade.sh: cannot record grade for {student}: {err.name}\n")
                return 1
        return 0

    def _grade_one(self, sys, env, subdir: str, tests: str, test_names: list[str], workdir: str) -> int:
        try:
            sys.mkdir(workdir)
        except SysError as err:
            if err.name != "EEXIST":
                self.err(sys, f"grade.sh: mkdir {workdir}: {err.name}\n")
                return 0
        bytecode = f"{workdir}/main.byte"
        try:
            ocamlc = resolve_in_path(sys, "ocamlc", env)
            status = sys.spawn(ocamlc, ["ocamlc", "-o", bytecode, f"{subdir}/main.ml"], env)
        except SysError:
            return 0
        if status != 0:
            return 0
        score = 0
        for test in test_names:
            if self._run_test(sys, env, bytecode, tests, test, workdir):
                score += 1
        return score

    def _run_test(self, sys, env, bytecode: str, tests: str, test: str, workdir: str) -> bool:
        from repro.kernel.fdesc import OpenFile
        from repro.kernel.syscalls import O_CREAT, O_RDONLY, O_TRUNC, O_WRONLY

        out_path = f"{workdir}/{test}.out"
        try:
            ocamlrun = resolve_in_path(sys, "ocamlrun", env)
            _, _, input_vp = sys._resolve(f"{tests}/{test}.in")
            out_fd = sys.open(out_path, O_WRONLY | O_CREAT | O_TRUNC)
            out_vp = sys.proc.fdtable.get(out_fd).obj
            child = sys.fork()
            child.fdtable.install(0, OpenFile(input_vp, O_RDONLY))
            child.fdtable.install(1, OpenFile(out_vp, O_WRONLY))
            _, _, run_vp = sys._resolve(ocamlrun)
            status = sys.kernel.exec_file(child, run_vp, ["ocamlrun", bytecode], env)
            sys.close(out_fd)
            if status != 0:
                return False
            actual = sys.read_whole(out_path)
            expected = sys.read_whole(f"{tests}/{test}.expected")
            return actual == expected
        except SysError:
            return False
