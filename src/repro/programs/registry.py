"""Program registry: every simulated executable in one place."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.programs.archive import Gzip, Tar
from repro.programs.base import Program
from repro.programs.buildtools import (
    Cc,
    CompiledBinary,
    EmacsConfigure,
    Gmake,
    OcamlC,
    OcamlRun,
    OcamlYacc,
)
from repro.programs.coreutils import Basename, Cat, Cp, Echo, Expr, Ls, Mkdir, Mv, Rm, Touch
from repro.programs.shell import Sh
from repro.programs.misc import GradeSh, JpegInfo, Ldd
from repro.programs.nettools import Curl, Httpd
from repro.programs.textutils import Diff, Find, Grep, Head, Wc

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel

ALL_PROGRAMS: list[type[Program]] = [
    Cat, Cp, Ls, Rm, Mkdir, Mv, Echo, Touch, Basename, Expr, Sh,
    Grep, Find, Diff, Wc, Head,
    Tar, Gzip,
    Gmake, Cc, CompiledBinary, EmacsConfigure, OcamlC, OcamlRun, OcamlYacc,
    Curl, Httpd,
    JpegInfo, Ldd, GradeSh,
]


def register_all(kernel: "Kernel") -> None:
    for cls in ALL_PROGRAMS:
        kernel.register_program(cls())


#: Where each binary is installed by the world image, keyed by program name.
INSTALL_LOCATIONS: dict[str, str] = {
    "sh": "/bin/sh",
    "basename": "/usr/bin/basename",
    "expr": "/bin/expr",
    "cat": "/bin/cat",
    "cp": "/bin/cp",
    "ls": "/bin/ls",
    "rm": "/bin/rm",
    "mkdir": "/bin/mkdir",
    "mv": "/bin/mv",
    "echo": "/bin/echo",
    "touch": "/bin/touch",
    "grep": "/usr/bin/grep",
    "find": "/usr/bin/find",
    "diff": "/usr/bin/diff",
    "wc": "/usr/bin/wc",
    "head": "/usr/bin/head",
    "tar": "/usr/bin/tar",
    "gzip": "/usr/bin/gzip",
    "gmake": "/usr/local/bin/gmake",
    "cc": "/usr/bin/cc",
    "ocamlc": "/usr/local/bin/ocamlc",
    "ocamlrun": "/usr/local/bin/ocamlrun",
    "ocamlyacc": "/usr/local/bin/ocamlyacc",
    "curl": "/usr/local/bin/curl",
    "httpd": "/usr/local/bin/httpd",
    "jpeginfo": "/usr/local/bin/jpeginfo",
    "ldd": "/usr/bin/ldd",
    "grade.sh": "/usr/local/bin/grade.sh",
}
