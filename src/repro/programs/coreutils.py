"""Core utilities: cat, cp, ls, rm, mkdir, mv, echo, touch.

Every one of these issues ordinary syscalls from the executing process,
so inside a SHILL sandbox they are confined exactly as the paper's case
studies confine the real FreeBSD binaries.
"""

from __future__ import annotations

from repro.errors import SysError
from repro.kernel.syscalls import O_CREAT, O_WRONLY
from repro.programs.base import Program


class Cat(Program):
    name = "cat"
    needed = ["libc.so.7"]

    def main(self, sys, argv, env):
        status = 0
        files = argv[1:]
        if not files:
            self.out(sys, self.read_stdin(sys).decode(errors="replace"))
            return 0
        for path in files:
            try:
                data = sys.read_whole(path)
            except SysError as err:
                self.err(sys, f"cat: {path}: {err.name}\n")
                status = 1
                continue
            self.out(sys, data.decode(errors="replace"))
        return status


class Cp(Program):
    name = "cp"
    needed = ["libc.so.7"]

    def main(self, sys, argv, env):
        recursive = "-r" in argv or "-R" in argv
        paths = [a for a in argv[1:] if not a.startswith("-")]
        if len(paths) != 2:
            self.err(sys, "usage: cp [-r] src dst\n")
            return 64
        src, dst = paths
        try:
            return self._copy(sys, src, dst, recursive)
        except SysError as err:
            self.err(sys, f"cp: {err.name}\n")
            return 1

    def _copy(self, sys, src: str, dst: str, recursive: bool) -> int:
        st = sys.stat(src)
        if st.is_dir:
            if not recursive:
                self.err(sys, f"cp: {src} is a directory (not copied)\n")
                return 1
            try:
                sys.mkdir(dst)
            except SysError as err:
                if err.name != "EEXIST":
                    raise
            for entry in sys.contents(src):
                self._copy(sys, f"{src}/{entry}", f"{dst}/{entry}", recursive)
            return 0
        # Copying into an existing directory target.
        try:
            if sys.stat(dst).is_dir:
                dst = dst.rstrip("/") + "/" + src.rsplit("/", 1)[-1]
        except SysError:
            pass
        sys.write_whole(dst, sys.read_whole(src))
        return 0


class Ls(Program):
    name = "ls"
    needed = ["libc.so.7"]

    def main(self, sys, argv, env):
        paths = [a for a in argv[1:] if not a.startswith("-")] or ["."]
        status = 0
        for path in paths:
            try:
                st = sys.stat(path)
                if st.is_dir:
                    for entry in sys.contents(path):
                        self.out(sys, entry + "\n")
                else:
                    self.out(sys, path + "\n")
            except SysError as err:
                self.err(sys, f"ls: {path}: {err.name}\n")
                status = 1
        return status


class Rm(Program):
    name = "rm"
    needed = ["libc.so.7"]

    def main(self, sys, argv, env):
        recursive = "-r" in argv or "-rf" in argv or "-fr" in argv
        force = any(a in ("-f", "-rf", "-fr") for a in argv)
        status = 0
        for path in (a for a in argv[1:] if not a.startswith("-")):
            try:
                self._remove(sys, path, recursive)
            except SysError as err:
                if not force:
                    self.err(sys, f"rm: {path}: {err.name}\n")
                    status = 1
        return status

    def _remove(self, sys, path: str, recursive: bool) -> None:
        st = sys.lstat(path)
        if st.is_dir and recursive:
            for entry in sys.contents(path):
                self._remove(sys, f"{path}/{entry}", recursive)
        sys.unlink(path)


class Mkdir(Program):
    name = "mkdir"
    needed = ["libc.so.7"]

    def main(self, sys, argv, env):
        make_parents = "-p" in argv
        status = 0
        for path in (a for a in argv[1:] if not a.startswith("-")):
            try:
                if make_parents:
                    self._mkdir_p(sys, path)
                else:
                    sys.mkdir(path)
            except SysError as err:
                self.err(sys, f"mkdir: {path}: {err.name}\n")
                status = 1
        return status

    @staticmethod
    def _mkdir_p(sys, path: str) -> None:
        parts = [p for p in path.split("/") if p]
        prefix = "/" if path.startswith("/") else ""
        for part in parts:
            prefix = prefix.rstrip("/") + "/" + part if prefix else part
            try:
                sys.mkdir(prefix)
            except SysError as err:
                if err.name != "EEXIST":
                    raise


class Mv(Program):
    name = "mv"
    needed = ["libc.so.7"]

    def main(self, sys, argv, env):
        paths = [a for a in argv[1:] if not a.startswith("-")]
        if len(paths) != 2:
            self.err(sys, "usage: mv src dst\n")
            return 64
        try:
            sys.rename(paths[0], paths[1])
            return 0
        except SysError as err:
            self.err(sys, f"mv: {err.name}\n")
            return 1


class Echo(Program):
    name = "echo"
    needed = []

    def main(self, sys, argv, env):
        self.out(sys, " ".join(argv[1:]) + "\n")
        return 0


class Basename(Program):
    name = "basename"
    needed = ["libc.so.7"]

    def main(self, sys, argv, env):
        if len(argv) < 2:
            self.err(sys, "usage: basename path [suffix]\n")
            return 1
        base = argv[1].rstrip("/").rsplit("/", 1)[-1]
        if len(argv) > 2 and base.endswith(argv[2]) and base != argv[2]:
            base = base[: -len(argv[2])]
        self.out(sys, base + "\n")
        return 0


class Expr(Program):
    """Integer arithmetic for shell scripts: ``expr A OP B``."""

    name = "expr"
    needed = ["libc.so.7"]

    def main(self, sys, argv, env):
        if len(argv) != 4:
            self.err(sys, "usage: expr a op b\n")
            return 2
        try:
            a, op, b = int(argv[1]), argv[2], int(argv[3])
            ops = {"+": a + b, "-": a - b, "*": a * b}
            if op == "/":
                ops["/"] = a // b
            result = ops[op]
        except (ValueError, KeyError, ZeroDivisionError):
            self.err(sys, "expr: bad expression\n")
            return 2
        self.out(sys, f"{result}\n")
        return 0 if result != 0 else 1


class Touch(Program):
    name = "touch"
    needed = ["libc.so.7"]

    def main(self, sys, argv, env):
        status = 0
        for path in argv[1:]:
            try:
                fd = sys.open(path, O_WRONLY | O_CREAT)
                sys.close(fd)
            except SysError as err:
                self.err(sys, f"touch: {path}: {err.name}\n")
                status = 1
        return status
