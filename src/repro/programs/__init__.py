"""Simulated native executables (programs run inside the simulated kernel)."""

from repro.programs.base import Program, elf_image, parse_elf
from repro.programs.registry import ALL_PROGRAMS, INSTALL_LOCATIONS, register_all

__all__ = ["Program", "elf_image", "parse_elf", "ALL_PROGRAMS", "INSTALL_LOCATIONS", "register_all"]
