"""Network tools: curl and httpd (Apache).

``curl`` drives the Download benchmark: it opens a TCP connection to the
simulated GNU mirror and streams the emacs tarball — entirely through
socket syscalls, so a sandbox without a socket factory cannot download
anything.

``httpd`` is the Apache case study's server.  Connections arrive through
the network's listen hook (the "Apache Benchmark tool" enqueues them the
moment httpd starts listening); httpd then accepts and serves each one,
reading content from its DocumentRoot and appending to its access log —
the reads/writes the paper's contract confines to "read-only access to
configuration files and web content directories ... and write-only access
to log files."
"""

from __future__ import annotations

from repro.errors import SysError
from repro.kernel import errno_
from repro.kernel.sockets import AddressFamily, SocketType
from repro.programs.base import Program

HTTP_OK = "HTTP/1.0 200 OK\n\n"
HTTP_NOT_FOUND = "HTTP/1.0 404 Not Found\n\n"


def parse_url(url: str) -> tuple[str, int, str]:
    if url.startswith("http://"):
        url = url[len("http://"):]
    host, _, path = url.partition("/")
    port = 80
    if ":" in host:
        host, _, port_s = host.partition(":")
        port = int(port_s)
    return host, port, "/" + path


class Curl(Program):
    name = "curl"
    needed = ["libc.so.7", "libcurl.so.4", "libssl.so.8"]

    def main(self, sys, argv, env):
        output: str | None = None
        url: str | None = None
        args = iter(argv[1:])
        for arg in args:
            if arg == "-o":
                output = next(args, None)
            elif arg == "-s":
                continue
            else:
                url = arg
        if url is None:
            self.err(sys, "curl: no URL\n")
            return 2
        host, port, path = parse_url(url)
        try:
            # Name "resolution" reads /etc/resolv.conf; TLS trust anchors
            # come from the cert bundle — both real sandbox dependencies.
            sys.read_whole("/etc/resolv.conf")
            fd = sys.socket(AddressFamily.AF_INET, SocketType.SOCK_STREAM)
            sys.connect(fd, (host, port))
            sys.send(fd, f"GET {path}\n".encode())
            chunks: list[bytes] = []
            while True:
                chunk = sys.recv(fd, 1 << 16)
                if not chunk:
                    break
                chunks.append(chunk)
            sys.close(fd)
        except SysError as err:
            self.err(sys, f"curl: ({err.name}) {url}\n")
            return 7
        response = b"".join(chunks)
        header, _, body = response.partition(b"\n\n")
        if not header.startswith(b"HTTP/1.0 200"):
            self.err(sys, f"curl: server returned {header.decode(errors='replace')}\n")
            return 22
        try:
            if output is None:
                sys.write(1, body)
            else:
                sys.write_whole(output, body)
        except SysError as err:
            self.err(sys, f"curl: write failed: {err.name}\n")
            return 23
        return 0


class Httpd(Program):
    """``httpd -f CONFIG``: serve every queued connection, then exit."""

    name = "httpd"
    needed = ["libc.so.7", "libapr.so.1", "libssl.so.8"]

    def main(self, sys, argv, env):
        config_path = "/etc/apache/httpd.conf"
        args = iter(argv[1:])
        for arg in args:
            if arg == "-f":
                config_path = next(args, config_path)
        try:
            config = self._parse_config(sys.read_whole(config_path).decode())
        except SysError as err:
            self.err(sys, f"httpd: cannot read config: {err.name}\n")
            return 1
        docroot = config.get("DocumentRoot", "/var/www")
        port = int(config.get("Listen", "8080"))
        log_path = config.get("AccessLog", "/var/log/httpd-access.log")
        try:
            listener = sys.socket(AddressFamily.AF_INET, SocketType.SOCK_STREAM)
            sys.bind(listener, ("0.0.0.0", port))
            sys.listen(listener)  # the benchmark's clients connect here
        except SysError as err:
            self.err(sys, f"httpd: cannot listen: {err.name}\n")
            return 1
        served = 0
        while True:
            try:
                conn = sys.accept(listener)
            except SysError as err:
                if err.errno == errno_.EAGAIN:
                    break  # backlog drained
                self.err(sys, f"httpd: accept: {err.name}\n")
                return 1
            served += self._serve_one(sys, conn, docroot, log_path)
            sys.close(conn)
        self.out(sys, f"httpd: served {served} request(s)\n")
        return 0

    def _serve_one(self, sys, conn: int, docroot: str, log_path: str) -> int:
        try:
            request = sys.recv(conn, 4096).decode(errors="replace")
        except SysError:
            return 0
        path = "/"
        for line in request.splitlines():
            if line.startswith("GET "):
                path = line.split()[1]
                break
        target = docroot.rstrip("/") + path
        try:
            body = sys.read_whole(target)
            sys.send(conn, HTTP_OK.encode() + body)
            status = 200
        except SysError:
            sys.send(conn, HTTP_NOT_FOUND.encode())
            status = 404
        try:
            from repro.kernel.syscalls import O_APPEND, O_CREAT, O_WRONLY

            fd = sys.open(log_path, O_WRONLY | O_APPEND | O_CREAT)
            sys.write(fd, f"GET {path} {status}\n".encode())
            sys.close(fd)
        except SysError:
            pass  # log write denied: request still served
        return 1 if status == 200 else 0

    @staticmethod
    def _parse_config(text: str) -> dict[str, str]:
        config: dict[str, str] = {}
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            key, _, value = line.partition(" ")
            config[key] = value.strip()
        return config
